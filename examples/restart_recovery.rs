//! Kill the process mid-repair, restart, and watch the metadata plane put
//! everything back: the WAL-durable namespace (`MetaBackend::durable`)
//! recovers every object, placement and epoch byte-exactly, serves degraded
//! reads immediately, and re-drives the repairs the dead process abandoned.
//!
//! The run has two incarnations of the same cluster directory:
//!
//! 1. **Incarnation 1** stores objects, loses a node, queues its recovery —
//!    then dies (`simulate_crash`, the in-process `kill -9`) with the queue
//!    half-drained: journaled repair directives are left unresolved on disk.
//! 2. **Incarnation 2** reopens the same store + metadata directories. The
//!    namespace is back before any repair runs, so client reads succeed
//!    degraded; the journaled directives re-enqueue automatically (stale
//!    ones — already healed before the crash — are rejected by the epoch
//!    check instead of double-healing) and the cluster finishes healing.
//!
//! `RESTART_BACKEND=file` (default) or `file-checksummed` selects the
//! on-disk store flavor, so CI exercises both.
//!
//! Run with `cargo run --example restart_recovery`.

use std::path::Path;

use repair_pipelining::ecpipe::{EcPipeBuilder, MetaBackend, StoreBackend};

const NODES: usize = 6;
const BLOCK: usize = 32 * 1024;
const OBJECTS: usize = 3;
/// Each object spans 3 (4,2) stripes.
const OBJECT: usize = 3 * 2 * BLOCK;
/// Slow links so the first incarnation reliably dies mid-repair.
const LINK_RATE: u64 = 256 * 1024;

fn object_bytes(seed: u64) -> Vec<u8> {
    (0..OBJECT)
        .map(|i| ((i as u64 * 37 + seed * 11 + 3) % 251) as u8)
        .collect()
}

fn store_backend(root: &Path) -> StoreBackend {
    let flavor = std::env::var("RESTART_BACKEND").unwrap_or_else(|_| "file".to_string());
    match flavor.as_str() {
        "file" => StoreBackend::file(root.join("store"), NODES),
        "file-checksummed" => StoreBackend::file_checksummed(root.join("store"), NODES),
        other => panic!("RESTART_BACKEND must be file or file-checksummed, got {other:?}"),
    }
}

fn builder(root: &Path) -> EcPipeBuilder {
    EcPipeBuilder::new()
        .code(4, 2)
        .block_size(BLOCK)
        .slice_size(8 * 1024)
        .store(store_backend(root))
        .meta(MetaBackend::durable(root.join("meta")))
}

fn main() {
    let root = std::env::temp_dir().join(format!("ecpipe-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let originals: Vec<Vec<u8>> = (0..OBJECTS as u64).map(object_bytes).collect();

    // --- Incarnation 1: populate, lose a node, die mid-recovery -----------
    let failed_node = 1;
    let (stripes_before, pending_at_crash) = {
        let pipe = builder(&root).rate_limit(LINK_RATE).build().expect("build");
        for (i, data) in originals.iter().enumerate() {
            pipe.put(&format!("/restart/{i}"), data).expect("put");
        }
        let lost = pipe.kill_node(failed_node);
        let queued = pipe.report_node_failure(failed_node);
        println!(
            "incarnation 1: {OBJECTS} objects stored, node {failed_node} lost \
             {} blocks, {queued} repairs queued",
            lost.len()
        );

        let meta = pipe.meta();
        let stripes = meta.stripe_count();
        pipe.simulate_crash();
        // The crash resolved nothing: whatever had not finished is still
        // journaled on disk.
        let pending = meta.pending_repairs().len();
        println!("incarnation 1: killed mid-repair with {pending} directives journaled");
        (stripes, pending)
    };
    assert!(
        pending_at_crash > 0,
        "the crash must strand journaled repairs"
    );

    // --- Incarnation 2: reopen the same directories ------------------------
    let pipe = builder(&root).build().expect("rebuild over the same dirs");
    let meta = pipe.meta();
    assert_eq!(meta.object_count(), OBJECTS, "every object recovered");
    assert_eq!(
        meta.stripe_count(),
        stripes_before,
        "every stripe recovered"
    );
    println!(
        "incarnation 2: recovered {} objects / {} stripes from the WAL; \
         {} journaled directives re-examined (stale ones epoch-rejected, \
         current ones re-enqueued)",
        meta.object_count(),
        meta.stripe_count(),
        pending_at_crash,
    );

    // Degraded reads work before the re-driven repairs finish — the
    // namespace is back, so missing blocks are reconstructed on the fly.
    for (i, data) in originals.iter().enumerate() {
        let read = pipe.get(&format!("/restart/{i}")).expect("degraded read");
        assert_eq!(&read, data, "object {i} must read back byte-exact");
    }
    println!("incarnation 2: all {OBJECTS} objects read byte-exact while healing");

    // Let the re-enqueued repairs drain: every directive resolves, and no
    // stripe is left missing the failed node's block.
    pipe.wait_idle();
    assert!(
        meta.pending_repairs().is_empty(),
        "all re-driven repairs must resolve"
    );
    drop(meta);
    let report = pipe.shutdown();
    assert_eq!(report.failed_repairs, 0, "no repair may fail");
    println!(
        "incarnation 2: healing complete — {} blocks repaired, {} KiB on the wire",
        report.blocks_repaired,
        report.network_bytes / 1024,
    );

    let _ = std::fs::remove_dir_all(&root);
    println!("restart_recovery finished");
}
