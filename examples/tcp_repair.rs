//! A (14,10) repair-pipelining deployment over real localhost TCP sockets.
//!
//! Every repair slice crosses a socket: the `EcPipeBuilder` wires the same
//! runtime as the in-process examples but with the `TcpTransport` backend —
//! framed wire format, one reused connection per directed node pair,
//! per-link byte accounting. An object written through the façade survives
//! an erased block with every reconstruction byte moving over TCP. A
//! second, bandwidth-throttled pass drops to the exec layer to show the
//! §3.2 shape: with every link token-bucket-limited to the same rate, the
//! repair takes about `1 + (k-1)/s` timeslots instead of the `k` timeslots
//! of a block-level relay.
//!
//! Run with `cargo run --release --example tcp_repair`.

use std::time::Instant;

use repair_pipelining::ecpipe::transport::Transport;
use repair_pipelining::ecpipe::{
    EcPipeBuilder, ExecStrategy, SelectionPolicy, StoreBackend, TcpTransport, TransportChoice,
};

fn main() {
    // Facebook's (14,10) code; 1 MiB blocks in 64 KiB slices keep the
    // example quick while still pushing 10 MiB through sockets per repair.
    const BLOCK: usize = 1024 * 1024;
    let pipe = EcPipeBuilder::new()
        .code(14, 10)
        .block_size(BLOCK)
        .slice_size(64 * 1024)
        .store(StoreBackend::memory(16))
        .transport(TransportChoice::Tcp)
        .strategy(ExecStrategy::RepairPipelining)
        .build()
        .expect("valid configuration");

    let data: Vec<u8> = (0..10 * BLOCK)
        .map(|i| ((i * 31 + 97) % 251) as u8)
        .collect();
    let meta = pipe.put("/tcp/object", &data).expect("object written");
    pipe.erase_block(meta.stripes[0], 3);
    println!("wrote a (14,10) stripe of 1 MiB blocks over TCP and erased block 3");

    // The degraded read repairs block 3 over real sockets on the way.
    let read = pipe.get("/tcp/object").expect("degraded read succeeds");
    assert_eq!(read, data, "byte-exact reconstruction");
    println!(
        "RP reconstructed block 3 over TCP: {} links used, {} bytes total, \
         {} bytes on the busiest link",
        pipe.transport().links_used(),
        pipe.transport().total_bytes(),
        pipe.transport().max_link_bytes(),
    );

    // The same repair with every link throttled to 8 MiB/s: the measured
    // time should sit near 1 + (k-1)/s timeslots (§3.2), far below the k
    // timeslots a block-by-block relay would need. This drops below the
    // façade to the exec layer, which stays reachable for exactly this kind
    // of experiment.
    const RATE: u64 = 8 * 1024 * 1024;
    pipe.erase_block(meta.stripes[0], 3);
    let (directive, slice_count) = pipe.with_coordinator(|c| {
        let layout = c.layout();
        (
            c.plan_single_repair(meta.stripes[0], 3, 15, &[], SelectionPolicy::CodeDefault)
                .expect("plan repair"),
            layout.slice_count(),
        )
    });
    let throttled = TcpTransport::with_rate_limit(RATE);
    let start = Instant::now();
    let repaired = repair_pipelining::ecpipe::exec::execute_single(
        &directive,
        pipe.cluster(),
        &throttled,
        ExecStrategy::RepairPipelining,
    )
    .expect("throttled repair succeeds");
    assert_eq!(repaired, data[3 * BLOCK..4 * BLOCK]);
    let elapsed = start.elapsed().as_secs_f64();
    let timeslot = BLOCK as f64 / RATE as f64;
    let k = directive.path.len() as f64;
    let s = slice_count as f64;
    println!(
        "throttled to 8 MiB/s per link: repair took {elapsed:.3}s \
         (one-block timeslot {timeslot:.3}s, paper predicts ~{:.3}s, \
         a k-hop block relay would need ~{:.3}s)",
        (1.0 + (k - 1.0) / s) * timeslot,
        k * timeslot,
    );
    pipe.shutdown();
    println!("tcp_repair finished: byte-exact repair over real sockets");
}
