//! A (14,10) repair-pipelining repair over real localhost TCP sockets.
//!
//! Every slice crosses a socket: helpers and requestor share one process,
//! but the data plane is the `TcpTransport` backend — framed wire format,
//! one reused connection per directed node pair, per-link byte accounting.
//! A second, bandwidth-throttled pass shows the §3.2 shape: with every
//! link token-bucket-limited to the same rate, the repair takes about
//! `1 + (k-1)/s` timeslots instead of the `k` timeslots of a block-level
//! relay.
//!
//! Run with `cargo run --release --example tcp_repair`.

use std::sync::Arc;
use std::time::Instant;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::ReedSolomon;
use repair_pipelining::ecpipe::{
    Cluster, Coordinator, ExecStrategy, SelectionPolicy, TcpTransport, Transport,
};

fn main() {
    // Facebook's (14,10) code; 1 MiB blocks in 64 KiB slices keep the
    // example quick while still pushing 10 MiB through sockets.
    let code = Arc::new(ReedSolomon::new(14, 10).expect("valid parameters"));
    let layout = SliceLayout::new(1024 * 1024, 64 * 1024);
    let mut coordinator = Coordinator::new(code, layout);
    let mut cluster = Cluster::in_memory(16);

    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..layout.block_size)
                .map(|b| ((b * 31 + i * 97) % 251) as u8)
                .collect()
        })
        .collect();
    let stripe = cluster
        .write_stripe(&mut coordinator, 0, &data)
        .expect("stripe written");
    cluster.erase_block(stripe, 3);
    println!("wrote a (14,10) stripe of 1 MiB blocks and erased block 3");

    // Repair over unthrottled localhost TCP.
    let transport = TcpTransport::new();
    let repaired = cluster
        .repair_over(
            &mut coordinator,
            stripe,
            3,
            15,
            ExecStrategy::RepairPipelining,
            &transport,
        )
        .expect("repair succeeds");
    assert_eq!(repaired, data[3], "byte-exact reconstruction");
    println!(
        "RP reconstructed block 3 over TCP: {} links used, {} bytes total, {} bytes on the busiest link",
        transport.links_used(),
        transport.total_bytes(),
        transport.max_link_bytes(),
    );

    // The same repair with every link throttled to 8 MiB/s: the measured
    // time should sit near 1 + (k-1)/s timeslots (§3.2), far below the k
    // timeslots a block-by-block relay would need.
    const RATE: u64 = 8 * 1024 * 1024;
    let directive = coordinator
        .plan_single_repair(stripe, 3, 15, &[], SelectionPolicy::CodeDefault)
        .expect("plan repair");
    let throttled = TcpTransport::with_rate_limit(RATE);
    let start = Instant::now();
    let repaired = repair_pipelining::ecpipe::exec::execute_single(
        &directive,
        &cluster,
        &throttled,
        ExecStrategy::RepairPipelining,
    )
    .expect("throttled repair succeeds");
    assert_eq!(repaired, data[3]);
    let elapsed = start.elapsed().as_secs_f64();
    let timeslot = layout.block_size as f64 / RATE as f64;
    let k = directive.path.len() as f64;
    let s = layout.slice_count() as f64;
    println!(
        "throttled to 8 MiB/s per link: repair took {elapsed:.3}s \
         (one-block timeslot {timeslot:.3}s, paper predicts ~{:.3}s, \
         a k-hop block relay would need ~{:.3}s)",
        (1.0 + (k - 1.0) / s) * timeslot,
        k * timeslot,
    );
    println!("tcp_repair finished: byte-exact repair over real sockets");
}
