//! Degraded reads on a simulated HDFS-3 deployment.
//!
//! Writes a file into an erasure-coded storage system, makes a block
//! unavailable, and serves a client read through a degraded read — first via
//! the storage system's own repair path, then via ECPipe repair pipelining —
//! and reports the predicted repair latency of each approach on a 1 Gb/s
//! cluster.
//!
//! Run with `cargo run --release --example degraded_read`.

use repair_pipelining::dfs::timing::{single_block_repair_time, RepairVariant};
use repair_pipelining::dfs::{RepairPath, SimulatedDfs, SystemProfile};
use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecpipe::ExecStrategy;

fn main() {
    // A small-block HDFS-3 instance so the example runs in milliseconds; the
    // timing model below still uses the real 64 MiB blocks.
    let profile = SystemProfile::hdfs3().with_block_size(256 * 1024);
    let mut dfs = SimulatedDfs::new(profile, 16).expect("cluster large enough");

    let data: Vec<u8> = (0..3 * 10 * 256 * 1024).map(|i| (i % 251) as u8).collect();
    let meta = dfs
        .write_file("/logs/day-001", &data)
        .expect("file written");
    println!(
        "wrote {} ({} bytes, {} stripes)",
        meta.name,
        meta.size,
        meta.stripes.len()
    );

    // A data block becomes unavailable (e.g. its DataNode is being rebooted).
    dfs.erase_block(meta.stripes[0], 4);
    println!("block 4 of stripe {:?} is unavailable", meta.stripes[0]);
    println!(
        "missing blocks reported by the NameNode: {:?}",
        dfs.block_report()
    );

    // The client read still succeeds through a degraded read.
    let through_original = dfs
        .read_file("/logs/day-001", RepairPath::Original)
        .unwrap();
    assert_eq!(through_original, data);
    let through_ecpipe = dfs
        .read_file(
            "/logs/day-001",
            RepairPath::EcPipe(ExecStrategy::RepairPipelining),
        )
        .unwrap();
    assert_eq!(through_ecpipe, data);
    println!(
        "degraded reads returned the correct data (routine reads: {}, native reads: {})",
        dfs.routine_reads(),
        dfs.native_reads()
    );

    // Predicted single-block repair latency at production scale (64 MiB
    // blocks, 1 Gb/s links).
    let production = SystemProfile::hdfs3();
    let layout = SliceLayout::paper_default();
    println!("\npredicted degraded-read latency for a 64 MiB block ((14,10), 1 Gb/s):");
    for variant in [
        RepairVariant::Original,
        RepairVariant::ConventionalEcPipe,
        RepairVariant::RepairPipeliningEcPipe,
    ] {
        let t = single_block_repair_time(&production, 10, layout, variant);
        println!("  {variant:<14} {t:.2} s");
    }
}
