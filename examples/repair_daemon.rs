//! The full failure menu through the `EcPipe` façade: prioritized,
//! concurrent, liveness-aware repair orchestration behind an object store.
//!
//! One builder call stands up a 14-node cluster with checksum-verifying
//! stores over a bandwidth-limited transport (every link throttled, so
//! repairs are network-bound like the paper's 1 Gb/s testbed). Client
//! threads then `get` objects while the runtime faces everything at once:
//! erased blocks (served by degraded reads, highest priority), a reported
//! node failure (background recovery of every affected stripe), a node
//! that dies *silently* (liveness strikes → declared dead → auto-enqueued
//! recovery), and silent bit-rot (injected corruption caught by a paced
//! scrub cycle, repaired in place, re-verified). Every read stays
//! byte-exact throughout. The same node failure is finally replayed through
//! the sequential recovery loop to show the concurrency win.
//!
//! Run with `cargo run --release --example repair_daemon`.

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::ReedSolomon;
use repair_pipelining::ecpipe::manager::{recover_node, ManagerConfig};
use repair_pipelining::ecpipe::recovery::full_node_recovery_over;
use repair_pipelining::ecpipe::transport::ChannelTransport;
use repair_pipelining::ecpipe::{
    Cluster, Coordinator, EcPipeBuilder, ExecStrategy, NodeHealth, ScrubConfig, StoreBackend,
};
use std::sync::Arc;

const NODES: usize = 14;
const BLOCK: usize = 64 * 1024;
const SLICE: usize = 8 * 1024;
/// Per-link bandwidth, so repairs are network-bound (like the paper's
/// testbed) and concurrency pays even on one core.
const LINK_RATE: u64 = 4 * 1024 * 1024;
/// Each object spans 4 (6,4) stripes.
const OBJECT: usize = 4 * 4 * BLOCK;
const OBJECTS: usize = 6;

fn object_bytes(seed: u64) -> Vec<u8> {
    (0..OBJECT)
        .map(|i| ((i as u64 * 31 + seed * 13 + 7) % 251) as u8)
        .collect()
}

fn main() {
    let pipe = EcPipeBuilder::new()
        .code(6, 4)
        .block_size(BLOCK)
        .slice_size(SLICE)
        .store(StoreBackend::memory_checksummed(NODES))
        .rate_limit(LINK_RATE)
        .manager(ManagerConfig {
            workers: 4,
            per_node_inflight_cap: 3,
            dead_after_misses: 1,
            ..ManagerConfig::default()
        })
        .build()
        .expect("valid configuration");
    println!(
        "cluster: {NODES} nodes, {OBJECTS} objects of {} KiB over (6,4) stripes, \
         every link throttled to {} MiB/s",
        OBJECT / 1024,
        LINK_RATE / (1024 * 1024),
    );

    let originals: Vec<Vec<u8>> = (0..OBJECTS as u64).map(object_bytes).collect();
    let metas: Vec<_> = originals
        .iter()
        .enumerate()
        .map(|(i, data)| pipe.put(&format!("/objects/{i}"), data).expect("put"))
        .collect();

    // --- Degraded reads: erased blocks under concurrent client threads ----
    pipe.erase_block(metas[0].stripes[0], 1);
    pipe.erase_block(metas[1].stripes[2], 0);
    pipe.erase_block(metas[2].stripes[1], 3);

    // --- A reported node failure: background recovery of its stripes ------
    let failed_node = 2;
    let lost = pipe.kill_node(failed_node);
    let queued = pipe.report_node_failure(failed_node);
    println!(
        "node {failed_node} reported dead: {} blocks lost, {queued} repairs \
         queued behind the degraded reads",
        lost.len()
    );

    // --- A silent failure: node 7 dies but nobody tells the runtime -------
    // The first read that needs one of its blocks earns it a liveness
    // strike; with `dead_after_misses = 1` the manager declares the node
    // dead, re-plans around it and auto-enqueues its remaining stripes.
    let silent_node = 7;
    let silently_lost = pipe.kill_node(silent_node);

    // Clients keep reading while all of that is in flight — the handle is
    // `&self` throughout, so threads share it directly.
    std::thread::scope(|scope| {
        for (i, data) in originals.iter().enumerate() {
            let pipe = &pipe;
            scope.spawn(move || {
                let read = pipe.get(&format!("/objects/{i}")).expect("get succeeds");
                assert_eq!(read, *data, "object {i} must read back byte-exact");
            });
        }
    });
    println!("{OBJECTS} concurrent client reads returned byte-exact data mid-recovery");

    pipe.wait_idle();
    println!(
        "liveness after the dust settles: node {failed_node} = {:?}, node {silent_node} = {:?}",
        pipe.node_health(failed_node),
        pipe.node_health(silent_node),
    );
    assert_eq!(pipe.node_health(silent_node), NodeHealth::Dead);

    // --- Silent bit-rot: flipped bytes nobody reported ---------------------
    // Flip one byte in two blocks; the stored checksums go stale, so the
    // next scrub (or any helper read) convicts the block instead of serving
    // poisoned bytes.
    for (meta, index) in [(&metas[3], 1usize), (&metas[4], 3)] {
        pipe.corrupt(meta.stripes[0], index, 12345)
            .expect("inject corruption");
    }
    // One paced scrub cycle: walk every live node's blocks with a
    // token-bucket budget, enqueue corruption-class repairs (above
    // background recovery, below degraded reads), wait for them to drain
    // and re-verify the repaired blocks.
    let scrub = pipe.scrub(&ScrubConfig::default().with_rate(32 * 1024 * 1024));
    println!(
        "scrub cycle: {} blocks ({} KiB) verified in {:.3}s, {} corrupt found, \
         {} repaired+re-verified, {} still corrupt",
        scrub.blocks_scanned,
        scrub.bytes_scanned / 1024,
        scrub.duration.as_secs_f64(),
        scrub.corrupt.len(),
        scrub.reverified_clean,
        scrub.still_corrupt.len(),
    );
    assert!(scrub.still_corrupt.is_empty(), "scrub must heal all rot");

    // Every object still reads back byte-identical after the whole menu —
    // and the recovery must already be *complete*: these re-reads may not
    // trigger a single further repair (a get would transparently heal a
    // missed block, which would mask a broken recovery path, so pin the
    // transport byte counter instead).
    use repair_pipelining::ecpipe::transport::Transport;
    let repair_traffic_done = pipe.transport().total_bytes();
    for (i, data) in originals.iter().enumerate() {
        assert_eq!(pipe.get(&format!("/objects/{i}")).expect("get"), *data);
    }
    assert_eq!(
        pipe.transport().total_bytes(),
        repair_traffic_done,
        "recovery must have healed every block already — re-reads move no repair traffic"
    );
    println!(
        "verified all {OBJECTS} objects byte-exact after recovering {} blocks \
         (re-reads moved zero repair traffic)",
        lost.len() + silently_lost.len()
    );

    let report = pipe.shutdown();
    println!("\nmanager report:");
    println!(
        "  {} blocks ({} KiB) repaired in {:.3}s, {} re-plans, {} failures, {} KiB on the wire",
        report.blocks_repaired,
        report.bytes_repaired / 1024,
        report.wall_time.as_secs_f64(),
        report.replans,
        report.failed_repairs,
        report.network_bytes / 1024,
    );
    println!(
        "  queue wait: degraded reads mean {:.1} ms (n={}), corruption mean {:.1} ms (n={}), \
         background mean {:.1} ms (n={})",
        report.degraded_wait.mean().as_secs_f64() * 1e3,
        report.degraded_wait.count,
        report.corruption_wait.mean().as_secs_f64() * 1e3,
        report.corruption_wait.count,
        report.background_wait.mean().as_secs_f64() * 1e3,
        report.background_wait.count,
    );
    println!(
        "  scrubbing: {} blocks verified over {} cycle(s), {} corruption(s) detected",
        report.blocks_scrubbed(),
        report.scrub_cycles.len(),
        report.corruption_detected(),
    );
    println!(
        "  per-node peak in-flight roles: max {} (cap was 3)",
        report.max_inflight()
    );
    let mut load: Vec<_> = report.node_load.iter().map(|(&n, &c)| (n, c)).collect();
    load.sort();
    println!("  per-node load histogram (repairs served):");
    for (node, count) in load {
        println!("    node {node:>2}: {}", "#".repeat(count));
    }

    // --- The same node failure: sequential loop vs concurrent manager -----
    // This comparison needs two identical fresh clusters, so it drops to
    // the engine-level API the façade wraps.
    let (mut coordinator, cluster) = stripes_for_comparison();
    cluster.kill_node(failed_node);
    let sequential = full_node_recovery_over(
        &mut coordinator,
        &cluster,
        failed_node,
        &[12, 13],
        ExecStrategy::RepairPipelining,
        &ChannelTransport::with_rate_limit(LINK_RATE),
    )
    .expect("sequential recovery succeeds");

    let (mut coordinator, cluster) = stripes_for_comparison();
    cluster.kill_node(failed_node);
    let concurrent = recover_node(
        &mut coordinator,
        &cluster,
        &ChannelTransport::with_rate_limit(LINK_RATE),
        failed_node,
        &[12, 13],
        &ManagerConfig::default()
            .with_workers(4)
            .with_inflight_cap(3),
    )
    .expect("concurrent recovery succeeds");
    println!(
        "\nrecovering node {failed_node} again on a fresh cluster, same throttled transport:\n\
         \x20 sequential full_node_recovery_over: {} blocks in {:.3}s\n\
         \x20 manager with 4 workers (cap 3):     {} blocks in {:.3}s  ({:.1}x faster)",
        sequential.blocks_repaired,
        sequential.wall_time.as_secs_f64(),
        concurrent.blocks_repaired,
        concurrent.wall_time.as_secs_f64(),
        sequential.wall_time.as_secs_f64() / concurrent.wall_time.as_secs_f64().max(1e-9),
    );
    println!("repair_daemon finished");
}

/// A 24-stripe cluster for the sequential-vs-concurrent replay, stripes
/// confined to nodes 0..12 so nodes 12 and 13 can act as replacements.
fn stripes_for_comparison() -> (Coordinator, Cluster) {
    let code = Arc::new(ReedSolomon::new(6, 4).expect("valid parameters"));
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory(NODES)).expect("cluster builds");
    for s in 0..24u64 {
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                    .collect()
            })
            .collect();
        let placement: Vec<usize> = (0..6).map(|i| (s as usize + i) % 12).collect();
        cluster
            .write_stripe_with_placement(&mut coordinator, s, &data, placement)
            .expect("stripe written");
    }
    (coordinator, cluster)
}
