//! The repair manager as a long-running daemon: prioritized, concurrent,
//! liveness-aware repair orchestration (§3.3 at the runtime level).
//!
//! A 12-node cluster stores 24 (6,4) stripes on checksum-verifying stores
//! over a bandwidth-limited in-process transport (every link throttled, so
//! repairs are network-bound like the paper's 1 Gb/s testbed). The daemon
//! then faces the full menu: degraded reads (high priority), a reported
//! node failure (background recovery of every affected stripe), a helper
//! that turns out to be silently dead mid-repair (strikes → declared dead →
//! auto-enqueued recovery), and silent bit-rot (injected corruption, caught
//! by a paced scrub cycle, repaired in place at corruption priority and
//! re-verified). The same node failure is finally replayed through the
//! sequential `full_node_recovery_over` loop to show the concurrency win.
//!
//! Run with `cargo run --release --example repair_daemon`.

use std::sync::Arc;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::stripe::{BlockId, StripeId};
use repair_pipelining::ecc::ReedSolomon;
use repair_pipelining::ecpipe::manager::{ManagerConfig, RepairManager, ScrubConfig};
use repair_pipelining::ecpipe::recovery::full_node_recovery_over;
use repair_pipelining::ecpipe::transport::ChannelTransport;
use repair_pipelining::ecpipe::{Cluster, Coordinator, ExecStrategy};

/// Storage nodes 0..12 hold the stripes; 12 and 13 are replacement nodes
/// (the paper's `PUSH-Rep` setup) that receive every reconstructed block.
const STORAGE_NODES: usize = 12;
const NODES: usize = 14;
const STRIPES: u64 = 24;
const BLOCK: usize = 64 * 1024;
const SLICE: usize = 8 * 1024;
/// Per-link bandwidth, so repairs are network-bound (like the paper's
/// testbed) and concurrency pays even on one core.
const LINK_RATE: u64 = 4 * 1024 * 1024;

fn build_cluster() -> (Coordinator, Cluster, Vec<Vec<Vec<u8>>>) {
    let code = Arc::new(ReedSolomon::new(6, 4).expect("valid parameters"));
    let layout = SliceLayout::new(BLOCK, SLICE);
    let mut coordinator = Coordinator::new(code, layout);
    // Checksummed stores: every read verifies per-chunk CRC-32s, so the
    // bit-rot act below is detectable instead of silently poisoning GF math.
    let mut cluster = Cluster::in_memory_checksummed(NODES);
    let mut originals = Vec::new();
    for s in 0..STRIPES {
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                    .collect()
            })
            .collect();
        let placement: Vec<usize> = (0..6).map(|i| (s as usize + i) % STORAGE_NODES).collect();
        cluster
            .write_stripe_with_placement(&mut coordinator, s, &data, placement)
            .expect("stripe written");
        originals.push(data);
    }
    (coordinator, cluster, originals)
}

fn main() {
    let (coordinator, cluster, originals) = build_cluster();
    println!(
        "cluster: {NODES} nodes, {STRIPES} (6,4) stripes of {} KiB blocks, \
         every link throttled to {} MiB/s",
        BLOCK / 1024,
        LINK_RATE / (1024 * 1024),
    );

    let config = ManagerConfig {
        workers: 4,
        per_node_inflight_cap: 3,
        auto_requestors: vec![12, 13],
        dead_after_misses: 1,
        relocate_on_success: true,
        ..ManagerConfig::default()
    };
    let manager = RepairManager::start(
        coordinator,
        cluster,
        ChannelTransport::with_rate_limit(LINK_RATE),
        config,
    );

    // --- Degraded reads: clients blocked on a block, highest priority -----
    for (stripe, index) in [(0u64, 1usize), (5, 0), (9, 3)] {
        manager.cluster().erase_block(StripeId(stripe), index);
        manager
            .degraded_read(StripeId(stripe), index, 13)
            .expect("enqueue degraded read");
    }

    // --- A reported node failure: background recovery of its stripes ------
    let failed_node = 2;
    let lost = manager.cluster().kill_node(failed_node);
    let queued = manager.report_node_failure(failed_node);
    println!(
        "node {failed_node} reported dead: {} blocks lost, {queued} repairs queued \
         behind the degraded reads (the rest were already in flight)",
        lost.len()
    );

    // --- A silent failure: node 7 dies but nobody tells the manager -------
    // The next repair that tries to use one of its blocks as a helper gets a
    // strike; with `dead_after_misses = 1` the manager declares the node
    // dead, re-plans the repair around it and auto-enqueues its stripes.
    let silent_node = 7;
    let silently_lost = manager.cluster().kill_node(silent_node);
    manager.cluster().erase_block(StripeId(3), 0);
    manager
        .degraded_read(StripeId(3), 0, 12)
        .expect("enqueue degraded read");

    manager.wait_idle();
    println!(
        "liveness after the dust settles: node {failed_node} = {:?}, node {silent_node} = {:?}",
        manager.node_health(failed_node),
        manager.node_health(silent_node),
    );

    // --- Silent bit-rot: flipped bytes nobody reported ---------------------
    // Stripes 8 and 20 sit entirely on live nodes {8..11, 0, 1}. Flip one
    // byte in each; the stored checksums go stale, so the next scrub (or any
    // helper read) convicts the block instead of serving poisoned bytes.
    for (stripe, index) in [(8u64, 1usize), (20, 3)] {
        manager
            .cluster()
            .corrupt_block(StripeId(stripe), index, 12345)
            .expect("inject corruption");
    }
    // One paced scrub cycle: walk every live node's blocks with a
    // token-bucket budget, enqueue corruption-class repairs (above
    // background recovery, below degraded reads), wait for them to drain
    // and re-verify the repaired blocks.
    let scrub = manager.scrub(&ScrubConfig::default().with_rate(32 * 1024 * 1024));
    println!(
        "scrub cycle: {} blocks ({} KiB) verified in {:.3}s, {} corrupt found, \
         {} repaired+re-verified, {} still corrupt",
        scrub.blocks_scanned,
        scrub.bytes_scanned / 1024,
        scrub.duration.as_secs_f64(),
        scrub.corrupt.len(),
        scrub.reverified_clean,
        scrub.still_corrupt.len(),
    );
    assert!(scrub.still_corrupt.is_empty(), "scrub must heal all rot");

    // Every lost block must be back, byte-identical to a fresh re-encode.
    let code = ReedSolomon::new(6, 4).expect("valid parameters");
    let mut verified = 0;
    for block in lost.iter().chain(silently_lost.iter()) {
        let expected = expected_block(&code, &originals, *block);
        let found = (0..NODES).any(|node| {
            manager
                .cluster()
                .store(node)
                .get(*block)
                .map(|b| b == expected)
                .unwrap_or(false)
        });
        assert!(found, "block {block} not reconstructed byte-exact");
        verified += 1;
    }
    println!("verified {verified} reconstructed blocks byte-exact");

    let report = manager.shutdown();
    println!("\nmanager report:");
    println!(
        "  {} blocks ({} KiB) repaired in {:.3}s, {} re-plans, {} failures, {} KiB on the wire",
        report.blocks_repaired,
        report.bytes_repaired / 1024,
        report.wall_time.as_secs_f64(),
        report.replans,
        report.failed_repairs,
        report.network_bytes / 1024,
    );
    println!(
        "  queue wait: degraded reads mean {:.1} ms (n={}), corruption mean {:.1} ms (n={}), \
         background mean {:.1} ms (n={})",
        report.degraded_wait.mean().as_secs_f64() * 1e3,
        report.degraded_wait.count,
        report.corruption_wait.mean().as_secs_f64() * 1e3,
        report.corruption_wait.count,
        report.background_wait.mean().as_secs_f64() * 1e3,
        report.background_wait.count,
    );
    println!(
        "  scrubbing: {} blocks verified over {} cycle(s), {} corruption(s) detected",
        report.blocks_scrubbed(),
        report.scrub_cycles.len(),
        report.corruption_detected(),
    );
    println!(
        "  per-node peak in-flight roles: max {} (cap was 3)",
        report.max_inflight()
    );
    let mut load: Vec<_> = report.node_load.iter().map(|(&n, &c)| (n, c)).collect();
    load.sort();
    println!("  per-node load histogram (repairs served):");
    for (node, count) in load {
        println!("    node {node:>2}: {}", "#".repeat(count));
    }

    // --- The same node failure: sequential loop vs concurrent manager -----
    let (mut coordinator, cluster, _) = build_cluster();
    cluster.kill_node(failed_node);
    let sequential = full_node_recovery_over(
        &mut coordinator,
        &cluster,
        failed_node,
        &[12, 13],
        ExecStrategy::RepairPipelining,
        &ChannelTransport::with_rate_limit(LINK_RATE),
    )
    .expect("sequential recovery succeeds");

    let (mut coordinator, cluster, _) = build_cluster();
    cluster.kill_node(failed_node);
    let concurrent = repair_pipelining::ecpipe::manager::recover_node(
        &mut coordinator,
        &cluster,
        &ChannelTransport::with_rate_limit(LINK_RATE),
        failed_node,
        &[12, 13],
        &ManagerConfig::default()
            .with_workers(4)
            .with_inflight_cap(3),
    )
    .expect("concurrent recovery succeeds");
    println!(
        "\nrecovering node {failed_node} again on a fresh cluster, same throttled transport:\n\
         \x20 sequential full_node_recovery_over: {} blocks in {:.3}s\n\
         \x20 manager with 4 workers (cap 3):     {} blocks in {:.3}s  ({:.1}x faster)",
        sequential.blocks_repaired,
        sequential.wall_time.as_secs_f64(),
        concurrent.blocks_repaired,
        concurrent.wall_time.as_secs_f64(),
        sequential.wall_time.as_secs_f64() / concurrent.wall_time.as_secs_f64().max(1e-9),
    );
    println!("repair_daemon finished");
}

/// Re-encodes the stripe and returns the expected content of `block`.
fn expected_block(code: &ReedSolomon, originals: &[Vec<Vec<u8>>], block: BlockId) -> Vec<u8> {
    use repair_pipelining::ecc::ErasureCode;
    let data = &originals[block.stripe.0 as usize];
    if block.index < 4 {
        data[block.index].clone()
    } else {
        code.encode(data).expect("encode")[block.index].clone()
    }
}
