//! Full-node recovery: lose a storage node, rebuild every block it held.
//!
//! Demonstrates the greedy least-recently-selected helper scheduling of §3.3
//! and the effect of spreading the reconstructed blocks over multiple
//! requestors — functionally through the `EcPipe` façade (report the
//! failure, wait, read the objects back byte-exact) and in predicted
//! recovery rate on the simulator.
//!
//! Run with `cargo run --release --example full_node_recovery`.

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecpipe::{EcPipeBuilder, ExecStrategy, StoreBackend};
use repair_pipelining::repair::fullnode::{
    build_recovery_schedule, plan_recovery, recovery_rate, AffectedStripe, HelperSelection,
};
use repair_pipelining::repair::rp;
use repair_pipelining::simnet::{CostModel, Simulator, Topology, GBIT};

fn main() {
    // --- Functional recovery on the runtime -------------------------------
    let pipe = EcPipeBuilder::new()
        .code(9, 6)
        .block_size(256 * 1024)
        .slice_size(32 * 1024)
        .store(StoreBackend::memory(12))
        .strategy(ExecStrategy::RepairPipelining)
        .build()
        .expect("valid configuration");

    // Four objects of four (9,6) stripes each.
    let originals: Vec<Vec<u8>> = (0..4u64)
        .map(|o| {
            (0..4 * 6 * 256 * 1024)
                .map(|b| ((b as u64 * 7 + o * 13) % 251) as u8)
                .collect()
        })
        .collect();
    for (o, data) in originals.iter().enumerate() {
        pipe.put(&format!("/objects/{o}"), data).expect("put");
    }

    let failed_node = 2;
    let lost = pipe.kill_node(failed_node);
    println!("node {failed_node} failed, losing {} blocks", lost.len());

    let queued = pipe.report_node_failure(failed_node);
    pipe.wait_idle();
    for (o, data) in originals.iter().enumerate() {
        assert_eq!(pipe.get(&format!("/objects/{o}")).expect("get"), *data);
    }
    let report = pipe.shutdown();
    println!(
        "recovered {queued} blocks ({} bytes total) across surviving nodes; \
         all objects read back byte-exact",
        report.bytes_repaired,
    );

    // --- Predicted recovery rate on the paper's testbed -------------------
    let stripes: Vec<AffectedStripe> = (0..64)
        .map(|i| AffectedStripe {
            available_nodes: (0..13).map(|j| 1 + (i * 5 + j * 3) % 16).fold(
                Vec::new(),
                |mut acc, n| {
                    if !acc.contains(&n) {
                        acc.push(n);
                    }
                    acc
                },
            ),
        })
        .map(|mut s| {
            let mut next = 1;
            while s.available_nodes.len() < 13 {
                if !s.available_nodes.contains(&next) {
                    s.available_nodes.push(next);
                }
                next += 1;
            }
            s
        })
        .collect();
    let sim = Simulator::new(Topology::flat(40, GBIT), CostModel::paper_local_cluster());
    let sim_layout = SliceLayout::new(4 * 1024 * 1024, 64 * 1024);

    println!("\npredicted full-node recovery rate (64 stripes of 4 MiB blocks, (14,10)):");
    for (label, requestors, selection) in [
        ("1 requestor ", vec![20usize], HelperSelection::Greedy),
        ("8 requestors", (20..28).collect(), HelperSelection::Greedy),
        (
            "8 requestors (no scheduling)",
            (20..28).collect(),
            HelperSelection::LowestIndex,
        ),
    ] {
        let jobs =
            plan_recovery(&stripes, 10, &requestors, sim_layout, selection).expect("recovery plan");
        let schedule = build_recovery_schedule(&jobs, rp::schedule);
        let rate = recovery_rate(&jobs, sim.run(&schedule).makespan);
        println!("  {label}: {:.1} MiB/s", rate / (1024.0 * 1024.0));
    }
}
