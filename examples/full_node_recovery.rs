//! Full-node recovery: lose a storage node, rebuild every block it held.
//!
//! Demonstrates the greedy least-recently-selected helper scheduling of §3.3
//! and the effect of spreading the reconstructed blocks over multiple
//! requestors, both functionally (on the ECPipe runtime) and in predicted
//! recovery rate (on the simulator).
//!
//! Run with `cargo run --release --example full_node_recovery`.

use std::sync::Arc;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::ReedSolomon;
use repair_pipelining::ecpipe::recovery::full_node_recovery;
use repair_pipelining::ecpipe::{Cluster, Coordinator, ExecStrategy};
use repair_pipelining::repair::fullnode::{
    build_recovery_schedule, plan_recovery, recovery_rate, AffectedStripe, HelperSelection,
};
use repair_pipelining::repair::rp;
use repair_pipelining::simnet::{CostModel, Simulator, Topology, GBIT};

fn main() {
    // --- Functional recovery on the runtime -------------------------------
    let code = Arc::new(ReedSolomon::new(9, 6).expect("valid parameters"));
    let layout = SliceLayout::new(256 * 1024, 32 * 1024);
    let mut coordinator = Coordinator::new(code, layout);
    let mut cluster = Cluster::in_memory(12);

    for s in 0..16u64 {
        let data: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                (0..layout.block_size)
                    .map(|b| ((b as u64 * 7 + i as u64 * 13 + s) % 251) as u8)
                    .collect()
            })
            .collect();
        cluster
            .write_stripe(&mut coordinator, s, &data)
            .expect("stripe written");
    }

    let failed_node = 2;
    let lost = cluster.kill_node(failed_node);
    println!("node {failed_node} failed, losing {} blocks", lost.len());

    let report = full_node_recovery(
        &mut coordinator,
        &cluster,
        failed_node,
        &[10, 11],
        ExecStrategy::RepairPipelining,
    )
    .expect("recovery succeeds");
    println!(
        "recovered {} blocks ({} bytes) onto requestors {:?}",
        report.blocks_repaired,
        report.bytes_repaired,
        report.per_requestor.keys().collect::<Vec<_>>()
    );

    // --- Predicted recovery rate on the paper's testbed -------------------
    let stripes: Vec<AffectedStripe> = (0..64)
        .map(|i| AffectedStripe {
            available_nodes: (0..13).map(|j| 1 + (i * 5 + j * 3) % 16).fold(
                Vec::new(),
                |mut acc, n| {
                    if !acc.contains(&n) {
                        acc.push(n);
                    }
                    acc
                },
            ),
        })
        .map(|mut s| {
            let mut next = 1;
            while s.available_nodes.len() < 13 {
                if !s.available_nodes.contains(&next) {
                    s.available_nodes.push(next);
                }
                next += 1;
            }
            s
        })
        .collect();
    let sim = Simulator::new(Topology::flat(40, GBIT), CostModel::paper_local_cluster());
    let sim_layout = SliceLayout::new(4 * 1024 * 1024, 64 * 1024);

    println!("\npredicted full-node recovery rate (64 stripes of 4 MiB blocks, (14,10)):");
    for (label, requestors, selection) in [
        ("1 requestor ", vec![20usize], HelperSelection::Greedy),
        ("8 requestors", (20..28).collect(), HelperSelection::Greedy),
        (
            "8 requestors (no scheduling)",
            (20..28).collect(),
            HelperSelection::LowestIndex,
        ),
    ] {
        let jobs =
            plan_recovery(&stripes, 10, &requestors, sim_layout, selection).expect("recovery plan");
        let schedule = build_recovery_schedule(&jobs, rp::schedule);
        let rate = recovery_rate(&jobs, sim.run(&schedule).makespan);
        println!("  {label}: {:.1} MiB/s", rate / (1024.0 * 1024.0));
    }
}
