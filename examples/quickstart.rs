//! Quickstart: encode a stripe, lose a block, repair it with repair
//! pipelining, and check the reconstructed bytes.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::ReedSolomon;
use repair_pipelining::ecpipe::{Cluster, Coordinator, ExecStrategy};

fn main() {
    // Facebook's (14,10) Reed-Solomon code over 4 MiB blocks split into
    // 32 KiB slices.
    let code = Arc::new(ReedSolomon::new(14, 10).expect("valid parameters"));
    let layout = SliceLayout::new(4 * 1024 * 1024, 32 * 1024);
    let mut coordinator = Coordinator::new(code, layout);

    // A 16-node cluster with in-memory block stores.
    let mut cluster = Cluster::in_memory(16);

    // Write one stripe of data.
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..layout.block_size)
                .map(|b| ((b * 31 + i * 97) % 251) as u8)
                .collect()
        })
        .collect();
    let stripe = cluster
        .write_stripe(&mut coordinator, 0, &data)
        .expect("stripe written");
    println!("wrote stripe {stripe:?}: 10 data blocks + 4 parity blocks across 14 nodes");

    // A node loses block 3 of the stripe.
    cluster.erase_block(stripe, 3);
    println!("erased block 3");

    // Repair it at node 15 (a node holding no block of this stripe) with
    // every strategy and compare against the original data.
    for strategy in [
        ExecStrategy::Conventional,
        ExecStrategy::Ppr,
        ExecStrategy::RepairPipelining,
    ] {
        let repaired = cluster
            .repair(&mut coordinator, stripe, 3, 15, strategy)
            .expect("repair succeeds");
        assert_eq!(repaired, data[3]);
        println!(
            "{:<6} reconstructed block 3 correctly ({} bytes)",
            strategy.label(),
            repaired.len()
        );
    }

    println!("quickstart finished: all strategies reconstructed the lost block");
}
