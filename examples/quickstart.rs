//! Quickstart: the `EcPipe` façade end to end — build a runtime with
//! `EcPipeBuilder`, `put` an object, survive an erased block, a killed node
//! and silent bit-rot, and read the object back byte-exact every time.
//!
//! Run with `cargo run --release --example quickstart`.

use repair_pipelining::ecpipe::{EcPipeBuilder, ExecStrategy, ScrubConfig, StoreBackend};

fn main() {
    // A 16-node cluster with checksum-verifying in-memory stores, Facebook's
    // (14,10) Reed-Solomon code, 256 KiB blocks in 32 KiB slices, repairs
    // executed with repair pipelining. One builder call replaces the old
    // Cluster + Coordinator + RepairManager wiring.
    let pipe = EcPipeBuilder::new()
        .code(14, 10)
        .block_size(256 * 1024)
        .slice_size(32 * 1024)
        .store(StoreBackend::memory_checksummed(16))
        .strategy(ExecStrategy::RepairPipelining)
        .build()
        .expect("valid configuration");

    // Write an object spanning several stripes (deliberately unaligned).
    let data: Vec<u8> = (0..2 * 10 * 256 * 1024 + 12345)
        .map(|i| ((i * 31 + 7) % 251) as u8)
        .collect();
    let meta = pipe.put("/objects/demo", &data).expect("object written");
    println!(
        "put {} ({} bytes) as {} stripes of (14,10) coded blocks",
        meta.name,
        meta.size,
        meta.stripes.len()
    );

    // --- An erased block: the read transparently becomes a degraded read --
    pipe.erase_block(meta.stripes[0], 3);
    assert_eq!(pipe.get("/objects/demo").expect("degraded read"), data);
    println!("erased block 3 of stripe 0: get() still returned every byte");

    // --- A whole node dies: background recovery + degraded reads ----------
    let victim = 2;
    let lost = pipe.kill_node(victim);
    let queued = pipe.report_node_failure(victim);
    assert_eq!(
        pipe.get("/objects/demo").expect("read during recovery"),
        data
    );
    pipe.wait_idle();
    println!(
        "killed node {victim} ({} blocks lost, {queued} repairs queued): \
         get() served during recovery, byte-exact",
        lost.len()
    );

    // --- Silent bit-rot: a scrub finds it, a range read heals through it --
    pipe.corrupt(meta.stripes[1], 1, 4096)
        .expect("inject corruption");
    let range = 10 * 256 * 1024 + 256 * 1024 + 4000..10 * 256 * 1024 + 256 * 1024 + 5000;
    let bytes = pipe
        .get_range("/objects/demo", range.clone())
        .expect("range read over the corrupt chunk");
    assert_eq!(bytes, &data[range]);
    let scrub = pipe.scrub(&ScrubConfig::default());
    println!(
        "flipped a byte in stripe 1: the range read healed it in place \
         (scrub re-verified {} blocks, {} still corrupt)",
        scrub.blocks_scanned,
        scrub.still_corrupt.len()
    );

    let report = pipe.shutdown();
    println!(
        "shutdown report: {} blocks repaired ({} re-plans, {} failures), \
         {} KiB moved for repairs",
        report.blocks_repaired,
        report.replans,
        report.failed_repairs,
        report.network_bytes / 1024
    );
    assert_eq!(report.failed_repairs, 0);
    println!("quickstart finished: every read was byte-exact");
}
