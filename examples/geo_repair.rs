//! Geo-distributed repair with weighted path selection (§4.3, Figure 9).
//!
//! Builds the paper's North America EC2 cluster from the Table 1 bandwidth
//! measurements, issues a degraded read from a requestor in each region, and
//! compares repair pipelining over a random helper path against the optimal
//! path found by Algorithm 2.
//!
//! Run with `cargo run --release --example geo_repair`.

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::repair::{ppr, rp, weighted_path, SingleRepairJob};
use repair_pipelining::simnet::geo;
use repair_pipelining::simnet::{CostModel, Simulator};

fn main() {
    let layout = SliceLayout::paper_default();
    let base = geo::north_america(4);

    println!("North America EC2 cluster, (16,12) RS, 64 MiB blocks:");
    for (region_index, region) in geo::NORTH_AMERICA_REGIONS.iter().enumerate() {
        let topo = geo::with_fluctuation(&base, 0.2, region_index as u64 + 1);
        let sim = Simulator::new(topo.clone(), CostModel::ec2_t2_micro());
        let requestor = region_index * 4;
        let candidates: Vec<usize> = (0..16).filter(|&n| n != requestor).collect();

        // A random (index-ordered) path of 12 helpers.
        let random_path: Vec<usize> = candidates.iter().copied().take(12).collect();
        let random_job = SingleRepairJob::new(random_path, requestor, layout);
        let ppr_time = sim.run(&ppr::schedule(&random_job)).makespan;
        let rp_time = sim.run(&rp::schedule(&random_job)).makespan;

        // The optimal path minimising the bottleneck link weight.
        let selection = weighted_path::optimal_path(&topo, requestor, &candidates, 12)
            .expect("15 candidates is enough for k = 12");
        let optimal_job = SingleRepairJob::new(selection.path.clone(), requestor, layout);
        let optimal_time = sim.run(&rp::schedule(&optimal_job)).makespan;

        println!(
            "  requestor in {region:<10}  PPR {ppr_time:6.1} s   RP {rp_time:6.1} s   RP+optimal {optimal_time:6.1} s"
        );
        println!(
            "    optimal path bottleneck bandwidth: {:.1} Mb/s",
            8.0 / selection.bottleneck_weight / 1e6
        );
    }
}
