//! Umbrella crate for the repair-pipelining reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for detailed documentation:
//!
//! * [`gf256`] — GF(2^8) arithmetic and matrices.
//! * [`ecc`] — Reed-Solomon, LRC and Rotated RS codes, stripes and slices.
//! * [`simnet`] — discrete-event cluster/network simulator.
//! * [`repair`] — repair planning algorithms (conventional, PPR, repair
//!   pipelining and its extensions).
//! * [`ecpipe`] — the ECPipe middleware runtime (coordinator / helpers /
//!   requestors over real threads and channels).
//! * [`dfs`] — models of HDFS-RAID, HDFS-3 and QFS used by the evaluation.

#![forbid(unsafe_code)]

pub use dfs;
pub use ecc;
pub use ecpipe;
pub use gf256;
pub use repair;
pub use simnet;
