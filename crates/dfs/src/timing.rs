//! Timing models for the storage-system integration experiments (Figure 10).
//!
//! The measurable differences between a storage system's original repair and
//! the ECPipe-integrated repair come from three sources (§6.3):
//!
//! 1. the repair scheme itself (conventional vs repair pipelining),
//! 2. reading helper blocks through the storage-system routine (checksumming
//!    plus the extra copy through the DataNode / ChunkServer process), which
//!    caps the ingest throughput at the reconstructing node, and
//! 3. connection setup to `k` DataNodes, which the original repair pays per
//!    stripe and which grows with `k`.
//!
//! The builders here attach those overheads to the repair schedules produced
//! by the `repair` crate and time everything on the paper's local-cluster
//! topology (1 Gb/s links, the `CostModel::paper_local_cluster` disk and CPU
//! rates).

use ecc::slice::SliceLayout;
use repair::fullnode::{self, AffectedStripe, HelperSelection};
use repair::{conventional, rp, SingleRepairJob};
use simnet::{CostModel, Schedule, Simulator, TaskId, Topology, GBIT};

use crate::profile::SystemProfile;

/// The three repair paths compared in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairVariant {
    /// The storage system's own repair implementation (conventional repair
    /// through the storage routine).
    Original,
    /// Conventional repair executed by ECPipe (helpers read natively).
    ConventionalEcPipe,
    /// Repair pipelining executed by ECPipe.
    RepairPipeliningEcPipe,
}

impl RepairVariant {
    /// Label used in the figure output.
    #[deprecated(since = "0.2.0", note = "use the `Display` impl instead")]
    pub fn label(&self) -> &'static str {
        match self {
            RepairVariant::Original => "Original",
            RepairVariant::ConventionalEcPipe => "Conv.@ECPipe",
            RepairVariant::RepairPipeliningEcPipe => "RP@ECPipe",
        }
    }
}

impl std::fmt::Display for RepairVariant {
    /// Formats as the label used in the figure output (`Original`,
    /// `Conv.@ECPipe`, `RP@ECPipe`), uniform across reports and benches.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One string table: the deprecated alias keeps serving it until it
        // is removed. `pad` honors width/alignment options in table output.
        #[allow(deprecated)]
        f.pad(self.label())
    }
}

/// Builds the storage system's original repair schedule for one single-block
/// repair: conventional repair, with the reconstructing node opening `k`
/// connections serially and ingesting every helper block through the
/// storage-routine read path.
// Slice index loops mirror the paper's per-slice schedule and index the
// per-helper read matrix; iterator form would obscure that structure.
#[allow(clippy::needless_range_loop)]
pub fn original_repair_schedule(profile: &SystemProfile, job: &SingleRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.slice_count();
    let k = job.k();
    // Serial connection setup to every helper before any data flows.
    let setup = s.delay(job.requestor, k as f64 * profile.connection_setup, &[]);
    // Per-helper disk reads.
    let mut disk: Vec<Vec<TaskId>> = Vec::with_capacity(k);
    for &h in &job.helpers {
        let reads: Vec<TaskId> = (0..slices)
            .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
            .collect();
        disk.push(reads);
    }
    for j in 0..slices {
        let slice_len = job.layout.slice_len(j) as u64;
        let mut arrivals: Vec<TaskId> = Vec::with_capacity(k);
        for (i, &h) in job.helpers.iter().enumerate() {
            let t = s.transfer(h, job.requestor, slice_len, &[disk[i][j], setup]);
            arrivals.push(t);
        }
        // Ingest through the storage routine: the reconstructing node spends
        // CPU time proportional to the bytes received, at the routine's
        // effective throughput, before decoding.
        let routine_seconds = (slice_len * k as u64) as f64 / profile.routine_read_bps;
        let ingested = s.delay(job.requestor, routine_seconds, &arrivals);
        s.compute(job.requestor, slice_len * k as u64, &[ingested]);
    }
    s
}

/// The simulator for the paper's local testbed: 16 storage nodes plus a
/// requestor/client node (id 16) and a spare, all on 1 Gb/s links.
fn local_cluster_sim() -> Simulator {
    Simulator::new(Topology::flat(18, GBIT), CostModel::paper_local_cluster())
}

/// Single-block repair time (seconds) for a storage system under one variant,
/// with `k` helpers on the paper's local testbed.
pub fn single_block_repair_time(
    profile: &SystemProfile,
    k: usize,
    layout: SliceLayout,
    variant: RepairVariant,
) -> f64 {
    let requestor = 16;
    let helpers: Vec<usize> = (0..k).collect();
    let job = SingleRepairJob::new(helpers, requestor, layout);
    let schedule = match variant {
        RepairVariant::Original => original_repair_schedule(profile, &job),
        RepairVariant::ConventionalEcPipe => conventional::schedule(&job),
        RepairVariant::RepairPipeliningEcPipe => rp::schedule(&job),
    };
    local_cluster_sim().run(&schedule).makespan
}

/// Full-node recovery rate (bytes per second) for HDFS-3-style recovery:
/// `stripes` stripes spread over 16 DataNodes, one failed DataNode, and the
/// lost blocks rebuilt on a single replacement DataNode (§6.3).
pub fn full_node_recovery_rate(
    profile: &SystemProfile,
    n: usize,
    k: usize,
    layout: SliceLayout,
    stripes: usize,
    variant: RepairVariant,
) -> f64 {
    let nodes = 16usize;
    let replacement = 16usize;
    let affected: Vec<AffectedStripe> = (0..stripes)
        .map(|i| AffectedStripe {
            // The failed node is node 0; the stripe's surviving blocks sit on
            // a rotating window of the other nodes.
            available_nodes: (0..n - 1).map(|j| 1 + (i + j) % (nodes - 1)).collect(),
        })
        .collect();
    let jobs = fullnode::plan_recovery(
        &affected,
        k,
        &[replacement],
        layout,
        match variant {
            RepairVariant::RepairPipeliningEcPipe => HelperSelection::Greedy,
            _ => HelperSelection::LowestIndex,
        },
    )
    .expect("the generated recovery scenario always has enough helpers");
    let schedule = match variant {
        RepairVariant::RepairPipeliningEcPipe => {
            fullnode::build_recovery_schedule(&jobs, rp::schedule)
        }
        RepairVariant::ConventionalEcPipe => {
            fullnode::build_recovery_schedule(&jobs, conventional::schedule)
        }
        RepairVariant::Original => {
            fullnode::build_recovery_schedule(&jobs, |job| original_repair_schedule(profile, job))
        }
    };
    let report = local_cluster_sim().run(&schedule);
    fullnode::recovery_rate(&jobs, report.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::slice::{KIB, MIB};

    #[test]
    fn ecpipe_rp_beats_conventional_beats_original() {
        let profile = SystemProfile::hdfs_raid();
        let layout = SliceLayout::new(64 * MIB, 32 * KIB);
        let original = single_block_repair_time(&profile, 10, layout, RepairVariant::Original);
        let conv =
            single_block_repair_time(&profile, 10, layout, RepairVariant::ConventionalEcPipe);
        let rp =
            single_block_repair_time(&profile, 10, layout, RepairVariant::RepairPipeliningEcPipe);
        assert!(rp < conv, "rp {rp} conv {conv}");
        assert!(conv < original, "conv {conv} original {original}");
        // The paper reports 82.7% - 91.2% repair-time reduction for
        // HDFS-RAID and up to 21.8% from moving conventional repair into
        // ECPipe.
        let rp_reduction = 1.0 - rp / original;
        assert!(rp_reduction > 0.8, "reduction {rp_reduction}");
        let conv_reduction = 1.0 - conv / original;
        assert!(
            conv_reduction > 0.05 && conv_reduction < 0.35,
            "conv reduction {conv_reduction}"
        );
    }

    #[test]
    fn repair_time_grows_with_k_for_original_but_not_rp() {
        let profile = SystemProfile::qfs();
        let layout = SliceLayout::new(16 * MIB, 32 * KIB);
        let orig_small = single_block_repair_time(&profile, 6, layout, RepairVariant::Original);
        let orig_large = single_block_repair_time(&profile, 12, layout, RepairVariant::Original);
        let rp_small =
            single_block_repair_time(&profile, 6, layout, RepairVariant::RepairPipeliningEcPipe);
        let rp_large =
            single_block_repair_time(&profile, 12, layout, RepairVariant::RepairPipeliningEcPipe);
        assert!(orig_large > 1.5 * orig_small);
        assert!(rp_large < 1.2 * rp_small);
    }

    #[test]
    fn hdfs3_recovery_rate_improves_with_ecpipe_rp() {
        let profile = SystemProfile::hdfs3();
        let layout = SliceLayout::new(4 * MIB, 256 * KIB);
        let original =
            full_node_recovery_rate(&profile, 14, 10, layout, 16, RepairVariant::Original);
        let rp = full_node_recovery_rate(
            &profile,
            14,
            10,
            layout,
            16,
            RepairVariant::RepairPipeliningEcPipe,
        );
        // The paper reports 5.1x - 16x recovery-rate gains for HDFS-3.
        assert!(rp > 2.0 * original, "rp {rp} original {original}");
    }
}
