//! Simulated distributed storage systems: HDFS-RAID, HDFS-3 and QFS.
//!
//! The paper integrates ECPipe into three open-source storage systems (§5.1,
//! §6.3). This crate rebuilds the pieces of those systems that the
//! integration and the evaluation depend on:
//!
//! * a file layer (files are split into fixed-size blocks, grouped into
//!   stripes and erasure coded — offline by a RaidNode for HDFS-RAID, online
//!   on the write path for HDFS-3 and QFS);
//! * NameNode-style metadata (block locations, block reports, detection of
//!   failed blocks);
//! * the *original repair path* of each system, in which the node performing
//!   the reconstruction opens a connection to `k` DataNodes and pulls the
//!   blocks through the storage-system read routine; and
//! * the ECPipe integration, in which a helper daemon co-located with each
//!   storage node reads blocks directly from the native file system and the
//!   repair itself is delegated to the `ecpipe` runtime.
//!
//! Functional behaviour (what bytes a degraded read returns, which blocks a
//! full-node recovery rebuilds) runs on the real [`ecpipe`] runtime; the
//! timing differences between the original repair and ECPipe (Figure 10) are
//! modelled with [`simnet`] schedules in the [`timing`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod file_system;
mod profile;
pub mod timing;

pub use file_system::{FileMeta, RepairPath, SimulatedDfs};
pub use profile::{EncodingMode, SystemProfile};

/// Convenience result alias re-exported from the `ecpipe` runtime.
pub type Result<T> = ecpipe::Result<T>;
