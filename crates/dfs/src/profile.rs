//! Per-system configuration profiles.

use ecc::slice::{SliceLayout, KIB, MIB};

/// When a storage system erasure-codes its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingMode {
    /// Data is first written replicated and encoded later in the background
    /// (HDFS-RAID's RaidNode, §5.1).
    Offline,
    /// The client encodes on the write path, buffering `cell_size` bytes per
    /// block before appending (HDFS-3 and QFS, §5.1).
    Online {
        /// The per-block write buffer (1 MiB in both HDFS-3 and QFS).
        cell_size: usize,
    },
}

/// Configuration and overhead model of one storage system.
///
/// The overhead fields drive the Figure 10 timing comparisons:
///
/// * `routine_read_bps` — effective throughput (bytes/second) at which the
///   reconstructing node can ingest helper blocks through the
///   distributed-storage read routine. Checksumming, packet framing and the
///   extra copy through the DataNode/ChunkServer process keep this slightly
///   below the 1 Gb/s wire rate, which is why moving conventional repair
///   into ECPipe (helpers read blocks natively) already shaves 20-26% off
///   the repair time (§6.3).
/// * `connection_setup` — seconds to open one connection to a DataNode; the
///   original HDFS-3 repair opens `k` of them serially before reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemProfile {
    /// Human-readable system name.
    pub name: &'static str,
    /// Default `(n, k)` code parameters.
    pub default_code: (usize, usize),
    /// Default block size in bytes.
    pub block_size: usize,
    /// When encoding happens.
    pub encoding: EncodingMode,
    /// Throughput of the storage-routine read path (bytes per second).
    pub routine_read_bps: f64,
    /// Time (seconds) to open a connection to one storage node.
    pub connection_setup: f64,
}

impl SystemProfile {
    /// Facebook's HDFS-RAID (Hadoop 0.20 + RaidNode, offline encoding).
    pub fn hdfs_raid() -> Self {
        SystemProfile {
            name: "HDFS-RAID",
            default_code: (14, 10),
            block_size: 64 * MIB,
            encoding: EncodingMode::Offline,
            routine_read_bps: 98.0e6,
            connection_setup: 3.0e-3,
        }
    }

    /// Hadoop 3.1.1 HDFS with built-in erasure coding (online encoding with
    /// 1 MiB cells).
    pub fn hdfs3() -> Self {
        SystemProfile {
            name: "HDFS-3",
            default_code: (14, 10),
            block_size: 64 * MIB,
            encoding: EncodingMode::Online { cell_size: MIB },
            routine_read_bps: 115.0e6,
            connection_setup: 8.0e-3,
        }
    }

    /// Quantcast File System: fixed (9,6) RS, online encoding with 1 MiB
    /// buffers.
    pub fn qfs() -> Self {
        SystemProfile {
            name: "QFS",
            default_code: (9, 6),
            block_size: 64 * MIB,
            encoding: EncodingMode::Online { cell_size: MIB },
            routine_read_bps: 92.0e6,
            connection_setup: 3.0e-3,
        }
    }

    /// The slice layout ECPipe uses for this system (32 KiB slices by
    /// default, as in the paper's evaluation).
    pub fn ecpipe_layout(&self) -> SliceLayout {
        SliceLayout::new(self.block_size, 32 * KIB)
    }

    /// A copy of the profile with a different block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// A copy of the profile with different `(n, k)` parameters.
    pub fn with_code(mut self, n: usize, k: usize) -> Self {
        self.default_code = (n, k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_defaults() {
        let raid = SystemProfile::hdfs_raid();
        assert_eq!(raid.encoding, EncodingMode::Offline);
        assert_eq!(raid.default_code, (14, 10));

        let hdfs3 = SystemProfile::hdfs3();
        assert_eq!(hdfs3.encoding, EncodingMode::Online { cell_size: MIB });

        let qfs = SystemProfile::qfs();
        assert_eq!(qfs.default_code, (9, 6));
        assert_eq!(qfs.block_size, 64 * MIB);
    }

    #[test]
    fn layout_uses_32kib_slices() {
        let layout = SystemProfile::qfs().ecpipe_layout();
        assert_eq!(layout.slice_size, 32 * KIB);
        assert_eq!(layout.slice_count(), 2048);
    }

    #[test]
    fn builders_override_fields() {
        let p = SystemProfile::hdfs3().with_block_size(MIB).with_code(9, 6);
        assert_eq!(p.block_size, MIB);
        assert_eq!(p.default_code, (9, 6));
    }
}
