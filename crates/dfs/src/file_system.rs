//! A functional model of an erasure-coded distributed file system.
//!
//! [`SimulatedDfs`] provides the pieces of HDFS-RAID / HDFS-3 / QFS that the
//! ECPipe integration touches: a file namespace, fixed-size blocks grouped
//! into stripes, offline or online encoding, block reports that detect
//! failures, degraded reads and full-node recovery. Blocks live in per-node
//! [`ecpipe::BlockStore`]s and repairs run on the real ECPipe runtime, so
//! every reconstructed byte can be checked.
//!
//! **How this relates to the [`ecpipe::EcPipe`] façade:** the façade is the
//! runtime's own client API — the thing a production deployment would call.
//! `SimulatedDfs` deliberately stays *beside* it, modeling the semantics of
//! a third-party storage system that ECPipe integrates *into*: it has a
//! profile-driven block size and encoding mode (offline RaidNode passes),
//! counts reads served through the storage routine versus natively by
//! helpers, and chooses between the system's original repair path and the
//! ECPipe path per read ([`RepairPath`]). The two share the low-level
//! machinery (cluster, coordinator, executors) and the stripe-chunking rule
//! ([`ecpipe::chunk_into_stripes`]), so their write layouts cannot drift
//! apart — but an object written through one is intentionally not visible
//! through the other's namespace.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use ecc::stripe::{BlockId, StripeId};
use ecc::{ErasureCode, Lrc, ReedSolomon};
use ecpipe::exec::ExecStrategy;
use ecpipe::{Cluster, Coordinator, EcPipeError};
use simnet::NodeId;

use crate::profile::{EncodingMode, SystemProfile};
use crate::Result;

/// Metadata of one file: its original size and the stripes that store it.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// File name.
    pub name: String,
    /// Original size in bytes (before padding).
    pub size: usize,
    /// The stripes storing the file, in order. Each stripe holds `k` data
    /// blocks of the file.
    pub stripes: Vec<StripeId>,
}

/// Which repair path a degraded read or recovery uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPath {
    /// The storage system's own repair: the reconstructing node pulls `k`
    /// blocks through the storage-system read routine (conventional repair).
    Original,
    /// Repair delegated to ECPipe with the given execution strategy; helpers
    /// read blocks natively.
    EcPipe(ExecStrategy),
}

/// A simulated erasure-coded distributed file system.
pub struct SimulatedDfs {
    profile: SystemProfile,
    cluster: Cluster,
    coordinator: Coordinator,
    files: HashMap<String, FileMeta>,
    next_stripe: u64,
    /// Stripes written but not yet encoded (offline mode only): the parity
    /// blocks are missing until the RaidNode runs.
    pending_encoding: Vec<StripeId>,
    /// Number of block reads served through the storage routine (original
    /// repair path).
    routine_reads: usize,
    /// Number of block reads served natively by ECPipe helpers.
    native_reads: usize,
}

impl SimulatedDfs {
    /// Creates a storage system with `nodes` storage nodes following
    /// `profile`, using Reed-Solomon coding.
    pub fn new(profile: SystemProfile, nodes: usize) -> Result<Self> {
        let (n, k) = profile.default_code;
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(n, k)?);
        Self::with_code(profile, nodes, code)
    }

    /// Creates a storage system with an Azure-style LRC code (used to study
    /// repair-friendly codes under the same file layer).
    pub fn new_with_lrc(
        profile: SystemProfile,
        nodes: usize,
        k: usize,
        local_groups: usize,
        global_parities: usize,
    ) -> Result<Self> {
        let code: Arc<dyn ErasureCode> = Arc::new(Lrc::new(k, local_groups, global_parities)?);
        Self::with_code(profile, nodes, code)
    }

    fn with_code(profile: SystemProfile, nodes: usize, code: Arc<dyn ErasureCode>) -> Result<Self> {
        if nodes < code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("need at least {} nodes, got {nodes}", code.n()),
            });
        }
        let coordinator = Coordinator::new(code, profile.ecpipe_layout());
        Ok(SimulatedDfs {
            profile,
            cluster: Cluster::new(ecpipe::StoreBackend::memory(nodes))?,
            coordinator,
            files: HashMap::new(),
            next_stripe: 0,
            pending_encoding: Vec::new(),
            routine_reads: 0,
            native_reads: 0,
        })
    }

    /// The system profile.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// The number of storage nodes.
    pub fn num_nodes(&self) -> usize {
        self.cluster.num_nodes()
    }

    /// Reads served through the storage-system routine so far.
    pub fn routine_reads(&self) -> usize {
        self.routine_reads
    }

    /// Reads served natively by ECPipe helpers so far.
    pub fn native_reads(&self) -> usize {
        self.native_reads
    }

    /// File metadata, if the file exists.
    pub fn file(&self, name: &str) -> Option<&FileMeta> {
        self.files.get(name)
    }

    /// Writes a file. The data is split into blocks of the profile's block
    /// size, grouped into stripes of `k` blocks (zero-padded), and encoded
    /// according to the profile's encoding mode.
    pub fn write_file(&mut self, name: &str, data: &[u8]) -> Result<FileMeta> {
        let k = self.coordinator.code().k();
        let block_size = self.profile.block_size;
        // Same chunking rule as the EcPipe façade's `put`, so the runtime
        // and simulation write layouts cannot drift apart.
        let chunked = ecpipe::chunk_into_stripes(data, k, block_size);
        let mut stripes = Vec::with_capacity(chunked.len());
        for blocks in chunked {
            let stripe_id = self.next_stripe;
            self.next_stripe += 1;
            let placement: Vec<NodeId> = (0..self.coordinator.code().n())
                .map(|i| (stripe_id as usize + i) % self.cluster.num_nodes())
                .collect();
            let id = self.cluster.write_stripe_with_placement(
                &mut self.coordinator,
                stripe_id,
                &blocks,
                placement,
            )?;
            if self.profile.encoding == EncodingMode::Offline {
                // Offline mode: the parity blocks are not considered durable
                // until the RaidNode has verified them; model this by
                // tracking the stripe as pending.
                self.pending_encoding.push(id);
            }
            stripes.push(id);
        }
        let meta = FileMeta {
            name: name.to_string(),
            size: data.len(),
            stripes,
        };
        self.files.insert(name.to_string(), meta.clone());
        Ok(meta)
    }

    /// Runs the background RaidNode pass (offline encoding systems only):
    /// marks all pending stripes as fully encoded and returns how many were
    /// processed.
    pub fn run_raid_node(&mut self) -> usize {
        let processed = self.pending_encoding.len();
        self.pending_encoding.clear();
        processed
    }

    /// Stripes written but not yet processed by the RaidNode.
    pub fn pending_encoding(&self) -> usize {
        self.pending_encoding.len()
    }

    /// Reads a whole file back, using degraded reads (through `path`) for any
    /// missing block.
    pub fn read_file(&mut self, name: &str, path: RepairPath) -> Result<Vec<u8>> {
        let meta = self
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| EcPipeError::InvalidRequest {
                reason: format!("no such file: {name}"),
            })?;
        let k = self.coordinator.code().k();
        let block_size = self.profile.block_size;
        let mut out = Vec::with_capacity(meta.size);
        for &stripe in &meta.stripes {
            for b in 0..k {
                if out.len() >= meta.size {
                    break;
                }
                let block = match self.cluster.read_block(stripe, b) {
                    Ok(bytes) => bytes.to_vec(),
                    Err(EcPipeError::BlockNotFound { .. }) => {
                        self.degraded_read(stripe, b, path)?
                    }
                    Err(e) => return Err(e),
                };
                let take = block_size.min(meta.size - out.len());
                out.extend_from_slice(&block[..take]);
            }
        }
        Ok(out)
    }

    /// A degraded read of one block of a stripe: reconstructs the block at a
    /// client node (the last node in the cluster) without writing it back.
    pub fn degraded_read(
        &mut self,
        stripe: StripeId,
        index: usize,
        path: RepairPath,
    ) -> Result<Vec<u8>> {
        let requestor = self.pick_requestor(stripe);
        let strategy = match path {
            RepairPath::Original => {
                // The original repair pulls k blocks through the storage
                // routine (conventional repair).
                self.routine_reads += self.coordinator.code().k();
                ExecStrategy::Conventional
            }
            RepairPath::EcPipe(strategy) => {
                self.native_reads += self.coordinator.code().k();
                strategy
            }
        };
        let directive = self.coordinator.plan_single_repair(
            stripe,
            index,
            requestor,
            &[],
            ecpipe::SelectionPolicy::CodeDefault,
        )?;
        let transport = ecpipe::transport::ChannelTransport::new();
        ecpipe::exec::execute_single(&directive, &self.cluster, &transport, strategy)
    }

    /// Detects missing blocks by scanning every registered stripe (the block
    /// report / NameNode scrub).
    pub fn block_report(&self) -> Vec<BlockId> {
        let mut missing = Vec::new();
        for meta in self.coordinator.stripes() {
            for index in 0..meta.locations.len() {
                let node = meta.locations[index];
                let id = BlockId {
                    stripe: meta.id,
                    index,
                };
                if !self.cluster.store(node).contains(id) {
                    missing.push(id);
                }
            }
        }
        missing.sort_unstable();
        missing
    }

    /// Erases one block (failure injection).
    pub fn erase_block(&mut self, stripe: StripeId, index: usize) -> bool {
        self.cluster.erase_block(stripe, index)
    }

    /// Kills a node, erasing every block it stored (failure injection).
    pub fn kill_node(&mut self, node: NodeId) -> Vec<BlockId> {
        self.cluster.kill_node(node)
    }

    /// Recovers every block lost on `failed_node` into `replacements`,
    /// returning the number of blocks rebuilt.
    pub fn full_node_recovery(
        &mut self,
        failed_node: NodeId,
        replacements: &[NodeId],
        path: RepairPath,
    ) -> Result<usize> {
        let strategy = match path {
            RepairPath::Original => ExecStrategy::Conventional,
            RepairPath::EcPipe(strategy) => strategy,
        };
        let affected = self.coordinator.stripes_on_node(failed_node).len();
        match path {
            RepairPath::Original => {
                self.routine_reads += affected * self.coordinator.code().k();
            }
            RepairPath::EcPipe(_) => {
                self.native_reads += affected * self.coordinator.code().k();
            }
        }
        let report = ecpipe::recovery::full_node_recovery(
            &mut self.coordinator,
            &self.cluster,
            failed_node,
            replacements,
            strategy,
        )?;
        Ok(report.blocks_repaired)
    }

    /// Verifies that a block currently stored anywhere in the system matches
    /// the expected content (test helper).
    pub fn verify_block(&self, stripe: StripeId, index: usize, expected: &[u8]) -> bool {
        match self.cluster.read_block(stripe, index) {
            Ok(bytes) => bytes == Bytes::copy_from_slice(expected),
            Err(_) => false,
        }
    }

    fn pick_requestor(&self, stripe: StripeId) -> NodeId {
        // A degraded-read client runs on a node that stores no block of the
        // repaired stripe (as in the paper's testbed setup).
        let placement = self.cluster.placement(stripe).unwrap_or_default();
        (0..self.cluster.num_nodes())
            .find(|n| !placement.contains(n))
            .unwrap_or(self.cluster.num_nodes() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::slice::MIB;

    fn small_profile(profile: SystemProfile) -> SystemProfile {
        // Shrink blocks so tests stay fast while keeping the same structure.
        profile.with_block_size(64 * 1024)
    }

    fn file_bytes(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 251) as u8).collect()
    }

    #[test]
    fn write_and_read_roundtrip_qfs() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::qfs()), 12).unwrap();
        let data = file_bytes(5 * 64 * 1024 + 123);
        dfs.write_file("/a", &data).unwrap();
        let back = dfs
            .read_file("/a", RepairPath::EcPipe(ExecStrategy::RepairPipelining))
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(dfs.file("/a").unwrap().size, data.len());
    }

    #[test]
    fn offline_encoding_tracks_pending_stripes() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::hdfs_raid()), 16).unwrap();
        let data = file_bytes(11 * 64 * 1024);
        dfs.write_file("/raid", &data).unwrap();
        assert!(dfs.pending_encoding() > 0);
        let processed = dfs.run_raid_node();
        assert_eq!(dfs.pending_encoding(), 0);
        assert!(processed > 0);
    }

    #[test]
    fn degraded_read_reconstructs_lost_block() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::hdfs3()), 16).unwrap();
        let data = file_bytes(10 * 64 * 1024);
        let meta = dfs.write_file("/f", &data).unwrap();
        let stripe = meta.stripes[0];
        dfs.erase_block(stripe, 2);
        assert_eq!(dfs.block_report().len(), 1);
        let back = dfs
            .read_file("/f", RepairPath::EcPipe(ExecStrategy::RepairPipelining))
            .unwrap();
        assert_eq!(back, data);
        assert!(dfs.native_reads() > 0);
        assert_eq!(dfs.routine_reads(), 0);
    }

    #[test]
    fn original_path_counts_routine_reads() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::hdfs_raid()), 16).unwrap();
        let data = file_bytes(10 * 64 * 1024);
        let meta = dfs.write_file("/f", &data).unwrap();
        dfs.erase_block(meta.stripes[0], 0);
        let back = dfs.read_file("/f", RepairPath::Original).unwrap();
        assert_eq!(back, data);
        assert_eq!(dfs.routine_reads(), 10);
        assert_eq!(dfs.native_reads(), 0);
    }

    #[test]
    fn full_node_recovery_restores_blocks() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::hdfs3()), 18).unwrap();
        let data = file_bytes(30 * 64 * 1024);
        dfs.write_file("/big", &data).unwrap();
        // Pick a node that stores at least one block.
        let failed = dfs.block_report_node_with_data();
        let lost = dfs.kill_node(failed);
        assert!(!lost.is_empty());
        let repaired = dfs
            .full_node_recovery(
                failed,
                &[16, 17],
                RepairPath::EcPipe(ExecStrategy::RepairPipelining),
            )
            .unwrap();
        assert_eq!(repaired, lost.len());
        assert!(dfs.block_report().len() <= lost.len());
        // The file still reads back correctly.
        let back = dfs
            .read_file("/big", RepairPath::EcPipe(ExecStrategy::RepairPipelining))
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn lrc_backed_system_repairs_locally() {
        let mut dfs =
            SimulatedDfs::new_with_lrc(small_profile(SystemProfile::hdfs_raid()), 20, 12, 2, 2)
                .unwrap();
        let data = file_bytes(12 * 64 * 1024);
        let meta = dfs.write_file("/lrc", &data).unwrap();
        dfs.erase_block(meta.stripes[0], 3);
        let back = dfs
            .read_file("/lrc", RepairPath::EcPipe(ExecStrategy::RepairPipelining))
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn files_larger_than_one_stripe_span_multiple_stripes() {
        let mut dfs = SimulatedDfs::new(small_profile(SystemProfile::qfs()), 12).unwrap();
        let data = file_bytes(2 * 6 * 64 * 1024 + 5);
        let meta = dfs.write_file("/multi", &data).unwrap();
        assert_eq!(meta.stripes.len(), 3);
        let _ = MIB;
    }

    impl SimulatedDfs {
        /// Test helper: a node that stores at least one block.
        fn block_report_node_with_data(&self) -> NodeId {
            for node in 0..self.cluster.num_nodes() {
                if !self.cluster.store(node).list().is_empty() {
                    return node;
                }
            }
            0
        }
    }
}
