//! Local block stores.
//!
//! Each helper reads the blocks it serves directly from the storage node's
//! local store. The paper's integration insight (§5.2) is that HDFS-RAID,
//! HDFS-3 and QFS all keep a block as a plain file named after its block id,
//! so a helper daemon can bypass the distributed-storage read routine; the
//! [`FileStore`] mirrors that layout, and [`MemoryStore`] is the in-process
//! equivalent used by tests and examples.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::RwLock;

use ecc::stripe::BlockId;

use crate::{EcPipeError, Result};

/// A node-local store of erasure-coded blocks.
pub trait BlockStore: Send + Sync {
    /// Reads a whole block.
    fn get(&self, block: BlockId) -> Result<Bytes>;

    /// Reads a byte range of a block (used for slice-granular disk reads).
    fn get_range(&self, block: BlockId, range: std::ops::Range<usize>) -> Result<Bytes> {
        let whole = self.get(block)?;
        if range.end > whole.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "range {range:?} out of bounds for block {block} of {} bytes",
                    whole.len()
                ),
            });
        }
        Ok(whole.slice(range))
    }

    /// Writes (or overwrites) a block.
    fn put(&self, block: BlockId, data: Bytes) -> Result<()>;

    /// Deletes a block, returning whether it existed. Used to inject
    /// failures.
    fn delete(&self, block: BlockId) -> Result<bool>;

    /// Whether a block is present.
    fn contains(&self, block: BlockId) -> bool;

    /// The ids of all stored blocks.
    fn list(&self) -> Vec<BlockId>;
}

/// An in-memory block store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blocks: RwLock<HashMap<BlockId, Bytes>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }
}

impl BlockStore for MemoryStore {
    fn get(&self, block: BlockId) -> Result<Bytes> {
        self.blocks
            .read()
            .get(&block)
            .cloned()
            .ok_or(EcPipeError::BlockNotFound { block })
    }

    fn put(&self, block: BlockId, data: Bytes) -> Result<()> {
        self.blocks.write().insert(block, data);
        Ok(())
    }

    fn delete(&self, block: BlockId) -> Result<bool> {
        Ok(self.blocks.write().remove(&block).is_some())
    }

    fn contains(&self, block: BlockId) -> bool {
        self.blocks.read().contains_key(&block)
    }

    fn list(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.blocks.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// A file-backed block store: each block is a plain file named
/// `s<stripe>b<index>` inside the store directory, mirroring how HDFS and QFS
/// lay out blocks in the native file system.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Opens (and creates if needed) a file store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    fn path_of(&self, block: BlockId) -> PathBuf {
        self.dir.join(block.to_string())
    }
}

impl BlockStore for FileStore {
    fn get(&self, block: BlockId) -> Result<Bytes> {
        match std::fs::read(self.path_of(block)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(EcPipeError::BlockNotFound { block })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn put(&self, block: BlockId, data: Bytes) -> Result<()> {
        std::fs::write(self.path_of(block), &data)?;
        Ok(())
    }

    fn delete(&self, block: BlockId) -> Result<bool> {
        match std::fs::remove_file(self.path_of(block)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.path_of(block).exists()
    }

    fn list(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(id) = parse_block_name(name) {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }
}

fn parse_block_name(name: &str) -> Option<BlockId> {
    // Format: s<stripe>b<index>
    let rest = name.strip_prefix('s')?;
    let (stripe, index) = rest.split_once('b')?;
    Some(BlockId::new(stripe.parse().ok()?, index.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(s: u64, i: usize) -> BlockId {
        BlockId::new(s, i)
    }

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryStore::new();
        assert!(!store.contains(block(1, 0)));
        store
            .put(block(1, 0), Bytes::from_static(b"hello"))
            .unwrap();
        assert!(store.contains(block(1, 0)));
        assert_eq!(
            store.get(block(1, 0)).unwrap(),
            Bytes::from_static(b"hello")
        );
        assert_eq!(store.list(), vec![block(1, 0)]);
        assert!(store.delete(block(1, 0)).unwrap());
        assert!(!store.delete(block(1, 0)).unwrap());
        assert!(matches!(
            store.get(block(1, 0)),
            Err(EcPipeError::BlockNotFound { .. })
        ));
    }

    #[test]
    fn memory_store_range_reads() {
        let store = MemoryStore::new();
        store
            .put(block(2, 3), Bytes::from_static(b"0123456789"))
            .unwrap();
        assert_eq!(
            store.get_range(block(2, 3), 2..5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert!(store.get_range(block(2, 3), 5..20).is_err());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ecpipe-test-{}", std::process::id()));
        let store = FileStore::open(&dir).unwrap();
        store.put(block(7, 2), Bytes::from_static(b"abc")).unwrap();
        assert!(store.contains(block(7, 2)));
        assert_eq!(store.get(block(7, 2)).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(store.list(), vec![block(7, 2)]);
        assert_eq!(
            store.get_range(block(7, 2), 1..3).unwrap(),
            Bytes::from_static(b"bc")
        );
        assert!(store.delete(block(7, 2)).unwrap());
        assert!(!store.contains(block(7, 2)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn block_name_parsing() {
        assert_eq!(parse_block_name("s12b3"), Some(BlockId::new(12, 3)));
        assert_eq!(parse_block_name("garbage"), None);
        assert_eq!(parse_block_name("s1x2"), None);
    }
}
