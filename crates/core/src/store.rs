//! Local block stores.
//!
//! Each helper reads the blocks it serves directly from the storage node's
//! local store. The paper's integration insight (§5.2) is that HDFS-RAID,
//! HDFS-3 and QFS all keep a block as a plain file named after its block id,
//! so a helper daemon can bypass the distributed-storage read routine; the
//! [`FileStore`] mirrors that layout, and [`MemoryStore`] is the in-process
//! equivalent used by tests and examples. Those systems also pair each
//! block file with checksums — wrap any store in
//! [`ChecksummedStore`](crate::ChecksummedStore) (see
//! [`integrity`](crate::integrity)) to get the same verification on every
//! read.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use ecpipe_sync::RwLock;

use crate::lock_order;

use ecc::stripe::BlockId;

use crate::integrity::ChecksummedStore;
use crate::{EcPipeError, Result};

/// How the nodes of a [`Cluster`](crate::Cluster) store their blocks.
///
/// One typed choice instead of a constructor per storage flavor: pass a
/// backend to [`Cluster::new`](crate::Cluster::new) or to
/// [`EcPipeBuilder::store`](crate::EcPipeBuilder::store).
///
/// ```
/// use ecpipe::{Cluster, StoreBackend};
///
/// let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
/// assert_eq!(cluster.num_nodes(), 8);
/// ```
#[derive(Clone)]
#[non_exhaustive]
pub enum StoreBackend {
    /// Plain in-memory stores ([`MemoryStore`]), the fast default for tests
    /// and benches. Injected corruption is *undetectable* on this backend.
    Memory {
        /// Number of storage nodes.
        nodes: usize,
    },
    /// In-memory stores wrapped in [`ChecksummedStore`]: every read verifies
    /// per-chunk CRC-32 checksums, so injected bit-rot surfaces as
    /// [`EcPipeError::CorruptBlock`] instead of poisoning repairs.
    MemoryChecksummed {
        /// Number of storage nodes.
        nodes: usize,
    },
    /// File-backed stores ([`FileStore`]): node `i` keeps its blocks as
    /// plain files under `root/node-<i>`, mirroring the HDFS/QFS layout.
    File {
        /// Directory that receives one `node-<i>` subdirectory per node.
        root: PathBuf,
        /// Number of storage nodes.
        nodes: usize,
    },
    /// File-backed stores with persisted `.crc` checksum sidecars
    /// ([`FileStore::open_checksummed`]).
    FileChecksummed {
        /// Directory that receives one `node-<i>` subdirectory per node.
        root: PathBuf,
        /// Number of storage nodes.
        nodes: usize,
    },
    /// Explicit per-node stores, for mixed or custom deployments.
    Custom {
        /// One store per node, in node-id order.
        stores: Vec<Arc<dyn BlockStore>>,
    },
}

impl StoreBackend {
    /// Plain in-memory stores for `nodes` nodes.
    pub fn memory(nodes: usize) -> Self {
        StoreBackend::Memory { nodes }
    }

    /// Checksum-verifying in-memory stores for `nodes` nodes.
    pub fn memory_checksummed(nodes: usize) -> Self {
        StoreBackend::MemoryChecksummed { nodes }
    }

    /// File-backed stores rooted at `root`, one subdirectory per node.
    pub fn file(root: impl AsRef<Path>, nodes: usize) -> Self {
        StoreBackend::File {
            root: root.as_ref().to_path_buf(),
            nodes,
        }
    }

    /// File-backed stores with persisted checksum sidecars.
    pub fn file_checksummed(root: impl AsRef<Path>, nodes: usize) -> Self {
        StoreBackend::FileChecksummed {
            root: root.as_ref().to_path_buf(),
            nodes,
        }
    }

    /// Explicit per-node stores.
    pub fn custom(stores: Vec<Arc<dyn BlockStore>>) -> Self {
        StoreBackend::Custom { stores }
    }

    /// The number of nodes this backend describes.
    pub fn num_nodes(&self) -> usize {
        match self {
            StoreBackend::Memory { nodes }
            | StoreBackend::MemoryChecksummed { nodes }
            | StoreBackend::File { nodes, .. }
            | StoreBackend::FileChecksummed { nodes, .. } => *nodes,
            StoreBackend::Custom { stores } => stores.len(),
        }
    }

    /// Builds the per-node stores. File-backed variants create their
    /// directories, so this is the only fallible step.
    pub fn build(self) -> Result<Vec<Arc<dyn BlockStore>>> {
        match self {
            StoreBackend::Memory { nodes } => Ok((0..nodes)
                .map(|_| Arc::new(MemoryStore::new()) as Arc<dyn BlockStore>)
                .collect()),
            StoreBackend::MemoryChecksummed { nodes } => Ok((0..nodes)
                .map(|_| Arc::new(ChecksummedStore::new(MemoryStore::new())) as Arc<dyn BlockStore>)
                .collect()),
            StoreBackend::File { root, nodes } => (0..nodes)
                .map(|i| {
                    FileStore::open(root.join(format!("node-{i}")))
                        .map(|s| Arc::new(s) as Arc<dyn BlockStore>)
                })
                .collect(),
            StoreBackend::FileChecksummed { root, nodes } => (0..nodes)
                .map(|i| {
                    FileStore::open_checksummed(root.join(format!("node-{i}")))
                        .map(|s| Arc::new(s) as Arc<dyn BlockStore>)
                })
                .collect(),
            StoreBackend::Custom { stores } => Ok(stores),
        }
    }
}

impl fmt::Debug for StoreBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreBackend::Memory { nodes } => {
                f.debug_struct("Memory").field("nodes", nodes).finish()
            }
            StoreBackend::MemoryChecksummed { nodes } => f
                .debug_struct("MemoryChecksummed")
                .field("nodes", nodes)
                .finish(),
            StoreBackend::File { root, nodes } => f
                .debug_struct("File")
                .field("root", root)
                .field("nodes", nodes)
                .finish(),
            StoreBackend::FileChecksummed { root, nodes } => f
                .debug_struct("FileChecksummed")
                .field("root", root)
                .field("nodes", nodes)
                .finish(),
            StoreBackend::Custom { stores } => f
                .debug_struct("Custom")
                .field("nodes", &stores.len())
                .finish(),
        }
    }
}

/// A node-local store of erasure-coded blocks.
///
/// ```
/// use bytes::Bytes;
/// use ecc::stripe::BlockId;
/// use ecpipe::{BlockStore, MemoryStore};
///
/// let store = MemoryStore::new();
/// let block = BlockId::new(0, 2);
/// store.put(block, Bytes::from_static(b"0123456789")).unwrap();
/// assert!(store.contains(block));
/// // Slice-granular read, as the helpers use during repairs.
/// assert_eq!(
///     store.get_range(block, 2..5).unwrap(),
///     Bytes::from_static(b"234")
/// );
/// assert!(store.verify(block).is_ok());
/// assert!(store.delete(block).unwrap());
/// assert_eq!(store.list(), vec![]);
/// ```
pub trait BlockStore: Send + Sync {
    /// Reads a whole block.
    fn get(&self, block: BlockId) -> Result<Bytes>;

    /// Reads a byte range of a block (used for slice-granular disk reads).
    fn get_range(&self, block: BlockId, range: std::ops::Range<usize>) -> Result<Bytes> {
        let whole = self.get(block)?;
        if range.end > whole.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "range {range:?} out of bounds for block {block} of {} bytes",
                    whole.len()
                ),
            });
        }
        Ok(whole.slice(range))
    }

    /// Writes (or overwrites) a block.
    fn put(&self, block: BlockId, data: Bytes) -> Result<()>;

    /// Deletes a block, returning whether it existed. Used to inject
    /// failures.
    fn delete(&self, block: BlockId) -> Result<bool>;

    /// Whether a block is present.
    fn contains(&self, block: BlockId) -> bool;

    /// The ids of all stored blocks.
    fn list(&self) -> Vec<BlockId>;

    /// Verifies the integrity of a stored block. Stores without integrity
    /// metadata can only check presence;
    /// [`ChecksummedStore`](crate::ChecksummedStore) re-reads the block and
    /// validates every chunk checksum, failing with
    /// [`EcPipeError::CorruptBlock`]. This is what the manager's scrubber
    /// calls as it walks a node.
    fn verify(&self, block: BlockId) -> Result<()> {
        if self.contains(block) {
            Ok(())
        } else {
            Err(EcPipeError::BlockNotFound { block })
        }
    }

    /// Flips the byte at `offset` of a stored block — the corruption
    /// injection hook used by tests and benches to simulate silent bit-rot.
    ///
    /// The default implementation rewrites the block through
    /// [`put`](BlockStore::put), which refreshes any integrity metadata the
    /// store keeps (so on a plain store the rot is real but undetectable).
    /// [`ChecksummedStore`](crate::ChecksummedStore) overrides it to leave
    /// its recorded checksums stale, making the corruption *detectable*.
    fn corrupt(&self, block: BlockId, offset: usize) -> Result<()> {
        let data = self.get(block)?;
        if offset >= data.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "corruption offset {offset} out of bounds for block {block} of {} bytes",
                    data.len()
                ),
            });
        }
        let mut bytes = data.to_vec();
        bytes[offset] ^= 0xFF;
        self.put(block, Bytes::from(bytes))
    }
}

/// An in-memory block store.
#[derive(Debug)]
pub struct MemoryStore {
    /// Lock class: `store.memory` ([`lock_order::STORE_MEMORY`]).
    blocks: RwLock<HashMap<BlockId, Bytes>>,
}

impl Default for MemoryStore {
    fn default() -> Self {
        MemoryStore {
            blocks: RwLock::new(&lock_order::STORE_MEMORY, HashMap::new()),
        }
    }
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }
}

impl BlockStore for MemoryStore {
    fn get(&self, block: BlockId) -> Result<Bytes> {
        self.blocks
            .read()
            .get(&block)
            .cloned()
            .ok_or(EcPipeError::BlockNotFound { block })
    }

    fn put(&self, block: BlockId, data: Bytes) -> Result<()> {
        self.blocks.write().insert(block, data);
        Ok(())
    }

    fn delete(&self, block: BlockId) -> Result<bool> {
        Ok(self.blocks.write().remove(&block).is_some())
    }

    fn contains(&self, block: BlockId) -> bool {
        self.blocks.read().contains_key(&block)
    }

    fn list(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.blocks.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// A file-backed block store: each block is a plain file named
/// `s<stripe>b<index>` inside the store directory, mirroring how HDFS and QFS
/// lay out blocks in the native file system.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    /// Payload bytes read from disk so far (whole-block and range reads),
    /// so tests can pin that slice reads do slice-sized — not block-sized —
    /// I/O.
    bytes_read: AtomicU64,
}

impl FileStore {
    /// Opens (and creates if needed) a file store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Opens a file store whose blocks are paired with persisted `.crc`
    /// checksum sidecars in the same directory (see
    /// [`ChecksummedStore::persistent`]), mirroring how HDFS and QFS keep a
    /// checksum file next to each block file.
    pub fn open_checksummed(dir: impl AsRef<Path>) -> Result<ChecksummedStore<FileStore>> {
        let dir = dir.as_ref();
        ChecksummedStore::persistent(FileStore::open(dir)?, dir)
    }

    /// Total payload bytes this store has read from disk.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    fn path_of(&self, block: BlockId) -> PathBuf {
        self.dir.join(block.to_string())
    }
}

impl BlockStore for FileStore {
    fn get(&self, block: BlockId) -> Result<Bytes> {
        match std::fs::read(self.path_of(block)) {
            Ok(data) => {
                self.bytes_read
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(Bytes::from(data))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(EcPipeError::BlockNotFound { block })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Seek-based range read: only the requested bytes travel from disk,
    /// rather than the whole block the default implementation would load.
    fn get_range(&self, block: BlockId, range: std::ops::Range<usize>) -> Result<Bytes> {
        let mut file = match std::fs::File::open(self.path_of(block)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(EcPipeError::BlockNotFound { block })
            }
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        if range.end as u64 > len {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("range {range:?} out of bounds for block {block} of {len} bytes"),
            });
        }
        file.seek(SeekFrom::Start(range.start as u64))?;
        let mut data = vec![0u8; range.len()];
        file.read_exact(&mut data)?;
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(Bytes::from(data))
    }

    fn put(&self, block: BlockId, data: Bytes) -> Result<()> {
        std::fs::write(self.path_of(block), &data)?;
        Ok(())
    }

    fn delete(&self, block: BlockId) -> Result<bool> {
        match std::fs::remove_file(self.path_of(block)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.path_of(block).exists()
    }

    fn list(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(id) = parse_block_name(name) {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }
}

fn parse_block_name(name: &str) -> Option<BlockId> {
    // Format: s<stripe>b<index>
    let rest = name.strip_prefix('s')?;
    let (stripe, index) = rest.split_once('b')?;
    Some(BlockId::new(stripe.parse().ok()?, index.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(s: u64, i: usize) -> BlockId {
        BlockId::new(s, i)
    }

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryStore::new();
        assert!(!store.contains(block(1, 0)));
        store
            .put(block(1, 0), Bytes::from_static(b"hello"))
            .unwrap();
        assert!(store.contains(block(1, 0)));
        assert_eq!(
            store.get(block(1, 0)).unwrap(),
            Bytes::from_static(b"hello")
        );
        assert_eq!(store.list(), vec![block(1, 0)]);
        assert!(store.delete(block(1, 0)).unwrap());
        assert!(!store.delete(block(1, 0)).unwrap());
        assert!(matches!(
            store.get(block(1, 0)),
            Err(EcPipeError::BlockNotFound { .. })
        ));
    }

    #[test]
    fn memory_store_range_reads() {
        let store = MemoryStore::new();
        store
            .put(block(2, 3), Bytes::from_static(b"0123456789"))
            .unwrap();
        assert_eq!(
            store.get_range(block(2, 3), 2..5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert!(store.get_range(block(2, 3), 5..20).is_err());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ecpipe-test-{}", std::process::id()));
        let store = FileStore::open(&dir).unwrap();
        store.put(block(7, 2), Bytes::from_static(b"abc")).unwrap();
        assert!(store.contains(block(7, 2)));
        assert_eq!(store.get(block(7, 2)).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(store.list(), vec![block(7, 2)]);
        assert_eq!(
            store.get_range(block(7, 2), 1..3).unwrap(),
            Bytes::from_static(b"bc")
        );
        assert!(store.delete(block(7, 2)).unwrap());
        assert!(!store.contains(block(7, 2)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_range_reads_do_slice_sized_io() {
        let dir = std::env::temp_dir().join(format!("ecpipe-range-{}", std::process::id()));
        let store = FileStore::open(&dir).unwrap();
        const BLOCK: usize = 64 * 1024;
        store
            .put(block(1, 0), Bytes::from(vec![0xAB; BLOCK]))
            .unwrap();
        let before = store.bytes_read();
        let data = store.get_range(block(1, 0), 4096..4096 + 512).unwrap();
        assert_eq!(data, Bytes::from(vec![0xAB; 512]));
        // The pin: a 512-byte slice read must cost 512 bytes of disk I/O,
        // not the whole 64 KiB block the default implementation would load.
        assert_eq!(store.bytes_read() - before, 512);
        let before = store.bytes_read();
        store.get(block(1, 0)).unwrap();
        assert_eq!(store.bytes_read() - before, BLOCK as u64);
        // Out-of-bounds and missing-block errors match the default impl.
        assert!(matches!(
            store.get_range(block(1, 0), BLOCK - 10..BLOCK + 1),
            Err(EcPipeError::InvalidRequest { .. })
        ));
        assert!(matches!(
            store.get_range(block(9, 9), 0..1),
            Err(EcPipeError::BlockNotFound { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_verify_and_corrupt_hooks() {
        let store = MemoryStore::new();
        store
            .put(block(4, 0), Bytes::from_static(b"abcdef"))
            .unwrap();
        assert!(store.verify(block(4, 0)).is_ok());
        assert!(matches!(
            store.verify(block(4, 1)),
            Err(EcPipeError::BlockNotFound { .. })
        ));
        store.corrupt(block(4, 0), 2).unwrap();
        let data = store.get(block(4, 0)).unwrap();
        assert_eq!(data[2], b'c' ^ 0xFF, "the byte really flipped");
        // A plain store keeps no checksums, so the rot passes verify().
        assert!(store.verify(block(4, 0)).is_ok());
        assert!(store.corrupt(block(4, 0), 100).is_err());
    }

    #[test]
    fn block_name_parsing() {
        assert_eq!(parse_block_name("s12b3"), Some(BlockId::new(12, 3)));
        assert_eq!(parse_block_name("garbage"), None);
        assert_eq!(parse_block_name("s1x2"), None);
    }
}
