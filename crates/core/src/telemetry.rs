//! Live link telemetry: measured per-link throughput for repair planning.
//!
//! The paper's weighted path selection (§4.3) wants link weights that track
//! the *actual* state of the network, not just the nominal topology. Both
//! transport backends already count bytes and send-time per directed node
//! pair ([`StatsRegistry`]); [`LinkTelemetry`] folds those counters into an
//! exponentially weighted moving average of each pair's throughput and
//! serves them as [`LinkWeights`] to `repair::weighted_path::optimal_path`.
//!
//! Cold links — pairs that have not yet moved enough bytes for a trustworthy
//! estimate — fall back to the static [`Topology`] bandwidth model, so a
//! fresh cluster plans on the configured topology and smoothly shifts to
//! measured reality as repairs flow.

use std::collections::HashMap;
use std::sync::Arc;

use ecpipe_sync::Mutex;
use repair::weighted_path::LinkWeights;
use simnet::{NodeId, Topology};

use crate::lock_order;
use crate::transport::StatsRegistry;

/// Tuning knobs for [`LinkTelemetry`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// observation. Higher reacts faster, lower smooths more.
    pub alpha: f64,
    /// A pair's estimate is trusted only once it has carried this many
    /// bytes; below the threshold planning uses the static topology weight.
    pub warm_bytes: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            alpha: 0.3,
            warm_bytes: 64 * 1024,
        }
    }
}

/// Per-pair accumulator: how much of the transport counters has already been
/// folded in, plus the running throughput estimate.
#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    seen_bytes: u64,
    seen_busy_nanos: u64,
    ewma_bps: Option<f64>,
}

/// EWMA throughput estimates per directed node pair, layered over a
/// transport's byte counters and backed by a static [`Topology`] for links
/// that are still cold.
///
/// [`observe`](LinkTelemetry::observe) diffs the transport's counters
/// against the last call and folds each pair's interval throughput (bytes
/// over busy send time) into its EWMA. The [`LinkWeights`] impl then serves
/// `1 / throughput` for warm pairs and the topology's
/// [`link_weight`](Topology::link_weight) for cold ones, which is exactly
/// the shape `optimal_path` expects.
pub struct LinkTelemetry {
    topology: Arc<Topology>,
    config: TelemetryConfig,
    /// Lock class: `manager.telemetry` ([`lock_order::MANAGER_TELEMETRY`]).
    state: Mutex<HashMap<(NodeId, NodeId), PairState>>,
}

impl LinkTelemetry {
    /// Creates a telemetry layer over `topology` with the given knobs.
    pub fn new(topology: Arc<Topology>, config: TelemetryConfig) -> Self {
        LinkTelemetry {
            topology,
            config,
            state: Mutex::new(&lock_order::MANAGER_TELEMETRY, HashMap::new()),
        }
    }

    /// The static topology estimates are layered over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Folds the transport counters accumulated since the previous call into
    /// the per-pair EWMA estimates. Cheap enough to call before every
    /// planning decision.
    pub fn observe(&self, stats: &StatsRegistry) {
        let mut state = self.state.lock();
        for (pair, snap) in stats.snapshot() {
            let entry = state.entry(pair).or_default();
            let delta_bytes = snap.bytes.saturating_sub(entry.seen_bytes);
            let delta_busy = snap.busy_nanos.saturating_sub(entry.seen_busy_nanos);
            entry.seen_bytes = snap.bytes;
            entry.seen_busy_nanos = snap.busy_nanos;
            if delta_bytes == 0 || delta_busy == 0 {
                continue;
            }
            let bps = delta_bytes as f64 / (delta_busy as f64 / 1e9);
            entry.ewma_bps = Some(match entry.ewma_bps {
                Some(prev) => self.config.alpha * bps + (1.0 - self.config.alpha) * prev,
                None => bps,
            });
        }
    }

    /// The measured throughput estimate (bytes/s) of one directed pair, or
    /// `None` while the pair is cold (below
    /// [`warm_bytes`](TelemetryConfig::warm_bytes) observed).
    pub fn throughput(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let state = self.state.lock();
        let entry = state.get(&(src, dst))?;
        if entry.seen_bytes < self.config.warm_bytes {
            return None;
        }
        entry.ewma_bps
    }
}

impl LinkWeights for LinkTelemetry {
    /// Inverse measured throughput for warm pairs; the static topology
    /// weight for cold ones.
    fn weight(&self, src: NodeId, dst: NodeId) -> f64 {
        match self.throughput(src, dst) {
            Some(bps) if bps > 0.0 => 1.0 / bps,
            _ => self.topology.link_weight(src, dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelTransport, SliceMsg, Transport};
    use bytes::Bytes;

    fn push(transport: &ChannelTransport, src: NodeId, dst: NodeId, bytes: usize) {
        let (tx, rx) = transport.link(src, dst, 64);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                tx.send(SliceMsg::new(0, Bytes::from(vec![0u8; bytes])))
                    .unwrap();
            });
            rx.recv().unwrap();
        });
    }

    #[test]
    fn cold_pairs_fall_back_to_topology_weights() {
        let topo = Arc::new(Topology::flat(3, 1000.0));
        let telemetry = LinkTelemetry::new(topo.clone(), TelemetryConfig::default());
        assert_eq!(telemetry.throughput(0, 1), None);
        assert!((telemetry.weight(0, 1) - topo.link_weight(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn warm_pairs_serve_measured_throughput() {
        let topo = Arc::new(Topology::flat(3, 1000.0));
        let transport = ChannelTransport::with_rate_limit(1_000_000);
        let telemetry = LinkTelemetry::new(
            topo,
            TelemetryConfig {
                alpha: 0.5,
                warm_bytes: 64 * 1024,
            },
        );
        push(&transport, 0, 1, 128 * 1024);
        telemetry.observe(transport.stats());
        let measured = telemetry.throughput(0, 1).expect("pair should be warm");
        // The token bucket pins the pair near 1 MB/s; the estimate must be
        // the measured rate, nowhere near the 1000 B/s static topology.
        assert!(
            (200_000.0..5_000_000.0).contains(&measured),
            "measured {measured} B/s"
        );
        assert!((telemetry.weight(0, 1) - 1.0 / measured).abs() < 1e-15);
    }

    #[test]
    fn below_warm_threshold_stays_cold() {
        let topo = Arc::new(Topology::flat(3, 1000.0));
        let transport = ChannelTransport::new();
        let telemetry = LinkTelemetry::new(
            topo,
            TelemetryConfig {
                alpha: 0.3,
                warm_bytes: 1024 * 1024,
            },
        );
        push(&transport, 0, 1, 4096);
        telemetry.observe(transport.stats());
        assert_eq!(telemetry.throughput(0, 1), None);
    }

    #[test]
    fn ewma_tracks_a_rate_change() {
        let topo = Arc::new(Topology::flat(2, 1000.0));
        let transport = ChannelTransport::with_topology(Arc::new(Topology::flat(2, 2_000_000.0)));
        let telemetry = LinkTelemetry::new(
            topo,
            TelemetryConfig {
                alpha: 0.9,
                warm_bytes: 1024,
            },
        );
        push(&transport, 0, 1, 64 * 1024);
        telemetry.observe(transport.stats());
        let fast = telemetry.throughput(0, 1).unwrap();
        transport.set_link_rate(0, 1, 100_000);
        push(&transport, 0, 1, 64 * 1024);
        telemetry.observe(transport.stats());
        let slow = telemetry.throughput(0, 1).unwrap();
        assert!(
            slow < fast / 2.0,
            "estimate should collapse: {fast} -> {slow}"
        );
    }
}
