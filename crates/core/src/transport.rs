//! In-process slice transport.
//!
//! The paper's prototype moves slices between helper daemons through Redis;
//! this runtime uses bounded crossbeam channels instead, which play the same
//! role (an in-memory staging area between pipeline stages) without an
//! external dependency. The transport also keeps per-link byte counters so
//! tests can check the traffic-distribution claims of the paper (e.g. repair
//! pipelining sends exactly one block over every link, conventional repair
//! funnels `k` blocks into the requestor's link).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use simnet::NodeId;

/// A slice (or partial slice) in flight between two pipeline stages.
#[derive(Debug, Clone)]
pub struct SliceMsg {
    /// Index of the slice within its block.
    pub index: usize,
    /// Payload.
    pub data: Bytes,
}

/// Per-link transfer statistics.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl LinkStats {
    /// Total bytes sent over the link.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages (slices) sent over the link.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// The sending half of a link; counts traffic as it sends.
pub struct SliceSender {
    inner: Sender<SliceMsg>,
    stats: Arc<LinkStats>,
}

impl SliceSender {
    /// Sends one slice, blocking if the link's buffer is full.
    ///
    /// Returns `false` if the receiving end has been dropped.
    pub fn send(&self, msg: SliceMsg) -> bool {
        self.stats
            .bytes
            .fetch_add(msg.data.len() as u64, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.inner.send(msg).is_ok()
    }
}

/// The receiving half of a link.
pub struct SliceReceiver {
    inner: Receiver<SliceMsg>,
}

impl SliceReceiver {
    /// Receives the next slice, or `None` once the sender is dropped.
    pub fn recv(&self) -> Option<SliceMsg> {
        self.inner.recv().ok()
    }
}

/// A factory for links between nodes, with global traffic accounting.
#[derive(Default)]
pub struct Transport {
    links: Mutex<HashMap<(NodeId, NodeId), Arc<LinkStats>>>,
}

impl Transport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Transport::default()
    }

    /// Opens a bounded link from `src` to `dst`. The capacity is the number
    /// of slices that may be buffered in flight (the pipeline depth between
    /// two stages).
    pub fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        let stats = self
            .links
            .lock()
            .entry((src, dst))
            .or_insert_with(|| Arc::new(LinkStats::default()))
            .clone();
        let (tx, rx) = bounded(capacity.max(1));
        (
            SliceSender { inner: tx, stats },
            SliceReceiver { inner: rx },
        )
    }

    /// Bytes carried by one directed link so far.
    pub fn link_bytes(&self, src: NodeId, dst: NodeId) -> u64 {
        self.links
            .lock()
            .get(&(src, dst))
            .map(|s| s.bytes())
            .unwrap_or(0)
    }

    /// Total bytes moved over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.lock().values().map(|s| s.bytes()).sum()
    }

    /// Bytes on the most-loaded directed link.
    pub fn max_link_bytes(&self) -> u64 {
        self.links
            .lock()
            .values()
            .map(|s| s.bytes())
            .max()
            .unwrap_or(0)
    }

    /// The number of directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.links.lock().values().filter(|s| s.bytes() > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_counts_traffic() {
        let transport = Transport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        assert!(tx.send(SliceMsg {
            index: 0,
            data: Bytes::from_static(b"0123"),
        }));
        assert!(tx.send(SliceMsg {
            index: 1,
            data: Bytes::from_static(b"45"),
        }));
        assert_eq!(rx.recv().unwrap().index, 0);
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"45"));
        assert_eq!(transport.link_bytes(0, 1), 6);
        assert_eq!(transport.total_bytes(), 6);
        assert_eq!(transport.links_used(), 1);
    }

    #[test]
    fn send_after_receiver_dropped_returns_false() {
        let transport = Transport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(rx);
        assert!(!tx.send(SliceMsg {
            index: 0,
            data: Bytes::new(),
        }));
    }

    #[test]
    fn stats_accumulate_across_links_on_same_pair() {
        let transport = Transport::new();
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg {
                index: 0,
                data: Bytes::from_static(b"abc"),
            });
            rx.recv();
        }
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg {
                index: 0,
                data: Bytes::from_static(b"de"),
            });
            rx.recv();
        }
        assert_eq!(transport.link_bytes(2, 3), 5);
        assert_eq!(transport.max_link_bytes(), 5);
    }

    #[test]
    fn recv_returns_none_when_sender_dropped() {
        let transport = Transport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }
}
