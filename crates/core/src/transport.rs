//! Pluggable slice transports.
//!
//! The paper's prototype moves slices between helper daemons over a real
//! network (Redis-backed in the ATC'17 version, direct TCP in the extended
//! evaluation). This module makes the runtime's transport pluggable behind
//! the [`Transport`] trait:
//!
//! * [`ChannelTransport`] — bounded in-process channels, the fast default
//!   used by tests and benches (an in-memory staging area between pipeline
//!   stages, playing the role of the paper's Redis instances); an optional
//!   per-link token-bucket throttle
//!   ([`ChannelTransport::with_rate_limit`]) simulates bandwidth-limited
//!   links in process, which is what makes concurrent recovery through the
//!   [`manager`](crate::manager) measurably faster than the sequential
//!   loop even on a single-core host;
//! * [`TcpTransport`] — real localhost TCP sockets with a length-prefixed
//!   wire format, connection reuse and the same optional token-bucket
//!   bandwidth throttle, so the timing claims of §3.2 can be measured on
//!   sockets rather than only in `simnet`.
//!
//! Every backend keeps per-link byte counters ([`LinkStats`]) so tests can
//! check the traffic-distribution claims of the paper (e.g. repair
//! pipelining sends exactly one block over every link, conventional repair
//! funnels `k` blocks into the requestor's link).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use ecpipe_sync::Mutex;

use simnet::{NodeId, Topology};

use crate::lock_order;

mod framed;
mod reactor;
mod tcp;
mod wire;

pub use reactor::ReactorTransport;
pub use tcp::TcpTransport;

/// The mutable half of a [`TokenBucket`]: the fill level plus the rate,
/// which can change at runtime ([`TokenBucket::set_rate`]) to model a link
/// whose capacity degrades mid-stream.
struct BucketState {
    tokens: f64,
    last: Instant,
    rate: f64,
    burst: f64,
}

/// A token bucket limiting one link to `rate` bytes per second. Shared by
/// both backends: it shapes real socket writes in [`TcpTransport`] and
/// simulates constrained links in [`ChannelTransport`].
pub(crate) struct TokenBucket {
    /// Lock class: `transport.token_bucket`
    /// ([`lock_order::TRANSPORT_TOKEN_BUCKET`]).
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A small burst keeps the shaping fine-grained: the bucket never banks
    /// more than ~2 ms of line rate while a link is idle (min 2 KiB so tiny
    /// rates make progress).
    fn burst_for(rate: f64) -> f64 {
        (rate / 500.0).max(2048.0)
    }

    pub(crate) fn new(rate: u64) -> Self {
        let rate = rate.max(1) as f64;
        // The bucket starts empty, so every byte pays the line rate from the
        // first slice on — this keeps measured repair times close to the
        // store-and-forward timing model of §3.2 instead of letting idle
        // links run ahead.
        TokenBucket {
            state: Mutex::new(
                &lock_order::TRANSPORT_TOKEN_BUCKET,
                BucketState {
                    tokens: 0.0,
                    last: Instant::now(),
                    rate,
                    burst: Self::burst_for(rate),
                },
            ),
        }
    }

    /// Changes the bucket's rate in place, so a link already carrying a
    /// repair stream slows down (or speeds up) mid-flight. Banked tokens are
    /// clamped to the new burst, so a rate drop takes effect immediately.
    pub(crate) fn set_rate(&self, rate: u64) {
        let rate = rate.max(1) as f64;
        let mut state = self.state.lock();
        state.rate = rate;
        state.burst = Self::burst_for(rate);
        state.tokens = state.tokens.min(state.burst);
    }

    pub(crate) fn take(&self, bytes: usize) {
        let mut need = bytes as f64;
        while need > 0.0 {
            let wait;
            {
                let mut state = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(state.last).as_secs_f64();
                state.tokens = (state.tokens + elapsed * state.rate).min(state.burst);
                state.last = now;
                let grab = need.min(state.tokens);
                state.tokens -= grab;
                need -= grab;
                if need <= 0.0 {
                    return;
                }
                wait = Duration::from_secs_f64(need.min(state.burst) / state.rate);
            }
            std::thread::sleep(wait);
        }
    }
}

/// How a transport shapes its links' bandwidth.
enum ShaperMode {
    /// No shaping: links run at memory (or socket) speed.
    Off,
    /// Every link gets its own fresh token bucket at one flat rate
    /// (the historical `with_rate_limit` behavior).
    Flat(u64),
    /// Buckets are shared per directed node pair and seeded from the
    /// topology's bandwidth model, so a slow cross-rack edge throttles every
    /// stream crossing it — including reused TCP connections, which key by
    /// the same pair.
    Topology(Arc<Topology>),
}

/// Per-transport bandwidth shaping: owns the token buckets links draw from.
pub(crate) struct Shaper {
    mode: ShaperMode,
    /// Lock class: `transport.shaper` ([`lock_order::TRANSPORT_SHAPER`]).
    buckets: Mutex<HashMap<(NodeId, NodeId), Arc<TokenBucket>>>,
}

impl Default for Shaper {
    fn default() -> Self {
        Shaper::with_mode(ShaperMode::Off)
    }
}

impl Shaper {
    fn with_mode(mode: ShaperMode) -> Self {
        Shaper {
            mode,
            buckets: Mutex::new(&lock_order::TRANSPORT_SHAPER, HashMap::new()),
        }
    }

    pub(crate) fn flat(rate: u64) -> Self {
        Shaper::with_mode(ShaperMode::Flat(rate))
    }

    pub(crate) fn topology(topology: Arc<Topology>) -> Self {
        Shaper::with_mode(ShaperMode::Topology(topology))
    }

    /// The bucket a new link over `src -> dst` should draw from, if any.
    pub(crate) fn bucket(&self, src: NodeId, dst: NodeId) -> Option<Arc<TokenBucket>> {
        match &self.mode {
            ShaperMode::Off => None,
            // A fresh bucket per link keeps the historical per-link shaping
            // semantics that the flat-rate timing tests are built on.
            ShaperMode::Flat(rate) => Some(Arc::new(TokenBucket::new(*rate))),
            ShaperMode::Topology(topology) => Some(
                self.buckets
                    .lock()
                    .entry((src, dst))
                    .or_insert_with(|| {
                        Arc::new(TokenBucket::new(
                            topology.bandwidth(src, dst).max(1.0) as u64
                        ))
                    })
                    .clone(),
            ),
        }
    }

    /// Re-rates the directed pair's shared bucket (topology mode only),
    /// affecting streams already in flight over it. Returns whether shaping
    /// applied — flat and unshaped transports have no per-pair bucket to
    /// re-rate.
    pub(crate) fn set_link_rate(&self, src: NodeId, dst: NodeId, bytes_per_sec: u64) -> bool {
        if !matches!(self.mode, ShaperMode::Topology(_)) {
            return false;
        }
        self.buckets
            .lock()
            .entry((src, dst))
            .or_insert_with(|| Arc::new(TokenBucket::new(bytes_per_sec)))
            .set_rate(bytes_per_sec);
        true
    }
}

/// A slice (or partial slice) in flight between two pipeline stages.
#[derive(Debug, Clone, Default)]
pub struct SliceMsg {
    /// Index of the slice within its block.
    pub index: usize,
    /// The stripe the slice belongs to — observability metadata carried in
    /// wire frames (routing is by link id).
    pub stripe: u64,
    /// The repair job the slice belongs to (see
    /// [`RepairDirective::repair_id`](crate::RepairDirective::repair_id));
    /// metadata like `stripe`.
    pub repair: u64,
    /// Payload.
    pub data: Bytes,
}

impl SliceMsg {
    /// Creates an untagged message (stripe/repair ids zero).
    pub fn new(index: usize, data: Bytes) -> Self {
        SliceMsg {
            index,
            stripe: 0,
            repair: 0,
            data,
        }
    }

    /// Tags the message with the stripe and repair-job ids that go on the
    /// wire.
    pub fn tagged(mut self, stripe: u64, repair: u64) -> Self {
        self.stripe = stripe;
        self.repair = repair;
        self
    }
}

/// Errors surfaced by a transport link.
#[derive(Debug)]
pub enum TransportError {
    /// The peer end of the link has been dropped (a dead helper or
    /// requestor).
    Disconnected,
    /// A socket-level failure on a networked backend.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer end of the link is gone"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-link transfer statistics.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes: AtomicU64,
    messages: AtomicU64,
    busy_nanos: AtomicU64,
}

impl LinkStats {
    /// Total bytes sent over the link.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages (slices) sent over the link.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total nanoseconds senders spent inside `send` on this link — queueing,
    /// token-bucket pacing and socket writes included. Bytes over busy time
    /// is the link's measured throughput, which is what
    /// [`LinkTelemetry`](crate::telemetry::LinkTelemetry) folds into its
    /// EWMA estimates.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one directed link's counters, as returned by
/// [`StatsRegistry::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Total bytes sent over the link.
    pub bytes: u64,
    /// Total messages (slices) sent over the link.
    pub messages: u64,
    /// Total nanoseconds senders spent inside `send` on the link.
    pub busy_nanos: u64,
}

/// The backend half of a [`SliceSender`]: moves one message to the peer.
trait SliceTx: Send + Sync {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError>;
}

/// The backend half of a [`SliceReceiver`]: yields the next message.
trait SliceRx: Send + Sync {
    fn recv(&self) -> Option<SliceMsg>;
}

/// The sending half of a link; counts traffic as it sends.
pub struct SliceSender {
    inner: Box<dyn SliceTx>,
    stats: Arc<LinkStats>,
}

impl SliceSender {
    /// Sends one slice, blocking if the link's buffer is full.
    ///
    /// Fails with [`TransportError::Disconnected`] once the receiving end has
    /// been dropped (a dead helper must fail the repair rather than silently
    /// truncate it), or [`TransportError::Io`] on a socket failure.
    pub fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        let bytes = msg.data.len() as u64;
        let started = Instant::now();
        self.inner.send(msg)?;
        // Count only traffic the link actually accepted, so failed sends
        // don't inflate the byte accounting the tests assert on. The send
        // duration (pacing, backpressure, socket writes) is accumulated
        // alongside: bytes over busy time is the link's measured throughput.
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .busy_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// The receiving half of a link.
pub struct SliceReceiver {
    inner: Box<dyn SliceRx>,
}

impl SliceReceiver {
    /// Receives the next slice, or `None` once the sender is dropped and the
    /// link is drained.
    pub fn recv(&self) -> Option<SliceMsg> {
        self.inner.recv()
    }
}

/// Shared per-link traffic accounting, embedded by every backend.
pub struct StatsRegistry {
    /// Lock class: `transport.stats` ([`lock_order::TRANSPORT_STATS`]).
    links: Mutex<HashMap<(NodeId, NodeId), Arc<LinkStats>>>,
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry {
            links: Mutex::new(&lock_order::TRANSPORT_STATS, HashMap::new()),
        }
    }
}

impl StatsRegistry {
    /// The stats cell for a directed link, created on first use. Repeated
    /// links over the same `(src, dst)` pair accumulate into one cell.
    pub fn register(&self, src: NodeId, dst: NodeId) -> Arc<LinkStats> {
        self.links
            .lock()
            .entry((src, dst))
            .or_insert_with(|| Arc::new(LinkStats::default()))
            .clone()
    }

    /// Bytes carried by one directed link so far.
    pub fn link_bytes(&self, src: NodeId, dst: NodeId) -> u64 {
        self.links
            .lock()
            .get(&(src, dst))
            .map(|s| s.bytes())
            .unwrap_or(0)
    }

    /// Total bytes moved over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.lock().values().map(|s| s.bytes()).sum()
    }

    /// Bytes on the most-loaded directed link.
    pub fn max_link_bytes(&self) -> u64 {
        self.links
            .lock()
            .values()
            .map(|s| s.bytes())
            .max()
            .unwrap_or(0)
    }

    /// The number of directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.links.lock().values().filter(|s| s.bytes() > 0).count()
    }

    /// A point-in-time copy of every directed link's counters. Telemetry and
    /// reporting diff two snapshots to attribute traffic to an interval.
    pub fn snapshot(&self) -> HashMap<(NodeId, NodeId), LinkSnapshot> {
        self.links
            .lock()
            .iter()
            .map(|(&pair, stats)| {
                (
                    pair,
                    LinkSnapshot {
                        bytes: stats.bytes(),
                        messages: stats.messages(),
                        busy_nanos: stats.busy_nanos(),
                    },
                )
            })
            .collect()
    }
}

/// A factory for inter-node links, with global traffic accounting.
///
/// The executors in [`crate::exec`] are generic over this trait, so the same
/// repair strategies run unchanged over in-process channels
/// ([`ChannelTransport`]) or localhost TCP sockets ([`TcpTransport`]).
///
/// ```
/// use bytes::Bytes;
/// use ecpipe::transport::{ChannelTransport, SliceMsg, Transport};
///
/// let transport = ChannelTransport::new();
/// // A bounded link from node 0 to node 1, as the executors open them.
/// let (tx, rx) = transport.link(0, 1, 8);
/// tx.send(SliceMsg::new(0, Bytes::from_static(b"slice")).tagged(7, 2))
///     .unwrap();
/// let msg = rx.recv().unwrap();
/// assert_eq!((msg.index, msg.stripe, msg.repair), (0, 7, 2));
/// drop(tx);
/// assert!(rx.recv().is_none(), "stream ends when the sender drops");
/// // Per-link accounting, used by the paper's traffic-distribution tests.
/// assert_eq!(transport.link_bytes(0, 1), 5);
/// assert_eq!(transport.total_bytes(), 5);
/// ```
pub trait Transport: Send + Sync {
    /// Opens a bounded link from `src` to `dst`. The capacity is the number
    /// of slices that may be buffered in flight (the pipeline depth between
    /// two stages); senders block once it is reached.
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver);

    /// The backend's traffic accounting.
    fn stats(&self) -> &StatsRegistry;

    /// Bytes carried by one directed link so far.
    fn link_bytes(&self, src: NodeId, dst: NodeId) -> u64 {
        self.stats().link_bytes(src, dst)
    }

    /// Total bytes moved over all links.
    fn total_bytes(&self) -> u64 {
        self.stats().total_bytes()
    }

    /// Bytes on the most-loaded directed link.
    fn max_link_bytes(&self) -> u64 {
        self.stats().max_link_bytes()
    }

    /// The number of directed links that carried any traffic.
    fn links_used(&self) -> usize {
        self.stats().links_used()
    }
}

struct ChannelTx {
    inner: Sender<SliceMsg>,
    bucket: Option<Arc<TokenBucket>>,
}

impl SliceTx for ChannelTx {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        if let Some(bucket) = &self.bucket {
            bucket.take(msg.data.len());
        }
        self.inner
            .send(msg)
            .map_err(|_| TransportError::Disconnected)
    }
}

struct ChannelRx {
    inner: Receiver<SliceMsg>,
}

impl SliceRx for ChannelRx {
    fn recv(&self) -> Option<SliceMsg> {
        self.inner.recv().ok()
    }
}

/// The in-process backend: each link is a bounded MPMC channel, optionally
/// throttled by per-link or per-pair token buckets.
#[derive(Default)]
pub struct ChannelTransport {
    stats: StatsRegistry,
    shaper: Shaper,
}

impl ChannelTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        ChannelTransport::default()
    }

    /// Creates a transport where every link is throttled to `bytes_per_sec`
    /// by a token bucket, simulating bandwidth-limited links without
    /// sockets. Useful for measuring scheduling effects (e.g. concurrent
    /// versus sequential full-node recovery) where the repair is
    /// network-bound rather than CPU-bound.
    pub fn with_rate_limit(bytes_per_sec: u64) -> Self {
        ChannelTransport {
            stats: StatsRegistry::default(),
            shaper: Shaper::flat(bytes_per_sec),
        }
    }

    /// Creates a transport whose links are shaped per directed node pair by
    /// the topology's bandwidth model ([`Topology::bandwidth`]), so a
    /// heterogeneous cluster — slow NICs, constrained cross-rack links — is
    /// reproduced in process. All links over one pair share one bucket.
    pub fn with_topology(topology: Arc<Topology>) -> Self {
        ChannelTransport {
            stats: StatsRegistry::default(),
            shaper: Shaper::topology(topology),
        }
    }

    /// Re-rates one directed pair's shared bucket at runtime (topology-shaped
    /// transports only), throttling streams already in flight — the
    /// fault-injection hook behind the mid-stream link-degradation tests.
    /// Returns whether the transport shapes per pair.
    pub fn set_link_rate(&self, src: NodeId, dst: NodeId, bytes_per_sec: u64) -> bool {
        self.shaper.set_link_rate(src, dst, bytes_per_sec)
    }
}

impl Transport for ChannelTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        let stats = self.stats.register(src, dst);
        let (tx, rx) = bounded(capacity.max(1));
        let bucket = self.shaper.bucket(src, dst);
        (
            SliceSender {
                inner: Box::new(ChannelTx { inner: tx, bucket }),
                stats,
            },
            SliceReceiver {
                inner: Box::new(ChannelRx { inner: rx }),
            },
        )
    }

    fn stats(&self) -> &StatsRegistry {
        &self.stats
    }
}

/// A backend chosen at runtime: either in-process channels or localhost TCP
/// behind one concrete type, so runtime handles like
/// [`EcPipe`](crate::EcPipe) can own "some transport" without being generic
/// over it.
pub enum AnyTransport {
    /// In-process bounded channels ([`ChannelTransport`]).
    Channel(ChannelTransport),
    /// Localhost TCP sockets, one thread per listener/connection
    /// ([`TcpTransport`]).
    Tcp(TcpTransport),
    /// Localhost TCP sockets multiplexed over a fixed epoll thread pool
    /// ([`ReactorTransport`]).
    Reactor(ReactorTransport),
}

impl AnyTransport {
    /// Re-rates one directed pair's shared bucket at runtime
    /// (topology-shaped transports only); see
    /// [`ChannelTransport::set_link_rate`] /
    /// [`TcpTransport::set_link_rate`] /
    /// [`ReactorTransport::set_link_rate`]. Returns whether the backend
    /// shapes per pair.
    pub fn set_link_rate(&self, src: NodeId, dst: NodeId, bytes_per_sec: u64) -> bool {
        match self {
            AnyTransport::Channel(t) => t.set_link_rate(src, dst, bytes_per_sec),
            AnyTransport::Tcp(t) => t.set_link_rate(src, dst, bytes_per_sec),
            AnyTransport::Reactor(t) => t.set_link_rate(src, dst, bytes_per_sec),
        }
    }
}

impl Transport for AnyTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        match self {
            AnyTransport::Channel(t) => t.link(src, dst, capacity),
            AnyTransport::Tcp(t) => t.link(src, dst, capacity),
            AnyTransport::Reactor(t) => t.link(src, dst, capacity),
        }
    }

    fn stats(&self) -> &StatsRegistry {
        match self {
            AnyTransport::Channel(t) => t.stats(),
            AnyTransport::Tcp(t) => t.stats(),
            AnyTransport::Reactor(t) => t.stats(),
        }
    }
}

impl From<ChannelTransport> for AnyTransport {
    fn from(t: ChannelTransport) -> Self {
        AnyTransport::Channel(t)
    }
}

impl From<TcpTransport> for AnyTransport {
    fn from(t: TcpTransport) -> Self {
        AnyTransport::Tcp(t)
    }
}

impl From<ReactorTransport> for AnyTransport {
    fn from(t: ReactorTransport) -> Self {
        AnyTransport::Reactor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_counts_traffic() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"0123")))
            .unwrap();
        tx.send(SliceMsg::new(1, Bytes::from_static(b"45")))
            .unwrap();
        assert_eq!(rx.recv().unwrap().index, 0);
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"45"));
        assert_eq!(transport.link_bytes(0, 1), 6);
        assert_eq!(transport.total_bytes(), 6);
        assert_eq!(transport.links_used(), 1);
    }

    #[test]
    fn send_after_receiver_dropped_errors() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(rx);
        assert!(matches!(
            tx.send(SliceMsg::new(0, Bytes::new())),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn stats_accumulate_across_links_on_same_pair() {
        let transport = ChannelTransport::new();
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg::new(0, Bytes::from_static(b"abc")))
                .unwrap();
            rx.recv();
        }
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg::new(0, Bytes::from_static(b"de")))
                .unwrap();
            rx.recv();
        }
        assert_eq!(transport.link_bytes(2, 3), 5);
        assert_eq!(transport.max_link_bytes(), 5);
    }

    #[test]
    fn recv_returns_none_when_sender_dropped() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn token_bucket_enforces_rate() {
        let bucket = TokenBucket::new(1_000_000); // 1 MB/s, 20 KB burst
        let start = Instant::now();
        bucket.take(120_000);
        // 120 KB minus the initial burst at 1 MB/s needs >= ~100 ms.
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn throttled_channel_link_paces_traffic() {
        let transport = ChannelTransport::with_rate_limit(1_000_000);
        let (tx, rx) = transport.link(0, 1, 64);
        let start = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for j in 0..8 {
                    tx.send(SliceMsg::new(j, Bytes::from(vec![0u8; 16 * 1024])))
                        .unwrap();
                }
            });
            for _ in 0..8 {
                rx.recv().unwrap();
            }
        });
        // 128 KB at 1 MB/s needs >= ~100 ms even after the initial burst.
        assert!(start.elapsed() >= Duration::from_millis(90));
        assert_eq!(transport.link_bytes(0, 1), 8 * 16 * 1024);
    }

    #[test]
    fn token_bucket_rate_change_applies_mid_stream() {
        let bucket = TokenBucket::new(100_000_000); // effectively unthrottled
        bucket.take(64 * 1024);
        bucket.set_rate(100_000); // 100 KB/s
        let start = Instant::now();
        bucket.take(20 * 1024);
        // 20 KiB at 100 KB/s needs ~200 ms (burst is only ~2 KiB).
        assert!(start.elapsed() >= Duration::from_millis(150));
    }

    #[test]
    fn topology_shaping_throttles_only_the_slow_pair() {
        // Node 2's NIC is slow; the 0 -> 1 link is fast.
        let mut topo = Topology::flat(3, 64.0 * 1024.0 * 1024.0);
        topo.set_node_bandwidth(2, 100_000.0, 100_000.0);
        let transport = ChannelTransport::with_topology(Arc::new(topo));
        let elapsed_over = |src: NodeId, dst: NodeId| {
            let (tx, rx) = transport.link(src, dst, 64);
            let start = Instant::now();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for j in 0..4 {
                        tx.send(SliceMsg::new(j, Bytes::from(vec![0u8; 16 * 1024])))
                            .unwrap();
                    }
                });
                for _ in 0..4 {
                    rx.recv().unwrap();
                }
            });
            start.elapsed()
        };
        assert!(elapsed_over(0, 1) < Duration::from_millis(100));
        // 64 KiB into the 100 KB/s node needs >= ~500 ms.
        assert!(elapsed_over(0, 2) >= Duration::from_millis(400));
    }

    #[test]
    fn topology_pairs_share_one_bucket_but_flat_links_do_not() {
        let topo = Arc::new(Topology::flat(2, 1_000_000.0));
        let shaped = ChannelTransport::with_topology(topo);
        let a = shaped.shaper.bucket(0, 1).unwrap();
        let b = shaped.shaper.bucket(0, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let flat = ChannelTransport::with_rate_limit(1_000_000);
        let c = flat.shaper.bucket(0, 1).unwrap();
        let d = flat.shaper.bucket(0, 1).unwrap();
        assert!(!Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn set_link_rate_applies_only_under_topology_shaping() {
        let unshaped = ChannelTransport::new();
        assert!(!unshaped.set_link_rate(0, 1, 1));
        let flat = ChannelTransport::with_rate_limit(1_000_000);
        assert!(!flat.set_link_rate(0, 1, 1));
        let shaped = ChannelTransport::with_topology(Arc::new(Topology::flat(2, 1e9)));
        assert!(shaped.set_link_rate(0, 1, 100_000));
        // The pre-created bucket is the one links draw from afterwards.
        let (tx, rx) = shaped.link(0, 1, 64);
        let start = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                tx.send(SliceMsg::new(0, Bytes::from(vec![0u8; 32 * 1024])))
                    .unwrap();
            });
            rx.recv().unwrap();
        });
        assert!(start.elapsed() >= Duration::from_millis(200));
    }

    #[test]
    fn snapshot_copies_all_counters() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"0123")))
            .unwrap();
        rx.recv().unwrap();
        let snap = transport.stats().snapshot();
        let link = snap.get(&(0, 1)).unwrap();
        assert_eq!(link.bytes, 4);
        assert_eq!(link.messages, 1);
        // Unused registered pairs don't appear; busy time was recorded.
        assert_eq!(snap.len(), 1);
        let registered = transport.stats().register(0, 1);
        assert!(registered.busy_nanos() > 0);
    }

    #[test]
    fn tags_travel_with_the_message() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        tx.send(SliceMsg::new(3, Bytes::from_static(b"x")).tagged(7, 9))
            .unwrap();
        let msg = rx.recv().unwrap();
        assert_eq!((msg.index, msg.stripe, msg.repair), (3, 7, 9));
    }
}
