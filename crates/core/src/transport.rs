//! Pluggable slice transports.
//!
//! The paper's prototype moves slices between helper daemons over a real
//! network (Redis-backed in the ATC'17 version, direct TCP in the extended
//! evaluation). This module makes the runtime's transport pluggable behind
//! the [`Transport`] trait:
//!
//! * [`ChannelTransport`] — bounded in-process channels, the fast default
//!   used by tests and benches (an in-memory staging area between pipeline
//!   stages, playing the role of the paper's Redis instances); an optional
//!   per-link token-bucket throttle
//!   ([`ChannelTransport::with_rate_limit`]) simulates bandwidth-limited
//!   links in process, which is what makes concurrent recovery through the
//!   [`manager`](crate::manager) measurably faster than the sequential
//!   loop even on a single-core host;
//! * [`TcpTransport`] — real localhost TCP sockets with a length-prefixed
//!   wire format, connection reuse and the same optional token-bucket
//!   bandwidth throttle, so the timing claims of §3.2 can be measured on
//!   sockets rather than only in `simnet`.
//!
//! Every backend keeps per-link byte counters ([`LinkStats`]) so tests can
//! check the traffic-distribution claims of the paper (e.g. repair
//! pipelining sends exactly one block over every link, conventional repair
//! funnels `k` blocks into the requestor's link).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use ecpipe_sync::Mutex;

use simnet::NodeId;

use crate::lock_order;

mod tcp;

pub use tcp::TcpTransport;

/// A token bucket limiting one link to `rate` bytes per second. Shared by
/// both backends: it shapes real socket writes in [`TcpTransport`] and
/// simulates constrained links in [`ChannelTransport`].
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    /// Lock class: `transport.token_bucket`
    /// ([`lock_order::TRANSPORT_TOKEN_BUCKET`]).
    state: Mutex<(f64, Instant)>,
}

impl TokenBucket {
    pub(crate) fn new(rate: u64) -> Self {
        let rate = rate.max(1) as f64;
        // A small burst keeps the shaping fine-grained: the bucket never
        // banks more than ~2 ms of line rate while a link is idle (min
        // 2 KiB so tiny rates make progress). It also starts empty, so
        // every byte pays the line rate from the first slice on — both
        // choices keep measured repair times close to the store-and-forward
        // timing model of §3.2 instead of letting idle links run ahead.
        let burst = (rate / 500.0).max(2048.0);
        TokenBucket {
            rate,
            burst,
            state: Mutex::new(&lock_order::TRANSPORT_TOKEN_BUCKET, (0.0, Instant::now())),
        }
    }

    pub(crate) fn take(&self, bytes: usize) {
        let mut need = bytes as f64;
        while need > 0.0 {
            let wait;
            {
                let mut state = self.state.lock();
                let (ref mut tokens, ref mut last) = *state;
                let now = Instant::now();
                *tokens =
                    (*tokens + now.duration_since(*last).as_secs_f64() * self.rate).min(self.burst);
                *last = now;
                let grab = need.min(*tokens);
                *tokens -= grab;
                need -= grab;
                if need <= 0.0 {
                    return;
                }
                wait = Duration::from_secs_f64(need.min(self.burst) / self.rate);
            }
            std::thread::sleep(wait);
        }
    }
}

/// A slice (or partial slice) in flight between two pipeline stages.
#[derive(Debug, Clone, Default)]
pub struct SliceMsg {
    /// Index of the slice within its block.
    pub index: usize,
    /// The stripe the slice belongs to — observability metadata carried in
    /// wire frames (routing is by link id).
    pub stripe: u64,
    /// The repair job the slice belongs to (see
    /// [`RepairDirective::repair_id`](crate::RepairDirective::repair_id));
    /// metadata like `stripe`.
    pub repair: u64,
    /// Payload.
    pub data: Bytes,
}

impl SliceMsg {
    /// Creates an untagged message (stripe/repair ids zero).
    pub fn new(index: usize, data: Bytes) -> Self {
        SliceMsg {
            index,
            stripe: 0,
            repair: 0,
            data,
        }
    }

    /// Tags the message with the stripe and repair-job ids that go on the
    /// wire.
    pub fn tagged(mut self, stripe: u64, repair: u64) -> Self {
        self.stripe = stripe;
        self.repair = repair;
        self
    }
}

/// Errors surfaced by a transport link.
#[derive(Debug)]
pub enum TransportError {
    /// The peer end of the link has been dropped (a dead helper or
    /// requestor).
    Disconnected,
    /// A socket-level failure on a networked backend.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer end of the link is gone"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-link transfer statistics.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl LinkStats {
    /// Total bytes sent over the link.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages (slices) sent over the link.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// The backend half of a [`SliceSender`]: moves one message to the peer.
trait SliceTx: Send + Sync {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError>;
}

/// The backend half of a [`SliceReceiver`]: yields the next message.
trait SliceRx: Send + Sync {
    fn recv(&self) -> Option<SliceMsg>;
}

/// The sending half of a link; counts traffic as it sends.
pub struct SliceSender {
    inner: Box<dyn SliceTx>,
    stats: Arc<LinkStats>,
}

impl SliceSender {
    /// Sends one slice, blocking if the link's buffer is full.
    ///
    /// Fails with [`TransportError::Disconnected`] once the receiving end has
    /// been dropped (a dead helper must fail the repair rather than silently
    /// truncate it), or [`TransportError::Io`] on a socket failure.
    pub fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        let bytes = msg.data.len() as u64;
        self.inner.send(msg)?;
        // Count only traffic the link actually accepted, so failed sends
        // don't inflate the byte accounting the tests assert on.
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The receiving half of a link.
pub struct SliceReceiver {
    inner: Box<dyn SliceRx>,
}

impl SliceReceiver {
    /// Receives the next slice, or `None` once the sender is dropped and the
    /// link is drained.
    pub fn recv(&self) -> Option<SliceMsg> {
        self.inner.recv()
    }
}

/// Shared per-link traffic accounting, embedded by every backend.
pub struct StatsRegistry {
    /// Lock class: `transport.stats` ([`lock_order::TRANSPORT_STATS`]).
    links: Mutex<HashMap<(NodeId, NodeId), Arc<LinkStats>>>,
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry {
            links: Mutex::new(&lock_order::TRANSPORT_STATS, HashMap::new()),
        }
    }
}

impl StatsRegistry {
    /// The stats cell for a directed link, created on first use. Repeated
    /// links over the same `(src, dst)` pair accumulate into one cell.
    pub fn register(&self, src: NodeId, dst: NodeId) -> Arc<LinkStats> {
        self.links
            .lock()
            .entry((src, dst))
            .or_insert_with(|| Arc::new(LinkStats::default()))
            .clone()
    }

    /// Bytes carried by one directed link so far.
    pub fn link_bytes(&self, src: NodeId, dst: NodeId) -> u64 {
        self.links
            .lock()
            .get(&(src, dst))
            .map(|s| s.bytes())
            .unwrap_or(0)
    }

    /// Total bytes moved over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.lock().values().map(|s| s.bytes()).sum()
    }

    /// Bytes on the most-loaded directed link.
    pub fn max_link_bytes(&self) -> u64 {
        self.links
            .lock()
            .values()
            .map(|s| s.bytes())
            .max()
            .unwrap_or(0)
    }

    /// The number of directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.links.lock().values().filter(|s| s.bytes() > 0).count()
    }
}

/// A factory for inter-node links, with global traffic accounting.
///
/// The executors in [`crate::exec`] are generic over this trait, so the same
/// repair strategies run unchanged over in-process channels
/// ([`ChannelTransport`]) or localhost TCP sockets ([`TcpTransport`]).
///
/// ```
/// use bytes::Bytes;
/// use ecpipe::transport::{ChannelTransport, SliceMsg, Transport};
///
/// let transport = ChannelTransport::new();
/// // A bounded link from node 0 to node 1, as the executors open them.
/// let (tx, rx) = transport.link(0, 1, 8);
/// tx.send(SliceMsg::new(0, Bytes::from_static(b"slice")).tagged(7, 2))
///     .unwrap();
/// let msg = rx.recv().unwrap();
/// assert_eq!((msg.index, msg.stripe, msg.repair), (0, 7, 2));
/// drop(tx);
/// assert!(rx.recv().is_none(), "stream ends when the sender drops");
/// // Per-link accounting, used by the paper's traffic-distribution tests.
/// assert_eq!(transport.link_bytes(0, 1), 5);
/// assert_eq!(transport.total_bytes(), 5);
/// ```
pub trait Transport: Send + Sync {
    /// Opens a bounded link from `src` to `dst`. The capacity is the number
    /// of slices that may be buffered in flight (the pipeline depth between
    /// two stages); senders block once it is reached.
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver);

    /// The backend's traffic accounting.
    fn stats(&self) -> &StatsRegistry;

    /// Bytes carried by one directed link so far.
    fn link_bytes(&self, src: NodeId, dst: NodeId) -> u64 {
        self.stats().link_bytes(src, dst)
    }

    /// Total bytes moved over all links.
    fn total_bytes(&self) -> u64 {
        self.stats().total_bytes()
    }

    /// Bytes on the most-loaded directed link.
    fn max_link_bytes(&self) -> u64 {
        self.stats().max_link_bytes()
    }

    /// The number of directed links that carried any traffic.
    fn links_used(&self) -> usize {
        self.stats().links_used()
    }
}

struct ChannelTx {
    inner: Sender<SliceMsg>,
    bucket: Option<Arc<TokenBucket>>,
}

impl SliceTx for ChannelTx {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        if let Some(bucket) = &self.bucket {
            bucket.take(msg.data.len());
        }
        self.inner
            .send(msg)
            .map_err(|_| TransportError::Disconnected)
    }
}

struct ChannelRx {
    inner: Receiver<SliceMsg>,
}

impl SliceRx for ChannelRx {
    fn recv(&self) -> Option<SliceMsg> {
        self.inner.recv().ok()
    }
}

/// The in-process backend: each link is a bounded MPMC channel, optionally
/// throttled by a per-link token bucket.
#[derive(Default)]
pub struct ChannelTransport {
    stats: StatsRegistry,
    rate_limit: Option<u64>,
}

impl ChannelTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        ChannelTransport::default()
    }

    /// Creates a transport where every link is throttled to `bytes_per_sec`
    /// by a token bucket, simulating bandwidth-limited links without
    /// sockets. Useful for measuring scheduling effects (e.g. concurrent
    /// versus sequential full-node recovery) where the repair is
    /// network-bound rather than CPU-bound.
    pub fn with_rate_limit(bytes_per_sec: u64) -> Self {
        ChannelTransport {
            stats: StatsRegistry::default(),
            rate_limit: Some(bytes_per_sec),
        }
    }
}

impl Transport for ChannelTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        let stats = self.stats.register(src, dst);
        let (tx, rx) = bounded(capacity.max(1));
        let bucket = self.rate_limit.map(|rate| Arc::new(TokenBucket::new(rate)));
        (
            SliceSender {
                inner: Box::new(ChannelTx { inner: tx, bucket }),
                stats,
            },
            SliceReceiver {
                inner: Box::new(ChannelRx { inner: rx }),
            },
        )
    }

    fn stats(&self) -> &StatsRegistry {
        &self.stats
    }
}

/// A backend chosen at runtime: either in-process channels or localhost TCP
/// behind one concrete type, so runtime handles like
/// [`EcPipe`](crate::EcPipe) can own "some transport" without being generic
/// over it.
pub enum AnyTransport {
    /// In-process bounded channels ([`ChannelTransport`]).
    Channel(ChannelTransport),
    /// Localhost TCP sockets ([`TcpTransport`]).
    Tcp(TcpTransport),
}

impl Transport for AnyTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        match self {
            AnyTransport::Channel(t) => t.link(src, dst, capacity),
            AnyTransport::Tcp(t) => t.link(src, dst, capacity),
        }
    }

    fn stats(&self) -> &StatsRegistry {
        match self {
            AnyTransport::Channel(t) => t.stats(),
            AnyTransport::Tcp(t) => t.stats(),
        }
    }
}

impl From<ChannelTransport> for AnyTransport {
    fn from(t: ChannelTransport) -> Self {
        AnyTransport::Channel(t)
    }
}

impl From<TcpTransport> for AnyTransport {
    fn from(t: TcpTransport) -> Self {
        AnyTransport::Tcp(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_counts_traffic() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"0123")))
            .unwrap();
        tx.send(SliceMsg::new(1, Bytes::from_static(b"45")))
            .unwrap();
        assert_eq!(rx.recv().unwrap().index, 0);
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"45"));
        assert_eq!(transport.link_bytes(0, 1), 6);
        assert_eq!(transport.total_bytes(), 6);
        assert_eq!(transport.links_used(), 1);
    }

    #[test]
    fn send_after_receiver_dropped_errors() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(rx);
        assert!(matches!(
            tx.send(SliceMsg::new(0, Bytes::new())),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn stats_accumulate_across_links_on_same_pair() {
        let transport = ChannelTransport::new();
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg::new(0, Bytes::from_static(b"abc")))
                .unwrap();
            rx.recv();
        }
        {
            let (tx, rx) = transport.link(2, 3, 1);
            tx.send(SliceMsg::new(0, Bytes::from_static(b"de")))
                .unwrap();
            rx.recv();
        }
        assert_eq!(transport.link_bytes(2, 3), 5);
        assert_eq!(transport.max_link_bytes(), 5);
    }

    #[test]
    fn recv_returns_none_when_sender_dropped() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn token_bucket_enforces_rate() {
        let bucket = TokenBucket::new(1_000_000); // 1 MB/s, 20 KB burst
        let start = Instant::now();
        bucket.take(120_000);
        // 120 KB minus the initial burst at 1 MB/s needs >= ~100 ms.
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn throttled_channel_link_paces_traffic() {
        let transport = ChannelTransport::with_rate_limit(1_000_000);
        let (tx, rx) = transport.link(0, 1, 64);
        let start = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for j in 0..8 {
                    tx.send(SliceMsg::new(j, Bytes::from(vec![0u8; 16 * 1024])))
                        .unwrap();
                }
            });
            for _ in 0..8 {
                rx.recv().unwrap();
            }
        });
        // 128 KB at 1 MB/s needs >= ~100 ms even after the initial burst.
        assert!(start.elapsed() >= Duration::from_millis(90));
        assert_eq!(transport.link_bytes(0, 1), 8 * 16 * 1024);
    }

    #[test]
    fn tags_travel_with_the_message() {
        let transport = ChannelTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        tx.send(SliceMsg::new(3, Bytes::from_static(b"x")).tagged(7, 9))
            .unwrap();
        let msg = rx.recv().unwrap();
        assert_eq!((msg.index, msg.stripe, msg.repair), (3, 7, 9));
    }
}
