//! Full-node recovery (§3.3) and degraded-read retries.
//!
//! When a storage node fails, every stripe that kept a block on it needs a
//! single-block repair. [`full_node_recovery`] walks those stripes, plans
//! each repair with the greedy least-recently-selected helper scheduling, and
//! spreads the reconstructed blocks over the configured requestors
//! (round-robin), matching the paper's Figure 8(e) setup. The distribution of
//! reconstructed blocks also covers the §6.4 comparisons: a single
//! replacement node (`RP-single` / `PUSH-Rep`) versus all surviving nodes
//! (`RP-all` / `PUSH-Sur`).
//!
//! Since the [`manager`] subsystem landed, this sequential
//! entry point is a thin wrapper over
//! [`run_batch`](crate::manager::run_batch) with one worker and no admission
//! cap — today's semantics, same byte-for-byte results. Use
//! [`recover_node`](crate::manager::recover_node) with a multi-worker
//! [`ManagerConfig`] to run the same recovery concurrently.

use std::collections::HashMap;
use std::time::Duration;

use ecc::stripe::StripeId;
use simnet::NodeId;

use crate::cluster::Cluster;
use crate::coordinator::SelectionPolicy;
use crate::exec::{self, ExecStrategy};
use crate::manager::{self, ManagerConfig, ManagerReport};
use crate::transport::{ChannelTransport, Transport};
use crate::{Coordinator, EcPipeError, Result};

/// The outcome of a full-node recovery.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Number of blocks reconstructed.
    pub blocks_repaired: usize,
    /// Total bytes reconstructed.
    pub bytes_repaired: usize,
    /// Blocks reconstructed per requestor node.
    pub per_requestor: HashMap<NodeId, usize>,
    /// Total bytes moved over the transport during the recovery.
    pub network_bytes: u64,
    /// Elapsed wall-clock time of the whole recovery, so sequential and
    /// concurrent runs are comparable from the report alone.
    pub wall_time: Duration,
    /// Per-stripe repair durations `(stripe, time from pickup to stored
    /// block)`, in completion order.
    pub stripe_durations: Vec<(StripeId, Duration)>,
}

impl RecoveryReport {
    fn from_manager(report: &ManagerReport) -> Self {
        RecoveryReport {
            blocks_repaired: report.blocks_repaired,
            bytes_repaired: report.bytes_repaired,
            per_requestor: report.per_requestor.clone(),
            network_bytes: report.network_bytes,
            wall_time: report.wall_time,
            stripe_durations: report
                .outcomes
                .iter()
                .map(|o| (o.stripe, o.duration))
                .collect(),
        }
    }
}

/// Recovers every block that was stored on `failed_node`, writing each
/// reconstructed block to one of `requestors` (round-robin). Slices move
/// over a fresh in-process [`ChannelTransport`]; use
/// [`full_node_recovery_over`] to recover over another backend.
pub fn full_node_recovery(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    failed_node: NodeId,
    requestors: &[NodeId],
    strategy: ExecStrategy,
) -> Result<RecoveryReport> {
    full_node_recovery_over(
        coordinator,
        cluster,
        failed_node,
        requestors,
        strategy,
        &ChannelTransport::new(),
    )
}

/// [`full_node_recovery`] over an explicit transport backend; the report's
/// `network_bytes` counts only the traffic this recovery put on it.
///
/// This is the sequential baseline: a thin wrapper over the repair
/// manager's batch engine with [`ManagerConfig::sequential`] (one worker,
/// unbounded admission cap, no re-plans), which walks the affected stripes
/// in id order exactly like the historical loop did.
pub fn full_node_recovery_over<T: Transport + ?Sized>(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    failed_node: NodeId,
    requestors: &[NodeId],
    strategy: ExecStrategy,
    transport: &T,
) -> Result<RecoveryReport> {
    let config = ManagerConfig::sequential(strategy);
    let report = manager::recover_node(
        coordinator,
        cluster,
        transport,
        failed_node,
        requestors,
        &config,
    )?;
    Ok(RecoveryReport::from_manager(&report))
}

/// Repairs a degraded read with straggler handling (§3.2): if a helper fails
/// mid-repair, the repair restarts with the straggler's block excluded from
/// the helper set.
///
/// `excluded` lists block indices already known to be unavailable.
pub fn degraded_read_with_retry(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    stripe: ecc::stripe::StripeId,
    failed: usize,
    requestor: NodeId,
    strategy: ExecStrategy,
    max_retries: usize,
) -> Result<Vec<u8>> {
    degraded_read_with_retry_over(
        coordinator,
        cluster,
        stripe,
        failed,
        requestor,
        strategy,
        max_retries,
        &ChannelTransport::new(),
    )
}

/// [`degraded_read_with_retry`] over an explicit transport backend.
#[allow(clippy::too_many_arguments)]
pub fn degraded_read_with_retry_over<T: Transport + ?Sized>(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    stripe: ecc::stripe::StripeId,
    failed: usize,
    requestor: NodeId,
    strategy: ExecStrategy,
    max_retries: usize,
    transport: &T,
) -> Result<Vec<u8>> {
    let mut excluded: Vec<usize> = Vec::new();
    for _attempt in 0..=max_retries {
        let directive = coordinator.plan_single_repair(
            stripe,
            failed,
            requestor,
            &excluded,
            SelectionPolicy::CodeDefault,
        )?;
        match exec::execute_single(&directive, cluster, transport, strategy) {
            Ok(block) => return Ok(block),
            Err(EcPipeError::BlockNotFound { block }) if block.stripe == stripe => {
                // A helper lost its block mid-repair; exclude it and restart
                // with a fresh helper set.
                excluded.push(block.index);
            }
            Err(e) => return Err(e),
        }
    }
    Err(EcPipeError::Execution {
        reason: format!("repair failed after {max_retries} retries"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::slice::SliceLayout;
    use ecc::ReedSolomon;
    use std::sync::Arc;

    fn setup(stripes: u64) -> (Cluster, Coordinator, Vec<Vec<Vec<u8>>>) {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(2048, 256));
        let cluster = Cluster::new(crate::StoreBackend::memory(10)).unwrap();
        let mut all_data = Vec::new();
        for s in 0..stripes {
            let data: Vec<Vec<u8>> = (0..4)
                .map(|i| {
                    (0..2048)
                        .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                        .collect()
                })
                .collect();
            cluster.write_stripe(&mut coordinator, s, &data).unwrap();
            all_data.push(data);
        }
        (cluster, coordinator, all_data)
    }

    #[test]
    fn recovers_all_blocks_of_a_failed_node() {
        let (cluster, mut coordinator, _data) = setup(8);
        let failed_node = 2;
        let lost = cluster.kill_node(failed_node);
        assert!(!lost.is_empty());
        let report = full_node_recovery(
            &mut coordinator,
            &cluster,
            failed_node,
            &[8, 9],
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
        assert_eq!(report.blocks_repaired, lost.len());
        assert_eq!(report.bytes_repaired, lost.len() * 2048);
        // Repaired blocks land on the requestors, spread round-robin.
        let total: usize = report.per_requestor.values().sum();
        assert_eq!(total, lost.len());
        assert!(report.per_requestor.len() <= 2);
        assert!(report.network_bytes > 0);
        // Elapsed-time accounting: a wall time and one duration per stripe.
        assert!(report.wall_time > std::time::Duration::ZERO);
        assert_eq!(report.stripe_durations.len(), lost.len());
        assert!(report
            .stripe_durations
            .iter()
            .all(|&(_, d)| d <= report.wall_time));
        // Every reconstructed block matches a fresh re-encode of the stripe.
        for block in lost {
            let found = [8usize, 9]
                .iter()
                .any(|&r| cluster.store(r).contains(block));
            assert!(found, "block {block} was not reconstructed");
        }
    }

    #[test]
    fn recovery_rejects_failed_node_as_requestor() {
        let (cluster, mut coordinator, _) = setup(1);
        let err = full_node_recovery(
            &mut coordinator,
            &cluster,
            0,
            &[0],
            ExecStrategy::RepairPipelining,
        );
        assert!(err.is_err());
    }

    #[test]
    fn degraded_read_retries_around_a_straggler() {
        let (cluster, mut coordinator, data) = setup(1);
        let stripe = ecc::stripe::StripeId(0);
        // Erase the block being read and one of the helpers the default plan
        // would use.
        cluster.erase_block(stripe, 0);
        cluster.erase_block(stripe, 1);
        let repaired = degraded_read_with_retry(
            &mut coordinator,
            &cluster,
            stripe,
            0,
            9,
            ExecStrategy::RepairPipelining,
            2,
        )
        .unwrap();
        assert_eq!(repaired, data[0][0]);
    }

    #[test]
    fn degraded_read_fails_when_too_many_blocks_are_lost() {
        let (cluster, mut coordinator, _) = setup(1);
        let stripe = ecc::stripe::StripeId(0);
        for i in 0..3 {
            cluster.erase_block(stripe, i);
        }
        let result = degraded_read_with_retry(
            &mut coordinator,
            &cluster,
            stripe,
            0,
            9,
            ExecStrategy::RepairPipelining,
            3,
        );
        assert!(result.is_err());
    }
}
