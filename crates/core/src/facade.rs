//! The `EcPipe` runtime façade: one builder-configured handle over the
//! whole middleware.
//!
//! The paper's ECPipe is a middleware that storage systems talk to through a
//! thin client API (§5); the TOS extension integrates it with HDFS and QFS
//! exactly that way. This module is that client API for our runtime:
//! [`EcPipeBuilder`] assembles the code, slice layout, store backend,
//! transport and repair-manager configuration into one [`EcPipe`] handle,
//! and the handle adds the piece every consumer used to hand-wire around —
//! an object-level data path.
//!
//! * [`EcPipe::put`] encodes an object into one or more stripes and places
//!   the blocks across the nodes;
//! * [`EcPipe::get`] / [`EcPipe::get_range`] serve native reads, and fall
//!   back *transparently* to manager-prioritized degraded reads when a
//!   block is missing or fails checksum verification — the caller sees the
//!   right bytes, the cluster heals as a side effect;
//! * fault-injection and observability passthroughs ([`EcPipe::kill_node`],
//!   [`EcPipe::corrupt`], [`EcPipe::report_node_failure`],
//!   [`EcPipe::scrub`], [`EcPipe::shutdown`]) expose the machinery
//!   underneath without any extra wiring.
//!
//! The coordinator, executors and [`RepairManager`] remain reachable
//! (through [`EcPipe::manager`] and [`EcPipe::with_coordinator`]) for code
//! that needs the lower layers; they are implementation details of the data
//! path, not the entry point.
//!
//! ```
//! use ecpipe::{EcPipeBuilder, StoreBackend};
//!
//! let pipe = EcPipeBuilder::new()
//!     .code(6, 4)
//!     .block_size(64 * 1024)
//!     .slice_size(8 * 1024)
//!     .store(StoreBackend::memory(8))
//!     .build()
//!     .unwrap();
//!
//! let data: Vec<u8> = (0..300_000).map(|i| (i % 251) as u8).collect();
//! pipe.put("/logs/day-001", &data).unwrap();
//!
//! // A node dies; reads still return exactly the written bytes, served by
//! // degraded reads through the repair manager.
//! pipe.kill_node(2);
//! assert_eq!(pipe.get("/logs/day-001").unwrap(), data);
//! let report = pipe.shutdown();
//! assert_eq!(report.failed_repairs, 0);
//! ```

use std::ops::Range;
use std::sync::Arc;

use ecc::slice::SliceLayout;
use ecc::stripe::StripeId;
use ecc::{ErasureCode, ReedSolomon};
use ecpipe_meta::{MetaBackend, MetaConfig, MetaRouter};
use simnet::{NodeId, Topology};

use crate::cluster::Cluster;
use crate::coordinator::{Coordinator, ObjectMeta};
use crate::exec::ExecStrategy;
use crate::manager::{
    LinkWatchConfig, ManagerConfig, ManagerReport, NodeHealth, PathPolicy, RepairManager,
    RepairPriority, RepairRequest, ScrubConfig, ScrubCycle, Scrubber,
};
use crate::store::StoreBackend;
use crate::transport::{AnyTransport, ChannelTransport, ReactorTransport, TcpTransport};
use crate::{EcPipeError, Result};

/// Which transport backend moves repair slices between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportChoice {
    /// Bounded in-process channels — the fast default.
    Channel,
    /// Real localhost TCP sockets with the framed wire format.
    Tcp,
    /// Localhost TCP sockets multiplexed over a fixed epoll thread pool —
    /// the same wire format as [`Tcp`](TransportChoice::Tcp) without a
    /// thread per connection.
    Reactor,
}

/// Builder for an [`EcPipe`] runtime handle.
///
/// Every knob has a working default: a `(6, 4)` Reed-Solomon code, 64 KiB
/// blocks in 8 KiB slices, an in-memory cluster of `n + 2` nodes, the
/// in-process channel transport and the default [`ManagerConfig`]. Override
/// what the scenario needs and call [`build`](EcPipeBuilder::build).
#[derive(Clone)]
pub struct EcPipeBuilder {
    code: Option<Arc<dyn ErasureCode>>,
    nk: (usize, usize),
    block_size: usize,
    slice_size: usize,
    backend: Option<StoreBackend>,
    transport: TransportChoice,
    rate_limit: Option<u64>,
    topology: Option<Topology>,
    manager: ManagerConfig,
    meta_backend: MetaBackend,
    meta_shards: usize,
}

impl Default for EcPipeBuilder {
    fn default() -> Self {
        EcPipeBuilder {
            code: None,
            nk: (6, 4),
            block_size: 64 * 1024,
            slice_size: 8 * 1024,
            backend: None,
            transport: TransportChoice::Channel,
            rate_limit: None,
            topology: None,
            manager: ManagerConfig::default(),
            meta_backend: MetaBackend::Ephemeral,
            meta_shards: MetaConfig::DEFAULT_SHARDS,
        }
    }
}

impl EcPipeBuilder {
    /// Starts from the defaults.
    pub fn new() -> Self {
        EcPipeBuilder::default()
    }

    /// Uses an `(n, k)` Reed-Solomon code.
    pub fn code(mut self, n: usize, k: usize) -> Self {
        self.nk = (n, k);
        self.code = None;
        self
    }

    /// Uses an explicit erasure code (e.g. an LRC).
    pub fn erasure_code(mut self, code: Arc<dyn ErasureCode>) -> Self {
        self.code = Some(code);
        self
    }

    /// Sets the block size in bytes.
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes;
        self
    }

    /// Sets the slice size in bytes (clamped to the block size).
    pub fn slice_size(mut self, bytes: usize) -> Self {
        self.slice_size = bytes;
        self
    }

    /// Sets the block/slice layout in one call.
    pub fn layout(mut self, layout: SliceLayout) -> Self {
        self.block_size = layout.block_size;
        self.slice_size = layout.slice_size;
        self
    }

    /// Chooses the store backend (and with it the node count).
    pub fn store(mut self, backend: StoreBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Shorthand for [`store`](Self::store) with plain in-memory nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.backend = Some(StoreBackend::memory(nodes));
        self
    }

    /// Chooses the transport backend.
    pub fn transport(mut self, choice: TransportChoice) -> Self {
        self.transport = choice;
        self
    }

    /// Throttles every transport link to `bytes_per_sec` with a token
    /// bucket, so repairs are network-bound like the paper's testbed.
    pub fn rate_limit(mut self, bytes_per_sec: u64) -> Self {
        self.rate_limit = Some(bytes_per_sec);
        self
    }

    /// Attaches a network topology: racks, per-node and per-link bandwidths.
    ///
    /// The topology does three things at build time. It seeds the manager's
    /// [`LinkTelemetry`](crate::telemetry::LinkTelemetry) layer, which turns
    /// on the topology-aware [`PathPolicy`] variants and the mid-stream link
    /// watchdog. It is stored on the [`Cluster`] so repair planning can ask
    /// which rack a node lives in. And — unless a flat
    /// [`rate_limit`](Self::rate_limit) was set, which takes precedence —
    /// the transport is shaped per-link to the topology's bandwidths, so a
    /// slow cross-rack link is actually slow on the wire.
    ///
    /// The topology must cover at least as many nodes as the store backend.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Chooses how repair helpers are selected and ordered. The topology-
    /// aware policies need [`topology`](Self::topology) to be set; without
    /// one they fall back to plain LRU selection.
    pub fn path_policy(mut self, policy: PathPolicy) -> Self {
        self.manager.path_policy = policy;
        self
    }

    /// Enables the mid-stream link watchdog: a repair whose links fall
    /// below the configured fraction of their nominal bandwidth is
    /// cancelled and re-planned around the degraded link. Needs
    /// [`topology`](Self::topology) to be set to take effect.
    pub fn link_watch(mut self, watch: LinkWatchConfig) -> Self {
        self.manager.link_watch = Some(watch);
        self
    }

    /// Replaces the repair-manager configuration wholesale.
    ///
    /// `relocate_on_success` is forced on at build time: the data path
    /// depends on repaired blocks being findable by later reads.
    pub fn manager(mut self, config: ManagerConfig) -> Self {
        self.manager = config;
        self
    }

    /// Sets the execution strategy for every repair.
    pub fn strategy(mut self, strategy: ExecStrategy) -> Self {
        self.manager.strategy = strategy;
        self
    }

    /// Sets the repair worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.manager.workers = workers;
        self
    }

    /// Chooses where the metadata plane keeps object/stripe/repair state.
    /// [`MetaBackend::Ephemeral`] (the default) keeps it in memory;
    /// [`MetaBackend::Durable`] writes per-shard WALs and snapshots under a
    /// root directory, and building over an existing directory *recovers*
    /// the namespace — placements, epochs and still-pending repair
    /// directives — before the runtime starts (pair it with a file-backed
    /// [`StoreBackend`] so the blocks survive too).
    pub fn meta(mut self, backend: MetaBackend) -> Self {
        self.meta_backend = backend;
        self
    }

    /// Sets the metadata shard count (clamped to at least 1). Reopening a
    /// durable directory keeps the count it was created with.
    pub fn meta_shards(mut self, shards: usize) -> Self {
        self.meta_shards = shards.max(1);
        self
    }

    /// Builds the runtime: stores, cluster, coordinator, transport, and the
    /// repair-manager daemon serving the degraded-read path.
    pub fn build(self) -> Result<EcPipe> {
        let code: Arc<dyn ErasureCode> = match self.code {
            Some(code) => code,
            None => Arc::new(ReedSolomon::new(self.nk.0, self.nk.1)?),
        };
        let layout = SliceLayout::new(self.block_size, self.slice_size);
        let backend = self.backend.unwrap_or(StoreBackend::Memory {
            nodes: code.n() + 2,
        });
        let nodes = backend.num_nodes();
        if nodes < code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "the backend has {nodes} nodes but the ({}, {}) code needs {} per stripe",
                    code.n(),
                    code.k(),
                    code.n()
                ),
            });
        }
        let mut cluster = Cluster::new(backend)?;
        let topology = match self.topology {
            Some(topology) => {
                let topology = Arc::new(topology);
                cluster.set_topology(topology.clone())?;
                Some(topology)
            }
            None => None,
        };
        let meta = Arc::new(MetaRouter::open(
            MetaConfig::new(self.meta_backend).with_shards(self.meta_shards),
        )?);
        // Recovery half 1: reinstate the cluster's in-memory placements from
        // the recovered namespace (a fresh or ephemeral router yields
        // nothing here). Placements are validated against the configured
        // code — a durable directory from a different deployment must not
        // silently half-work.
        let mut recovered: Vec<(StripeId, Vec<NodeId>)> = Vec::new();
        meta.for_each_stripe(|s| recovered.push((s.id, s.locations.clone())));
        for (id, placement) in recovered {
            if placement.len() != code.n() {
                return Err(EcPipeError::InvalidRequest {
                    reason: format!(
                        "recovered stripe {} has {} blocks but the configured code has n = {}",
                        id.0,
                        placement.len(),
                        code.n()
                    ),
                });
            }
            cluster.restore_placement(id, placement);
        }
        let coordinator = Coordinator::with_meta(code.clone(), layout, meta.clone());
        let mut config = self.manager;
        // The data path depends on repaired blocks being findable again and
        // on node failures being recoverable without extra wiring.
        config.relocate_on_success = true;
        if config.auto_requestors.is_empty() {
            config.auto_requestors = (0..nodes).collect();
        }
        // A flat rate limit takes precedence over topology shaping: an
        // explicit `rate_limit` call is the stronger signal of intent.
        let transport = match (self.transport, self.rate_limit, &topology) {
            (TransportChoice::Channel, Some(rate), _) => {
                AnyTransport::from(ChannelTransport::with_rate_limit(rate))
            }
            (TransportChoice::Channel, None, Some(topology)) => {
                AnyTransport::from(ChannelTransport::with_topology(topology.clone()))
            }
            (TransportChoice::Channel, None, None) => AnyTransport::from(ChannelTransport::new()),
            (TransportChoice::Tcp, Some(rate), _) => {
                AnyTransport::from(TcpTransport::with_rate_limit(rate))
            }
            (TransportChoice::Tcp, None, Some(topology)) => {
                AnyTransport::from(TcpTransport::with_topology(topology.clone()))
            }
            (TransportChoice::Tcp, None, None) => AnyTransport::from(TcpTransport::new()),
            (TransportChoice::Reactor, Some(rate), _) => {
                AnyTransport::from(ReactorTransport::with_rate_limit(rate))
            }
            (TransportChoice::Reactor, None, Some(topology)) => {
                AnyTransport::from(ReactorTransport::with_topology(topology.clone()))
            }
            (TransportChoice::Reactor, None, None) => AnyTransport::from(ReactorTransport::new()),
        };
        let manager = RepairManager::start(coordinator, cluster, transport, config);
        // Recovery half 2: re-drive the repairs a previous process had
        // queued or in flight. A directive whose epoch trails its stripe's
        // current epoch is *stale* — the block relocated after the
        // directive was journaled (typically: the repair completed and
        // crashed before resolving) — and is rejected here instead of
        // double-healing; rejection resolves its record.
        for pending in meta.pending_repairs() {
            let current = meta.epoch_of(pending.stripe);
            let fresh = matches!(current, Ok(epoch) if epoch == pending.epoch);
            if fresh {
                let _ = manager.enqueue(RepairRequest {
                    stripe: pending.stripe,
                    failed: pending.index,
                    requestor: pending.requestor,
                    priority: RepairPriority::from_tag(pending.priority),
                });
            } else {
                let _ = meta.resolve_repair(pending.stripe, pending.index);
            }
        }
        Ok(EcPipe {
            manager,
            code,
            layout,
        })
    }
}

/// The number of `k`-block stripes an object of `len` bytes occupies (at
/// least one — an empty object still owns an all-zero stripe).
pub fn stripe_count(len: usize, k: usize, block_size: usize) -> usize {
    len.div_ceil(k * block_size).max(1)
}

/// The `k` data blocks of stripe `index` of an object, zero-padded to
/// `block_size`. Chunking one stripe at a time keeps a large `put`'s peak
/// memory at the object plus a single stripe.
pub fn chunk_stripe(data: &[u8], k: usize, block_size: usize, index: usize) -> Vec<Vec<u8>> {
    let stripe_bytes = k * block_size;
    (0..k)
        .map(|b| {
            let start = index * stripe_bytes + b * block_size;
            let end = (start + block_size).min(data.len());
            let mut block = if start < data.len() {
                data[start..end].to_vec()
            } else {
                Vec::new()
            };
            block.resize(block_size, 0);
            block
        })
        .collect()
}

/// Splits object bytes into per-stripe block groups: `k` blocks of
/// `block_size` per stripe, the tail zero-padded. Shared by the façade's
/// [`EcPipe::put`] and the `dfs` crate's `SimulatedDfs::write_file`, so the
/// runtime and simulation write paths cannot drift apart.
pub fn chunk_into_stripes(data: &[u8], k: usize, block_size: usize) -> Vec<Vec<Vec<u8>>> {
    (0..stripe_count(data.len(), k, block_size))
        .map(|s| chunk_stripe(data, k, block_size, s))
        .collect()
}

/// The ECPipe runtime handle: an erasure-coded object store whose reads
/// transparently repair around missing and corrupt blocks.
///
/// Built by [`EcPipeBuilder`]; owns the cluster, coordinator, transport and
/// the [`RepairManager`] daemon. All methods take `&self`, so one handle can
/// be shared across client threads.
pub struct EcPipe {
    manager: RepairManager<AnyTransport>,
    /// The erasure code, cached so the hot read/write paths never take the
    /// coordinator lock just to learn `n`/`k` (immutable after build).
    code: Arc<dyn ErasureCode>,
    /// The block/slice layout, cached for the same reason.
    layout: SliceLayout,
}

impl EcPipe {
    /// How many read attempts `get`/`get_range` make on one block before
    /// giving up: the native read plus up to two heal-and-retry rounds.
    const READ_ATTEMPTS: usize = 3;

    /// Encodes `data` into one or more stripes, places the blocks across
    /// the nodes (skipping nodes known dead), and registers the object.
    ///
    /// The expensive work — erasure encoding and writing `n` blocks per
    /// stripe — runs *outside* the coordinator lock, so repairs keep
    /// planning and other clients keep reading while a large object lands;
    /// the lock is taken only to reserve stripe ids and to publish the
    /// metadata at the end.
    ///
    /// Fails with [`EcPipeError::InvalidRequest`] if an object of this name
    /// already exists.
    pub fn put(&self, name: &str, data: &[u8]) -> Result<ObjectMeta> {
        let (n, k) = (self.code.n(), self.code.k());
        let nodes = self.cluster().num_nodes();
        let live: Vec<NodeId> = (0..nodes)
            .filter(|&node| self.manager.node_health(node) != NodeHealth::Dead)
            .collect();
        if live.len() < n {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("only {} live nodes, a stripe needs {n}", live.len()),
            });
        }
        let block_size = self.layout.block_size;
        let count = stripe_count(data.len(), k, block_size);
        // Reserve stripe ids under the lock; encode and write without it,
        // one stripe at a time so peak memory stays at object + stripe.
        let ids = self.manager.with_coordinator(|c| {
            if c.has_object(name) {
                return Err(EcPipeError::InvalidRequest {
                    reason: format!("object {name} already exists"),
                });
            }
            Ok((0..count)
                .map(|_| c.allocate_stripe_id())
                .collect::<Vec<u64>>())
        })?;
        let mut stripes = Vec::with_capacity(count);
        for (s, id) in ids.into_iter().enumerate() {
            let blocks = chunk_stripe(data, k, block_size, s);
            let placement: Vec<NodeId> = (0..n)
                .map(|i| live[(id as usize + i) % live.len()])
                .collect();
            match self
                .cluster()
                .write_stripe_blocks(&self.code, id, &blocks, placement)
            {
                Ok(stripe) => stripes.push(stripe),
                Err(error) => {
                    // Roll back: stripes written so far are unregistered and
                    // would otherwise leak storage forever (the failed
                    // stripe cleans itself up in `write_stripe_blocks`).
                    for &stripe in &stripes {
                        self.cluster().delete_stripe(stripe);
                    }
                    return Err(error);
                }
            }
        }
        let meta = ObjectMeta {
            name: name.to_string(),
            size: data.len(),
            stripes: stripes.clone(),
        };
        // Publish: register the stripes and the object in one critical
        // section. A concurrent put of the same name loses the race and is
        // rolled back.
        let published = self.manager.with_coordinator(|c| {
            if c.has_object(name) {
                return false;
            }
            for &stripe in &stripes {
                let placement = self
                    .cluster()
                    .placement(stripe)
                    .expect("placement was just written");
                c.register_stripe(stripe, placement);
            }
            c.register_object(meta.clone());
            true
        });
        if !published {
            for &stripe in &stripes {
                self.cluster().delete_stripe(stripe);
            }
            return Err(EcPipeError::InvalidRequest {
                reason: format!("object {name} already exists"),
            });
        }
        Ok(meta)
    }

    /// Reads a whole object back, byte-exact. Missing or corrupt blocks are
    /// healed through the repair manager on the way.
    pub fn get(&self, name: &str) -> Result<Vec<u8>> {
        let meta = self.object_meta(name)?;
        let range = 0..meta.size;
        self.read_object_range(&meta, range)
    }

    /// Reads `range` of an object. Only the blocks the range overlaps are
    /// touched; a partial block is read at slice granularity (verifying only
    /// the checksum chunks the range covers). Missing or corrupt blocks are
    /// healed through the repair manager first.
    pub fn get_range(&self, name: &str, range: Range<usize>) -> Result<Vec<u8>> {
        let meta = self.object_meta(name)?;
        if range.start > range.end || range.end > meta.size {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "range {range:?} out of bounds for object {name} of {} bytes",
                    meta.size
                ),
            });
        }
        self.read_object_range(&meta, range)
    }

    /// The shared read path: walks the blocks `range` overlaps, using the
    /// cached code/layout so no coordinator lock is needed on a clean read.
    fn read_object_range(&self, meta: &ObjectMeta, range: Range<usize>) -> Result<Vec<u8>> {
        let block_size = self.layout.block_size;
        let stripe_bytes = self.code.k() * block_size;
        let mut out = Vec::with_capacity(range.end - range.start);
        let mut offset = range.start;
        while offset < range.end {
            let stripe = meta.stripes[offset / stripe_bytes];
            let block = (offset % stripe_bytes) / block_size;
            let within = offset % block_size;
            let take = (block_size - within).min(range.end - offset);
            let bytes = self.read_healing(stripe, block, within..within + take, block_size)?;
            out.extend_from_slice(&bytes);
            offset += take;
        }
        Ok(out)
    }

    /// Reads one block range, healing the block through the manager when it
    /// is missing or corrupt (up to [`Self::READ_ATTEMPTS`] attempts).
    fn read_healing(
        &self,
        stripe: StripeId,
        index: usize,
        range: Range<usize>,
        block_size: usize,
    ) -> Result<bytes::Bytes> {
        let block = ecc::stripe::BlockId { stripe, index };
        let whole_block = range.start == 0 && range.end == block_size;
        let read_from = |node: NodeId| {
            if whole_block {
                // Whole-block reads go through `get`, which verifies every
                // checksum chunk on a checksummed store.
                self.cluster().store(node).get(block)
            } else {
                self.cluster().store(node).get_range(block, range.clone())
            }
        };
        for attempt in 0..Self::READ_ATTEMPTS {
            let holder = self.cluster().node_of(stripe, index)?;
            match read_from(holder) {
                Ok(bytes) => return Ok(bytes),
                Err(EcPipeError::BlockNotFound { .. }) => {
                    // A repaired copy can sit on a node the placement
                    // cannot name (relocation is refused when it would
                    // co-locate two blocks of a stripe — certain when the
                    // cluster has no spare nodes). Serve such stray copies
                    // rather than repairing the block again and again.
                    if let Some(node) = self.cluster().find_block(block) {
                        if let Ok(bytes) = read_from(node) {
                            return Ok(bytes);
                        }
                    }
                    if attempt + 1 == Self::READ_ATTEMPTS {
                        return Err(EcPipeError::BlockNotFound { block });
                    }
                    self.heal(stripe, index, false)?;
                }
                Err(error @ EcPipeError::CorruptBlock { .. }) => {
                    if attempt + 1 == Self::READ_ATTEMPTS {
                        return Err(error);
                    }
                    self.heal(stripe, index, true)?;
                }
                Err(error) => return Err(error),
            }
        }
        unreachable!("the read loop returns before running off its attempts")
    }

    /// Enqueues a degraded read for one block and waits for that block (and
    /// only that block) to leave the repair queue. If the block is already
    /// queued at a lower priority (corruption or background recovery), the
    /// queued request is promoted to the degraded class — a client is
    /// blocked on it now.
    ///
    /// A corrupt block is healed in place — the node serving the rot gets
    /// the reconstruction, overwriting the bad bytes and refreshing the
    /// checksums. A missing block is rebuilt onto its recorded holder when
    /// that node is live (an erased block on a healthy node), otherwise onto
    /// a live node holding nothing of the stripe.
    fn heal(&self, stripe: StripeId, index: usize, in_place: bool) -> Result<()> {
        let holder = self.cluster().node_of(stripe, index)?;
        let requestor = if in_place || self.manager.node_health(holder) != NodeHealth::Dead {
            holder
        } else {
            let placement = self.cluster().placement(stripe).unwrap_or_default();
            (0..self.cluster().num_nodes())
                .find(|n| {
                    self.manager.node_health(*n) != NodeHealth::Dead && !placement.contains(n)
                })
                .unwrap_or(holder)
        };
        // A client is blocked on these bytes right now, so this is a
        // degraded read regardless of what broke the block (§3.2); the
        // scrubber's background sweeps use `Corruption` priority instead.
        self.manager.degraded_read(stripe, index, requestor)?;
        self.manager.wait_for_block(stripe, index);
        Ok(())
    }

    /// Deletes an object: unregisters it, drops its stripes' metadata and
    /// erases their blocks. Repairs already queued for those stripes fail
    /// harmlessly (the stripe is gone) and show up in the shutdown report.
    pub fn delete(&self, name: &str) -> Result<ObjectMeta> {
        let meta = self.manager.with_coordinator(|c| {
            let meta = c
                .remove_object(name)
                .ok_or_else(|| EcPipeError::InvalidRequest {
                    reason: format!("no such object: {name}"),
                })?;
            for &stripe in &meta.stripes {
                c.forget_stripe(stripe);
            }
            Ok::<_, EcPipeError>(meta)
        })?;
        for &stripe in &meta.stripes {
            self.cluster().delete_stripe(stripe);
        }
        Ok(meta)
    }

    /// Metadata of a stored object.
    pub fn object_meta(&self, name: &str) -> Result<ObjectMeta> {
        self.manager.with_coordinator(|c| c.object(name))
    }

    /// All stored objects, ordered by name.
    pub fn objects(&self) -> Vec<ObjectMeta> {
        self.manager.with_coordinator(|c| c.objects())
    }

    // ------------------------------------------------------------------
    // Fault injection and observability passthroughs.
    // ------------------------------------------------------------------

    /// Deletes every block a node stores (a full node failure). Pair with
    /// [`report_node_failure`](Self::report_node_failure) to start
    /// background recovery; an unreported kill is discovered by liveness
    /// strikes or the degraded reads of later `get`s.
    pub fn kill_node(&self, node: NodeId) -> Vec<ecc::stripe::BlockId> {
        self.cluster().kill_node(node)
    }

    /// Erases one block of a stripe (a lost or unavailable block). Returns
    /// whether the block was present.
    pub fn erase_block(&self, stripe: StripeId, index: usize) -> bool {
        self.cluster().erase_block(stripe, index)
    }

    /// Flips one byte of a stored block, leaving checksums stale (silent
    /// bit-rot; detectable only on checksummed backends).
    pub fn corrupt(&self, stripe: StripeId, index: usize, offset: usize) -> Result<()> {
        self.cluster().corrupt_block(stripe, index, offset)
    }

    /// Verifies one block's integrity on the node holding it.
    pub fn verify_block(&self, stripe: StripeId, index: usize) -> Result<()> {
        self.cluster().verify_block(stripe, index)
    }

    /// Declares a node dead and enqueues background recovery of every block
    /// it held. Returns the number of repairs queued.
    pub fn report_node_failure(&self, node: NodeId) -> usize {
        self.manager.report_node_failure(node)
    }

    /// The manager's current view of a node's health.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.manager.node_health(node)
    }

    /// Runs one synchronous scrub cycle over every live node's blocks.
    pub fn scrub(&self, config: &ScrubConfig) -> ScrubCycle {
        self.manager.scrub(config)
    }

    /// Starts a background scrubber thread.
    pub fn start_scrubber(&self, config: ScrubConfig) -> Scrubber {
        self.manager.start_scrubber(config)
    }

    /// Blocks until no repair is queued or in flight.
    pub fn wait_idle(&self) {
        self.manager.wait_idle();
    }

    /// Number of repairs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.manager.queued()
    }

    /// The cluster underneath (stores, placements).
    pub fn cluster(&self) -> &Cluster {
        self.manager.cluster()
    }

    /// The transport underneath (byte accounting).
    pub fn transport(&self) -> &AnyTransport {
        self.manager.transport()
    }

    /// The repair-manager daemon underneath, for lower-level orchestration
    /// (explicit priorities, liveness snapshots).
    pub fn manager(&self) -> &RepairManager<AnyTransport> {
        &self.manager
    }

    /// Runs `f` with exclusive access to the coordinator (stripe and object
    /// metadata, repair planning).
    pub fn with_coordinator<R>(&self, f: impl FnOnce(&mut Coordinator) -> R) -> R {
        self.manager.with_coordinator(f)
    }

    /// The metadata plane underneath: the sharded, WAL-durable namespace of
    /// objects, stripe placements and pending repair directives.
    pub fn meta(&self) -> Arc<MetaRouter> {
        self.manager.with_coordinator(|c| c.meta().clone())
    }

    /// Graceful shutdown: drains the repair queue, stops the workers and
    /// returns the run's [`ManagerReport`].
    pub fn shutdown(self) -> ManagerReport {
        self.manager.shutdown()
    }

    /// Simulated `kill -9`: stops the runtime *without* draining the repair
    /// queue or resolving journaled repair directives, as a process crash
    /// would. With a [`MetaBackend::durable`] backend and a persistent
    /// [`StoreBackend`], a subsequent [`EcPipeBuilder::build`] over the same
    /// directories recovers the namespace byte-exactly and re-drives the
    /// repairs this process abandoned (stale ones — whose block relocated
    /// before the crash — are rejected by the epoch check instead of being
    /// healed twice).
    pub fn simulate_crash(self) {
        self.manager.crash_stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    fn pattern(len: usize, seed: u64) -> Vec<u8> {
        (0..len)
            .map(|i| ((i as u64 * 31 + seed * 17 + 7) % 251) as u8)
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multi_stripe_unaligned() {
        let pipe = EcPipeBuilder::new()
            .code(6, 4)
            .block_size(4096)
            .slice_size(1024)
            .store(StoreBackend::memory(9))
            .build()
            .unwrap();
        // 2 full stripes plus a ragged tail.
        let data = pattern(2 * 4 * 4096 + 1234, 3);
        let meta = pipe.put("/obj", &data).unwrap();
        assert_eq!(meta.stripes.len(), 3);
        assert_eq!(pipe.get("/obj").unwrap(), data);
        // Range reads at awkward offsets.
        for range in [0..1, 4000..4200, 16000..17000, data.len() - 5..data.len()] {
            assert_eq!(pipe.get_range("/obj", range.clone()).unwrap(), &data[range]);
        }
        assert_eq!(pipe.objects().len(), 1);
        pipe.shutdown();
    }

    #[test]
    fn put_rejects_duplicates_and_get_rejects_unknown() {
        let pipe = EcPipeBuilder::new().build().unwrap();
        pipe.put("/a", &pattern(100, 1)).unwrap();
        assert!(pipe.put("/a", &pattern(100, 2)).is_err());
        assert!(pipe.get("/missing").is_err());
        assert!(pipe.get_range("/a", 50..200).is_err());
        pipe.shutdown();
    }

    #[test]
    fn delete_frees_the_name_and_the_blocks() {
        let pipe = EcPipeBuilder::new().build().unwrap();
        let data = pattern(100_000, 5);
        let meta = pipe.put("/tmp", &data).unwrap();
        let deleted = pipe.delete("/tmp").unwrap();
        assert_eq!(deleted.stripes, meta.stripes);
        assert!(pipe.get("/tmp").is_err());
        assert!(pipe.delete("/tmp").is_err());
        for &stripe in &meta.stripes {
            assert!(pipe.cluster().read_block(stripe, 0).is_err());
        }
        // The name and storage are reusable; stripe ids are not recycled.
        let again = pipe.put("/tmp", &data).unwrap();
        assert!(again.stripes.iter().all(|s| !meta.stripes.contains(s)));
        assert_eq!(pipe.get("/tmp").unwrap(), data);
        pipe.shutdown();
    }

    #[test]
    fn empty_object_roundtrips() {
        let pipe = EcPipeBuilder::new().build().unwrap();
        let meta = pipe.put("/empty", &[]).unwrap();
        assert_eq!(meta.size, 0);
        assert_eq!(meta.stripes.len(), 1);
        assert_eq!(pipe.get("/empty").unwrap(), Vec::<u8>::new());
        pipe.shutdown();
    }

    #[test]
    fn get_survives_an_erased_block() {
        let pipe = EcPipeBuilder::new()
            .block_size(4096)
            .slice_size(512)
            .store(StoreBackend::memory(8))
            .build()
            .unwrap();
        let data = pattern(4 * 4096, 9);
        let meta = pipe.put("/x", &data).unwrap();
        pipe.erase_block(meta.stripes[0], 1);
        assert_eq!(pipe.get("/x").unwrap(), data);
        // The heal wrote the block back; a second read is fully native.
        let bytes_after_heal = pipe.transport().total_bytes();
        assert_eq!(pipe.get("/x").unwrap(), data);
        assert_eq!(pipe.transport().total_bytes(), bytes_after_heal);
        let report = pipe.shutdown();
        assert_eq!(report.blocks_repaired, 1);
        assert_eq!(report.degraded_wait.count, 1);
    }

    #[test]
    fn builder_rejects_too_few_nodes() {
        assert!(EcPipeBuilder::new()
            .code(6, 4)
            .store(StoreBackend::memory(5))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_a_topology_smaller_than_the_cluster() {
        assert!(EcPipeBuilder::new()
            .code(6, 4)
            .store(StoreBackend::memory(8))
            .topology(Topology::flat(6, simnet::GBIT))
            .build()
            .is_err());
    }

    #[test]
    fn topology_and_weighted_policy_heal_byte_exact() {
        let pipe = EcPipeBuilder::new()
            .code(6, 4)
            .block_size(4096)
            .slice_size(512)
            .store(StoreBackend::memory(8))
            .topology(Topology::rack_based(&[4, 4], simnet::GBIT, simnet::GBIT))
            .path_policy(PathPolicy::Weighted)
            .build()
            .unwrap();
        let data = pattern(4 * 4096, 11);
        let meta = pipe.put("/w", &data).unwrap();
        pipe.erase_block(meta.stripes[0], 2);
        assert_eq!(pipe.get("/w").unwrap(), data);
        let report = pipe.shutdown();
        assert_eq!(report.blocks_repaired, 1);
        // The weighted planner stamped the chosen path and its bottleneck.
        let outcome = &report.outcomes[0];
        assert_eq!(outcome.path.len(), 4);
        assert!(outcome.bottleneck.is_some());
        assert_eq!(
            report.network_bytes,
            report.link_bytes.values().sum::<u64>()
        );
    }

    #[test]
    fn chunking_pads_and_tiles() {
        let chunks = chunk_into_stripes(&pattern(10, 0), 2, 4);
        // 10 bytes over (k=2, block=4) stripes: 2 stripes, last block padded.
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|s| s.len() == 2));
        assert!(chunks.iter().flatten().all(|b| b.len() == 4));
        assert_eq!(&chunks[1][0][..2], &pattern(10, 0)[8..10]);
        assert_eq!(&chunks[1][1], &[0u8; 4]);
        // Empty data still produces one (all-zero) stripe.
        assert_eq!(chunk_into_stripes(&[], 3, 8).len(), 1);
    }
}
