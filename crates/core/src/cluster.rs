//! A cluster of storage nodes with node-local block stores.
//!
//! [`Cluster`] is the piece of the storage system ECPipe sits next to: a set
//! of nodes, each with its own [`BlockStore`](crate::BlockStore), plus the
//! block placement of every stripe. It supports writing encoded stripes,
//! injecting failures (erasing blocks, killing nodes) and running repairs
//! through the ECPipe executor.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use ecc::stripe::{BlockId, StripeId};
use simnet::NodeId;

use crate::coordinator::SelectionPolicy;
use crate::exec::{self, ExecStrategy};
use crate::integrity::ChecksummedStore;
use crate::store::{BlockStore, MemoryStore};
use crate::transport::{ChannelTransport, Transport};
use crate::{Coordinator, EcPipeError, Result};

/// A cluster of storage nodes.
pub struct Cluster {
    stores: Vec<Arc<dyn BlockStore>>,
    placements: HashMap<StripeId, Vec<NodeId>>,
}

impl Cluster {
    /// Creates a cluster of `nodes` in-memory storage nodes.
    pub fn in_memory(nodes: usize) -> Self {
        Cluster {
            stores: (0..nodes)
                .map(|_| Arc::new(MemoryStore::new()) as Arc<dyn BlockStore>)
                .collect(),
            placements: HashMap::new(),
        }
    }

    /// Creates a cluster of `nodes` in-memory storage nodes whose stores
    /// verify per-chunk CRC-32 checksums on every read
    /// ([`ChecksummedStore`] over [`MemoryStore`]), so injected corruption
    /// ([`Cluster::corrupt_block`]) is detectable by reads and scrubbing.
    pub fn in_memory_checksummed(nodes: usize) -> Self {
        Cluster {
            stores: (0..nodes)
                .map(|_| Arc::new(ChecksummedStore::new(MemoryStore::new())) as Arc<dyn BlockStore>)
                .collect(),
            placements: HashMap::new(),
        }
    }

    /// Creates a cluster from explicit per-node stores (e.g. file-backed).
    pub fn from_stores(stores: Vec<Arc<dyn BlockStore>>) -> Self {
        Cluster {
            stores,
            placements: HashMap::new(),
        }
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    /// The block store of one node.
    pub fn store(&self, node: NodeId) -> &Arc<dyn BlockStore> {
        &self.stores[node]
    }

    /// The placement (block index to node) of a stripe.
    pub fn placement(&self, stripe: StripeId) -> Option<&Vec<NodeId>> {
        self.placements.get(&stripe)
    }

    /// Encodes `data` with the coordinator's code and writes the stripe with
    /// the default placement: block `i` goes to node `(stripe_id + i) mod
    /// num_nodes`.
    ///
    /// Returns the stripe id.
    pub fn write_stripe(
        &mut self,
        coordinator: &mut Coordinator,
        stripe_id: u64,
        data: &[Vec<u8>],
    ) -> Result<StripeId> {
        let n = coordinator.code().n();
        if self.num_nodes() < n {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("cluster has {} nodes, stripe needs {n}", self.num_nodes()),
            });
        }
        let placement: Vec<NodeId> = (0..n)
            .map(|i| (stripe_id as usize + i) % self.num_nodes())
            .collect();
        self.write_stripe_with_placement(coordinator, stripe_id, data, placement)
    }

    /// Encodes and writes a stripe with an explicit placement.
    pub fn write_stripe_with_placement(
        &mut self,
        coordinator: &mut Coordinator,
        stripe_id: u64,
        data: &[Vec<u8>],
        placement: Vec<NodeId>,
    ) -> Result<StripeId> {
        let code = coordinator.code().clone();
        if placement.len() != code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: "placement must assign a node to every coded block".to_string(),
            });
        }
        {
            let mut distinct = placement.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != placement.len() {
                return Err(EcPipeError::InvalidRequest {
                    reason: "a stripe's blocks must live on distinct nodes".to_string(),
                });
            }
        }
        let coded = code.encode(data)?;
        let id = StripeId(stripe_id);
        for (index, block) in coded.into_iter().enumerate() {
            let node = placement[index];
            self.stores[node].put(BlockId { stripe: id, index }, Bytes::from(block))?;
        }
        coordinator.register_stripe(id, placement.clone());
        self.placements.insert(id, placement);
        Ok(id)
    }

    /// Erases one block of a stripe (simulating a lost or unavailable block).
    /// Returns whether the block was present.
    pub fn erase_block(&self, stripe: StripeId, index: usize) -> bool {
        let Some(placement) = self.placements.get(&stripe) else {
            return false;
        };
        let node = placement[index];
        self.stores[node]
            .delete(BlockId { stripe, index })
            .unwrap_or(false)
    }

    /// Flips the byte at `offset` of one stored block without touching its
    /// integrity metadata (simulating silent bit-rot; see
    /// [`BlockStore::corrupt`]). On a checksummed store the corruption is
    /// detected by the next read or scrub; on a plain store it silently
    /// poisons whatever reads the block — which is exactly the failure mode
    /// the integrity layer exists to close.
    pub fn corrupt_block(&self, stripe: StripeId, index: usize, offset: usize) -> Result<()> {
        let placement = self
            .placements
            .get(&stripe)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        self.stores[placement[index]].corrupt(BlockId { stripe, index }, offset)
    }

    /// Verifies one block's integrity on the node its placement maps it to.
    pub fn verify_block(&self, stripe: StripeId, index: usize) -> Result<()> {
        let placement = self
            .placements
            .get(&stripe)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        self.stores[placement[index]].verify(BlockId { stripe, index })
    }

    /// Deletes every block stored on a node (simulating a full node failure).
    /// Returns the erased block ids.
    pub fn kill_node(&self, node: NodeId) -> Vec<BlockId> {
        let blocks = self.stores[node].list();
        for &b in &blocks {
            let _ = self.stores[node].delete(b);
        }
        blocks
    }

    /// Repairs one failed block of a stripe at `requestor` using the given
    /// execution strategy, writes the repaired block into the requestor's
    /// store, and returns its content.
    ///
    /// Slices move over a fresh in-process [`ChannelTransport`]; use
    /// [`Cluster::repair_over`] to run the same repair over another backend
    /// (e.g. TCP sockets).
    pub fn repair(
        &self,
        coordinator: &mut Coordinator,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        strategy: ExecStrategy,
    ) -> Result<Vec<u8>> {
        self.repair_over(
            coordinator,
            stripe,
            failed,
            requestor,
            strategy,
            &ChannelTransport::new(),
        )
    }

    /// Repairs one failed block over an explicit transport backend, writes
    /// the repaired block into the requestor's store, and returns its
    /// content.
    pub fn repair_over<T: Transport + ?Sized>(
        &self,
        coordinator: &mut Coordinator,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        strategy: ExecStrategy,
        transport: &T,
    ) -> Result<Vec<u8>> {
        let directive = coordinator.plan_single_repair(
            stripe,
            failed,
            requestor,
            &[],
            SelectionPolicy::CodeDefault,
        )?;
        let repaired = exec::execute_single(&directive, self, transport, strategy)?;
        self.stores[requestor].put(
            BlockId {
                stripe,
                index: failed,
            },
            Bytes::from(repaired.clone()),
        )?;
        Ok(repaired)
    }

    /// Reads a block from wherever its stripe placement says it lives.
    pub fn read_block(&self, stripe: StripeId, index: usize) -> Result<Bytes> {
        let placement = self
            .placements
            .get(&stripe)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        self.stores[placement[index]].get(BlockId { stripe, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::slice::SliceLayout;
    use ecc::ReedSolomon;

    fn setup() -> (Cluster, Coordinator, Vec<Vec<u8>>) {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let coordinator = Coordinator::new(code, SliceLayout::new(4096, 512));
        let cluster = Cluster::in_memory(8);
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 17 + 3) as u8; 4096]).collect();
        (cluster, coordinator, data)
    }

    #[test]
    fn write_stripe_places_blocks_on_distinct_nodes() {
        let (mut cluster, mut coordinator, data) = setup();
        let stripe = cluster.write_stripe(&mut coordinator, 5, &data).unwrap();
        let placement = cluster.placement(stripe).unwrap().clone();
        assert_eq!(placement.len(), 6);
        let mut sorted = placement.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        // Data blocks readable and identical to the input.
        for (i, block) in data.iter().enumerate() {
            assert_eq!(
                cluster.read_block(stripe, i).unwrap(),
                Bytes::from(block.clone())
            );
        }
    }

    #[test]
    fn erase_and_kill_remove_blocks() {
        let (mut cluster, mut coordinator, data) = setup();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        assert!(cluster.erase_block(stripe, 1));
        assert!(!cluster.erase_block(stripe, 1));
        assert!(cluster.read_block(stripe, 1).is_err());
        let node = cluster.placement(stripe).unwrap()[2];
        let erased = cluster.kill_node(node);
        assert!(erased.contains(&BlockId { stripe, index: 2 }));
    }

    #[test]
    fn checksummed_cluster_detects_injected_corruption() {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(4096, 512));
        let mut cluster = Cluster::in_memory_checksummed(8);
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 11 + 1) as u8; 4096]).collect();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        assert!(cluster.verify_block(stripe, 2).is_ok());
        cluster.corrupt_block(stripe, 2, 777).unwrap();
        assert!(matches!(
            cluster.verify_block(stripe, 2),
            Err(EcPipeError::CorruptBlock { .. })
        ));
        assert!(cluster.read_block(stripe, 2).is_err());
        assert!(cluster.corrupt_block(StripeId(9), 0, 0).is_err());
        // Repairing through the cluster overwrites the rot and re-checksums.
        let repaired = cluster
            .repair(
                &mut coordinator,
                stripe,
                2,
                cluster.placement(stripe).unwrap()[2],
                ExecStrategy::RepairPipelining,
            )
            .unwrap();
        assert_eq!(repaired, data[2]);
        assert!(cluster.verify_block(stripe, 2).is_ok());
    }

    #[test]
    fn rejects_duplicate_placement() {
        let (mut cluster, mut coordinator, data) = setup();
        let err =
            cluster.write_stripe_with_placement(&mut coordinator, 0, &data, vec![0, 1, 2, 3, 4, 4]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_small_cluster() {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(1024, 512));
        let mut cluster = Cluster::in_memory(3);
        let data: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 1024]).collect();
        assert!(cluster.write_stripe(&mut coordinator, 0, &data).is_err());
    }
}
