//! A cluster of storage nodes with node-local block stores.
//!
//! [`Cluster`] is the piece of the storage system ECPipe sits next to: a set
//! of nodes, each with its own [`BlockStore`](crate::BlockStore), plus the
//! block placement of every stripe. It supports writing encoded stripes,
//! injecting failures (erasing blocks, killing nodes) and running repairs
//! through the ECPipe executor.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use ecpipe_sync::RwLock;

use crate::lock_order;

use ecc::stripe::{BlockId, StripeId};
use simnet::{NodeId, Topology};

use ecc::ErasureCode;

use crate::coordinator::SelectionPolicy;
use crate::exec::{self, ExecStrategy};
use crate::store::{BlockStore, StoreBackend};
use crate::transport::{ChannelTransport, Transport};
use crate::{Coordinator, EcPipeError, Result};

/// A cluster of storage nodes.
///
/// Stripe placements live behind a lock, so stripes can be written through a
/// shared `&Cluster` — which is how the [`EcPipe`](crate::EcPipe) façade
/// keeps accepting `put`s while the repair manager owns the cluster.
pub struct Cluster {
    stores: Vec<Arc<dyn BlockStore>>,
    /// Lock class: `cluster.placements` ([`lock_order::CLUSTER_PLACEMENTS`]).
    placements: RwLock<HashMap<StripeId, Vec<NodeId>>>,
    /// The network topology the nodes live in, when one is modeled. Set
    /// before the cluster is handed to a manager and immutable afterwards;
    /// repair planning consults it for rack-aware and weighted path
    /// selection.
    topology: Option<Arc<Topology>>,
}

impl Cluster {
    /// Creates a cluster whose nodes store blocks as `backend` describes.
    pub fn new(backend: StoreBackend) -> Result<Self> {
        Ok(Cluster {
            stores: backend.build()?,
            placements: RwLock::new(&lock_order::CLUSTER_PLACEMENTS, HashMap::new()),
            topology: None,
        })
    }

    /// Attaches a network topology (racks, link bandwidths) to the cluster,
    /// enabling topology-aware repair planning
    /// ([`PathPolicy`](crate::manager::PathPolicy)). Must describe at least
    /// every node of the cluster. Call before handing the cluster to a
    /// manager — ownership moves there, so the topology is immutable for
    /// the manager's lifetime.
    pub fn set_topology(&mut self, topology: Arc<Topology>) -> Result<()> {
        if topology.num_nodes() < self.num_nodes() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "topology has {} nodes but the cluster has {}",
                    topology.num_nodes(),
                    self.num_nodes()
                ),
            });
        }
        self.topology = Some(topology);
        Ok(())
    }

    /// The attached network topology, if any.
    pub fn topology(&self) -> Option<&Arc<Topology>> {
        self.topology.as_ref()
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.stores.len()
    }

    /// The block store of one node.
    pub fn store(&self, node: NodeId) -> &Arc<dyn BlockStore> {
        &self.stores[node]
    }

    /// The placement (block index to node) of a stripe.
    pub fn placement(&self, stripe: StripeId) -> Option<Vec<NodeId>> {
        self.placements.read().get(&stripe).cloned()
    }

    /// Encodes `data` with the coordinator's code and writes the stripe with
    /// the default placement: block `i` goes to node `(stripe_id + i) mod
    /// num_nodes`.
    ///
    /// Returns the stripe id.
    pub fn write_stripe(
        &self,
        coordinator: &mut Coordinator,
        stripe_id: u64,
        data: &[Vec<u8>],
    ) -> Result<StripeId> {
        let n = coordinator.code().n();
        if self.num_nodes() < n {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("cluster has {} nodes, stripe needs {n}", self.num_nodes()),
            });
        }
        let placement: Vec<NodeId> = (0..n)
            .map(|i| (stripe_id as usize + i) % self.num_nodes())
            .collect();
        self.write_stripe_with_placement(coordinator, stripe_id, data, placement)
    }

    /// Encodes and writes a stripe with an explicit placement.
    pub fn write_stripe_with_placement(
        &self,
        coordinator: &mut Coordinator,
        stripe_id: u64,
        data: &[Vec<u8>],
        placement: Vec<NodeId>,
    ) -> Result<StripeId> {
        let code = coordinator.code().clone();
        let id = self.write_stripe_blocks(&code, stripe_id, data, placement.clone())?;
        coordinator.register_stripe(id, placement);
        Ok(id)
    }

    /// Encodes and writes a stripe's blocks *without* registering the stripe
    /// with a coordinator — the caller registers it afterwards. This lets
    /// [`EcPipe::put`](crate::EcPipe::put) run the expensive encode and the
    /// block writes outside the coordinator lock, so repairs keep planning
    /// while a large object is written.
    pub fn write_stripe_blocks(
        &self,
        code: &Arc<dyn ErasureCode>,
        stripe_id: u64,
        data: &[Vec<u8>],
        placement: Vec<NodeId>,
    ) -> Result<StripeId> {
        if placement.len() != code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: "placement must assign a node to every coded block".to_string(),
            });
        }
        {
            let mut distinct = placement.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != placement.len() {
                return Err(EcPipeError::InvalidRequest {
                    reason: "a stripe's blocks must live on distinct nodes".to_string(),
                });
            }
        }
        let coded = code.encode(data)?;
        let id = StripeId(stripe_id);
        for (index, block) in coded.into_iter().enumerate() {
            let node = placement[index];
            if let Err(error) =
                self.stores[node].put(BlockId { stripe: id, index }, Bytes::from(block))
            {
                // Clean up the blocks already written for this stripe — a
                // half-written, never-registered stripe would leak storage.
                for (i, &n) in placement.iter().enumerate().take(index) {
                    let _ = self.stores[n].delete(BlockId {
                        stripe: id,
                        index: i,
                    });
                }
                return Err(error);
            }
        }
        self.placements.write().insert(id, placement);
        Ok(id)
    }

    /// Updates the stored placement of one block (e.g. after a repair
    /// reconstructed it onto another node), keeping the cluster's view in
    /// step with [`Coordinator::relocate_block`]. Returns an error for an
    /// unknown stripe or an out-of-range index.
    pub fn relocate(&self, stripe: StripeId, index: usize, node: NodeId) -> Result<()> {
        let mut placements = self.placements.write();
        let placement = placements
            .get_mut(&stripe)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        if index >= placement.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("block index {index} out of range"),
            });
        }
        placement[index] = node;
        Ok(())
    }

    /// Reinstates a stripe's placement without writing any blocks — used
    /// when a durable metadata plane is reopened over stores whose blocks
    /// already exist on disk. The blocks themselves are not checked here; a
    /// missing one surfaces as a degraded read later.
    pub(crate) fn restore_placement(&self, stripe: StripeId, placement: Vec<NodeId>) {
        self.placements.write().insert(stripe, placement);
    }

    /// Deletes every block of a stripe and drops its placement (e.g. when
    /// the object owning the stripe is deleted). Returns whether the stripe
    /// was known.
    pub fn delete_stripe(&self, stripe: StripeId) -> bool {
        let Some(placement) = self.placements.write().remove(&stripe) else {
            return false;
        };
        for (index, &node) in placement.iter().enumerate() {
            let _ = self.stores[node].delete(BlockId { stripe, index });
        }
        true
    }

    /// Erases one block of a stripe (simulating a lost or unavailable block).
    /// Returns whether the block was present.
    pub fn erase_block(&self, stripe: StripeId, index: usize) -> bool {
        let Some(node) = self.placements.read().get(&stripe).map(|p| p[index]) else {
            return false;
        };
        self.stores[node]
            .delete(BlockId { stripe, index })
            .unwrap_or(false)
    }

    /// Flips the byte at `offset` of one stored block without touching its
    /// integrity metadata (simulating silent bit-rot; see
    /// [`BlockStore::corrupt`]). On a checksummed store the corruption is
    /// detected by the next read or scrub; on a plain store it silently
    /// poisons whatever reads the block — which is exactly the failure mode
    /// the integrity layer exists to close.
    pub fn corrupt_block(&self, stripe: StripeId, index: usize, offset: usize) -> Result<()> {
        let node = self.node_of(stripe, index)?;
        self.stores[node].corrupt(BlockId { stripe, index }, offset)
    }

    /// Verifies one block's integrity on the node its placement maps it to.
    pub fn verify_block(&self, stripe: StripeId, index: usize) -> Result<()> {
        let node = self.node_of(stripe, index)?;
        self.stores[node].verify(BlockId { stripe, index })
    }

    /// The node a block currently lives on, per the stored placement.
    pub fn node_of(&self, stripe: StripeId, index: usize) -> Result<NodeId> {
        let placements = self.placements.read();
        let placement = placements
            .get(&stripe)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        placement
            .get(index)
            .copied()
            .ok_or_else(|| EcPipeError::InvalidRequest {
                reason: format!("block index {index} out of range"),
            })
    }

    /// Scans every node's store for a copy of `block`, returning the first
    /// holder. A repaired block can land on a node the placement cannot
    /// name (the coordinator refuses to co-locate two blocks of a stripe);
    /// this finds such stray copies so reads can still serve them.
    pub fn find_block(&self, block: BlockId) -> Option<NodeId> {
        (0..self.stores.len()).find(|&n| self.stores[n].contains(block))
    }

    /// Deletes every block stored on a node (simulating a full node failure).
    /// Returns the erased block ids.
    pub fn kill_node(&self, node: NodeId) -> Vec<BlockId> {
        let blocks = self.stores[node].list();
        for &b in &blocks {
            let _ = self.stores[node].delete(b);
        }
        blocks
    }

    /// Repairs one failed block of a stripe at `requestor` using the given
    /// execution strategy, writes the repaired block into the requestor's
    /// store, and returns its content.
    ///
    /// Slices move over a fresh in-process [`ChannelTransport`]; use
    /// [`Cluster::repair_over`] to run the same repair over another backend
    /// (e.g. TCP sockets).
    pub fn repair(
        &self,
        coordinator: &mut Coordinator,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        strategy: ExecStrategy,
    ) -> Result<Vec<u8>> {
        self.repair_over(
            coordinator,
            stripe,
            failed,
            requestor,
            strategy,
            &ChannelTransport::new(),
        )
    }

    /// Repairs one failed block over an explicit transport backend, writes
    /// the repaired block into the requestor's store, and returns its
    /// content.
    pub fn repair_over<T: Transport + ?Sized>(
        &self,
        coordinator: &mut Coordinator,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        strategy: ExecStrategy,
        transport: &T,
    ) -> Result<Vec<u8>> {
        let directive = coordinator.plan_single_repair(
            stripe,
            failed,
            requestor,
            &[],
            SelectionPolicy::CodeDefault,
        )?;
        let repaired = exec::execute_single(&directive, self, transport, strategy)?;
        self.stores[requestor].put(
            BlockId {
                stripe,
                index: failed,
            },
            Bytes::from(repaired.clone()),
        )?;
        Ok(repaired)
    }

    /// Reads a block from wherever its stripe placement says it lives.
    pub fn read_block(&self, stripe: StripeId, index: usize) -> Result<Bytes> {
        let node = self.node_of(stripe, index)?;
        self.stores[node].get(BlockId { stripe, index })
    }

    /// Reads a byte range of a block from wherever its stripe placement says
    /// it lives. On a checksummed store only the chunks the range overlaps
    /// are verified, so the read stays proportional to the range.
    pub fn read_block_range(
        &self,
        stripe: StripeId,
        index: usize,
        range: std::ops::Range<usize>,
    ) -> Result<Bytes> {
        let node = self.node_of(stripe, index)?;
        self.stores[node].get_range(BlockId { stripe, index }, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::slice::SliceLayout;
    use ecc::ReedSolomon;

    fn setup() -> (Cluster, Coordinator, Vec<Vec<u8>>) {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let coordinator = Coordinator::new(code, SliceLayout::new(4096, 512));
        let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 17 + 3) as u8; 4096]).collect();
        (cluster, coordinator, data)
    }

    #[test]
    fn write_stripe_places_blocks_on_distinct_nodes() {
        let (cluster, mut coordinator, data) = setup();
        let stripe = cluster.write_stripe(&mut coordinator, 5, &data).unwrap();
        let placement = cluster.placement(stripe).unwrap();
        assert_eq!(placement.len(), 6);
        let mut sorted = placement.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        // Data blocks readable and identical to the input.
        for (i, block) in data.iter().enumerate() {
            assert_eq!(
                cluster.read_block(stripe, i).unwrap(),
                Bytes::from(block.clone())
            );
        }
    }

    #[test]
    fn erase_and_kill_remove_blocks() {
        let (cluster, mut coordinator, data) = setup();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        assert!(cluster.erase_block(stripe, 1));
        assert!(!cluster.erase_block(stripe, 1));
        assert!(cluster.read_block(stripe, 1).is_err());
        let node = cluster.placement(stripe).unwrap()[2];
        let erased = cluster.kill_node(node);
        assert!(erased.contains(&BlockId { stripe, index: 2 }));
    }

    #[test]
    fn relocate_updates_placement_view() {
        let (cluster, mut coordinator, data) = setup();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        let original = cluster.node_of(stripe, 1).unwrap();
        cluster.relocate(stripe, 1, 7).unwrap();
        assert_eq!(cluster.node_of(stripe, 1).unwrap(), 7);
        assert_ne!(original, 7);
        assert!(cluster.relocate(StripeId(99), 0, 0).is_err());
        assert!(cluster.relocate(stripe, 9, 0).is_err());
        assert!(cluster.node_of(StripeId(99), 0).is_err());
        assert!(cluster.node_of(stripe, 9).is_err());
    }

    #[test]
    fn backend_constructors_build_working_clusters() {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(4096, 512));
        let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 17 + 3) as u8; 4096]).collect();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        assert_eq!(cluster.read_block(stripe, 0).unwrap(), data[0]);
        let checksummed = Cluster::new(StoreBackend::memory_checksummed(3)).unwrap();
        assert_eq!(checksummed.num_nodes(), 3);
        let custom = Cluster::new(StoreBackend::custom(Vec::new())).unwrap();
        assert_eq!(custom.num_nodes(), 0);
    }

    #[test]
    fn checksummed_cluster_detects_injected_corruption() {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(4096, 512));
        let cluster = Cluster::new(StoreBackend::memory_checksummed(8)).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 11 + 1) as u8; 4096]).collect();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        assert!(cluster.verify_block(stripe, 2).is_ok());
        cluster.corrupt_block(stripe, 2, 777).unwrap();
        assert!(matches!(
            cluster.verify_block(stripe, 2),
            Err(EcPipeError::CorruptBlock { .. })
        ));
        assert!(cluster.read_block(stripe, 2).is_err());
        assert!(cluster.corrupt_block(StripeId(9), 0, 0).is_err());
        // Repairing through the cluster overwrites the rot and re-checksums.
        let repaired = cluster
            .repair(
                &mut coordinator,
                stripe,
                2,
                cluster.placement(stripe).unwrap()[2],
                ExecStrategy::RepairPipelining,
            )
            .unwrap();
        assert_eq!(repaired, data[2]);
        assert!(cluster.verify_block(stripe, 2).is_ok());
    }

    #[test]
    fn rejects_duplicate_placement() {
        let (cluster, mut coordinator, data) = setup();
        let err =
            cluster.write_stripe_with_placement(&mut coordinator, 0, &data, vec![0, 1, 2, 3, 4, 4]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_small_cluster() {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(1024, 512));
        let cluster = Cluster::new(StoreBackend::memory(3)).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 1024]).collect();
        assert!(cluster.write_stripe(&mut coordinator, 0, &data).is_err());
    }
}
