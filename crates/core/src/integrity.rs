//! End-to-end block integrity: per-chunk checksums and the
//! [`ChecksummedStore`] wrapper.
//!
//! The paper's repair path assumes helpers serve correct local bytes, but
//! every production system it integrates with (§5.2: HDFS-RAID, HDFS-3, QFS)
//! pairs each block file with per-chunk checksums, because silent bit-rot —
//! not whole-node death — drives much of real-world repair traffic. This
//! module supplies that layer:
//!
//! * [`crc32`] — the CRC-32 (IEEE) checksum used throughout;
//! * [`BlockChecksums`] — one checksum per fixed-size chunk of a block
//!   (default [`DEFAULT_CHUNK_SIZE`] bytes, mirroring HDFS's
//!   `io.bytes.per.checksum`), so a slice-granular [`get_range`] read can be
//!   verified by checking only the chunks it overlaps, never the whole
//!   block;
//! * [`ChecksummedStore`] — wraps any [`BlockStore`], records checksums on
//!   [`put`], verifies on [`get`]/[`get_range`], and surfaces mismatches as
//!   [`EcPipeError::CorruptBlock`]. Checksums live in memory; with
//!   [`ChecksummedStore::persistent`] (or
//!   [`FileStore::open_checksummed`](crate::FileStore::open_checksummed))
//!   they are also persisted as `<block>.crc` sidecar files next to the
//!   block files, HDFS-style, and survive a reopen.
//!
//! Corruption is *injected* through the
//! [`BlockStore::corrupt`] hook, which rewrites a byte while leaving the
//! recorded checksums stale — exactly what bit-rot looks like to a scrubber.
//! Detection and automatic repair are driven by the
//! [`manager`](crate::manager) scrubber, which walks stores, verifies
//! blocks, and enqueues corrupt ones as
//! [`RepairPriority::Corruption`](crate::RepairPriority) repairs.
//!
//! [`get`]: BlockStore::get
//! [`get_range`]: BlockStore::get_range
//! [`put`]: BlockStore::put

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use ecpipe_sync::RwLock;

use crate::lock_order;

use ecc::stripe::BlockId;

use crate::store::BlockStore;
use crate::{EcPipeError, Result};

/// Default checksum chunk size in bytes: one CRC-32 per 512-byte chunk,
/// matching HDFS's `io.bytes.per.checksum` default (~0.8% metadata
/// overhead).
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Magic + version prefix of a `.crc` sidecar file.
const SIDECAR_MAGIC: &[u8; 4] = b"ECC\x01";

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The integrity metadata of one block: its length and one CRC-32 per
/// fixed-size chunk (the last chunk may be shorter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockChecksums {
    chunk_size: usize,
    len: usize,
    sums: Vec<u32>,
}

impl BlockChecksums {
    /// Computes the checksums of `data` with the given chunk size.
    pub fn compute(data: &[u8], chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        BlockChecksums {
            chunk_size,
            len: data.len(),
            sums: data.chunks(chunk_size).map(crc32).collect(),
        }
    }

    /// The chunk size the checksums were computed with.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The length of the block the checksums describe.
    pub fn block_len(&self) -> usize {
        self.len
    }

    /// The number of checksum chunks.
    pub fn chunk_count(&self) -> usize {
        self.sums.len()
    }

    /// Verifies a whole block against the recorded checksums. Returns the
    /// index of the first failing chunk (a length mismatch counts as chunk
    /// 0: the block was truncated or grew behind the checksums' back).
    pub fn verify(&self, data: &[u8]) -> std::result::Result<(), usize> {
        if data.len() != self.len {
            return Err(0);
        }
        self.verify_chunks(data, 0)
    }

    /// Verifies a chunk-aligned slice starting at chunk `first_chunk`
    /// against the recorded checksums. Returns the index of the first
    /// failing chunk.
    pub fn verify_chunks(&self, data: &[u8], first_chunk: usize) -> std::result::Result<(), usize> {
        for (i, chunk) in data.chunks(self.chunk_size).enumerate() {
            let index = first_chunk + i;
            match self.sums.get(index) {
                Some(&sum) if sum == crc32(chunk) => {}
                _ => return Err(index),
            }
        }
        Ok(())
    }

    /// The chunk-aligned byte range covering `range`, clamped to the block
    /// length, plus the index of its first chunk. Verifying a sub-block read
    /// only needs the chunks this span covers — never the whole block.
    pub fn chunk_span(&self, range: &std::ops::Range<usize>) -> (std::ops::Range<usize>, usize) {
        let first_chunk = range.start / self.chunk_size;
        let start = first_chunk * self.chunk_size;
        let end = range.end.div_ceil(self.chunk_size) * self.chunk_size;
        (start..end.min(self.len), first_chunk)
    }

    /// Serializes the checksums into the `.crc` sidecar format: a 4-byte
    /// magic/version, the chunk size and block length, then one
    /// little-endian `u32` per chunk.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 8 + 4 * self.sums.len());
        out.extend_from_slice(SIDECAR_MAGIC);
        out.extend_from_slice(&(self.chunk_size as u64).to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for sum in &self.sums {
            out.extend_from_slice(&sum.to_le_bytes());
        }
        out
    }

    /// Parses a `.crc` sidecar. Returns `None` for a foreign, truncated or
    /// internally inconsistent file (the caller treats that as "no recorded
    /// checksums" and recomputes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let rest = bytes.strip_prefix(SIDECAR_MAGIC.as_slice())?;
        if rest.len() < 16 {
            return None;
        }
        let chunk_size = u64::from_le_bytes(rest[0..8].try_into().ok()?) as usize;
        let len = u64::from_le_bytes(rest[8..16].try_into().ok()?) as usize;
        if chunk_size == 0 {
            return None;
        }
        let body = &rest[16..];
        if body.len() % 4 != 0 || body.len() / 4 != len.div_ceil(chunk_size) {
            return None;
        }
        let sums = body
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(BlockChecksums {
            chunk_size,
            len,
            sums,
        })
    }
}

/// A [`BlockStore`] wrapper that pairs every block with per-chunk CRC-32
/// checksums and verifies them on every read.
///
/// * [`put`](BlockStore::put) computes and records the checksums;
/// * [`get`](BlockStore::get) verifies every chunk;
/// * [`get_range`](BlockStore::get_range) verifies only the chunks the
///   requested range overlaps (a slice-granular read never pays a
///   whole-block hash);
/// * a mismatch surfaces as [`EcPipeError::CorruptBlock`];
/// * [`corrupt`](BlockStore::corrupt) flips a stored byte *without*
///   refreshing the checksums — the test hook that makes injected bit-rot
///   detectable.
///
/// Checksums are held in memory; [`ChecksummedStore::persistent`] also
/// writes them as `<block>.crc` sidecar files (reloaded lazily after a
/// reopen). A block present in the inner store with no recorded checksums —
/// e.g. written before the wrapper existed — is *adopted* on its first
/// whole-block read: its current content is assumed good and checksummed
/// from then on, which is how production scrubbers bootstrap over legacy
/// data.
///
/// ```
/// use bytes::Bytes;
/// use ecc::stripe::BlockId;
/// use ecpipe::{BlockStore, ChecksummedStore, EcPipeError, MemoryStore};
///
/// let store = ChecksummedStore::new(MemoryStore::new());
/// let block = BlockId::new(0, 1);
/// store.put(block, Bytes::from(vec![7u8; 4096])).unwrap();
/// assert!(store.verify(block).is_ok());
///
/// // Inject bit-rot: the stored bytes change, the checksums do not.
/// store.corrupt(block, 1000).unwrap();
/// assert!(matches!(
///     store.get(block),
///     Err(EcPipeError::CorruptBlock { chunk: 1, .. })
/// ));
/// // A slice read that misses the rotten chunk still verifies clean.
/// assert!(store.get_range(block, 0..512).is_ok());
/// ```
#[derive(Debug)]
pub struct ChecksummedStore<S: BlockStore> {
    inner: S,
    chunk_size: usize,
    /// Lock class: `store.checksums` ([`lock_order::STORE_CHECKSUMS`]).
    sums: RwLock<HashMap<BlockId, Arc<BlockChecksums>>>,
    sidecar_dir: Option<PathBuf>,
}

impl<S: BlockStore> ChecksummedStore<S> {
    /// Wraps `inner` with in-memory checksums at [`DEFAULT_CHUNK_SIZE`].
    pub fn new(inner: S) -> Self {
        ChecksummedStore::with_chunk_size(inner, DEFAULT_CHUNK_SIZE)
    }

    /// Wraps `inner` with in-memory checksums over `chunk_size`-byte chunks.
    pub fn with_chunk_size(inner: S, chunk_size: usize) -> Self {
        ChecksummedStore {
            inner,
            chunk_size: chunk_size.max(1),
            sums: RwLock::new(&lock_order::STORE_CHECKSUMS, HashMap::new()),
            sidecar_dir: None,
        }
    }

    /// Wraps `inner` and persists checksums as `<block>.crc` sidecar files
    /// under `dir` (created if needed). Sidecars written by an earlier
    /// incarnation are reloaded lazily, so integrity metadata survives a
    /// process restart the way HDFS/QFS checksum files do.
    pub fn persistent(inner: S, dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(ChecksummedStore {
            inner,
            chunk_size: DEFAULT_CHUNK_SIZE,
            sums: RwLock::new(&lock_order::STORE_CHECKSUMS, HashMap::new()),
            sidecar_dir: Some(dir),
        })
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The checksum chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Verifies every stored block and returns the ids that failed, in
    /// order. This is the store-level primitive behind the manager's
    /// scrubber.
    pub fn verify_all(&self) -> Vec<BlockId> {
        self.list()
            .into_iter()
            .filter(|&block| matches!(self.verify(block), Err(EcPipeError::CorruptBlock { .. })))
            .collect()
    }

    fn sidecar_path(&self, block: BlockId) -> Option<PathBuf> {
        self.sidecar_dir
            .as_ref()
            .map(|d| d.join(format!("{block}.crc")))
    }

    /// The recorded checksums of `block`, reloading a persisted sidecar on a
    /// memory miss. Returns a shared handle — the helper hot path calls this
    /// per slice read, so the checksum vector is never copied.
    fn checksums(&self, block: BlockId) -> Option<Arc<BlockChecksums>> {
        if let Some(sums) = self.sums.read().get(&block) {
            return Some(sums.clone());
        }
        let path = self.sidecar_path(block)?;
        let loaded = Arc::new(BlockChecksums::from_bytes(&std::fs::read(path).ok()?)?);
        self.sums.write().insert(block, loaded.clone());
        Some(loaded)
    }

    /// Records checksums in memory and (when persistent) on disk.
    fn record(&self, block: BlockId, sums: BlockChecksums) -> Result<()> {
        if let Some(path) = self.sidecar_path(block) {
            std::fs::write(path, sums.to_bytes())?;
        }
        self.sums.write().insert(block, Arc::new(sums));
        Ok(())
    }

    fn forget(&self, block: BlockId) {
        self.sums.write().remove(&block);
        if let Some(path) = self.sidecar_path(block) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Adopts a block that has no recorded checksums: its current content is
    /// taken as the good copy.
    fn adopt(&self, block: BlockId, data: &[u8]) -> Result<()> {
        self.record(block, BlockChecksums::compute(data, self.chunk_size))
    }
}

impl<S: BlockStore> BlockStore for ChecksummedStore<S> {
    fn get(&self, block: BlockId) -> Result<Bytes> {
        let data = self.inner.get(block)?;
        match self.checksums(block) {
            Some(sums) => match sums.verify(&data) {
                Ok(()) => Ok(data),
                Err(chunk) => Err(EcPipeError::CorruptBlock { block, chunk }),
            },
            None => {
                self.adopt(block, &data)?;
                Ok(data)
            }
        }
    }

    fn get_range(&self, block: BlockId, range: std::ops::Range<usize>) -> Result<Bytes> {
        let Some(sums) = self.checksums(block) else {
            // No recorded checksums to verify against; serve the raw range.
            // (All writes through this wrapper record checksums, so this
            // only happens for legacy blocks that were never whole-read.)
            return self.inner.get_range(block, range);
        };
        if range.end > sums.block_len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!(
                    "range {range:?} out of bounds for block {block} of {} bytes",
                    sums.block_len()
                ),
            });
        }
        // Read and verify only the chunk-aligned span covering the range —
        // slice reads stay O(slice), not O(block).
        let (span, first_chunk) = sums.chunk_span(&range);
        let aligned = match self.inner.get_range(block, span.clone()) {
            Ok(aligned) => aligned,
            // The recorded checksums say these bytes exist; an inner store
            // that cannot serve them holds a *truncated* block — that is
            // corruption, not a bad request, so it must take the same
            // re-plan-and-heal path a flipped byte does.
            Err(EcPipeError::InvalidRequest { .. }) => {
                return Err(EcPipeError::CorruptBlock {
                    block,
                    chunk: first_chunk,
                })
            }
            Err(e) => return Err(e),
        };
        if let Err(chunk) = sums.verify_chunks(&aligned, first_chunk) {
            return Err(EcPipeError::CorruptBlock { block, chunk });
        }
        Ok(aligned.slice(range.start - span.start..range.end - span.start))
    }

    fn put(&self, block: BlockId, data: Bytes) -> Result<()> {
        let sums = BlockChecksums::compute(&data, self.chunk_size);
        self.inner.put(block, data)?;
        self.record(block, sums)
    }

    fn delete(&self, block: BlockId) -> Result<bool> {
        let existed = self.inner.delete(block)?;
        self.forget(block);
        Ok(existed)
    }

    fn contains(&self, block: BlockId) -> bool {
        self.inner.contains(block)
    }

    fn list(&self) -> Vec<BlockId> {
        self.inner.list()
    }

    fn verify(&self, block: BlockId) -> Result<()> {
        self.get(block).map(|_| ())
    }

    fn corrupt(&self, block: BlockId, offset: usize) -> Result<()> {
        // Flip the byte *through the inner store* so this wrapper's
        // recorded checksums go stale — that is what bit-rot looks like.
        self.inner.corrupt(block, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FileStore, MemoryStore};

    fn block(s: u64, i: usize) -> BlockId {
        BlockId::new(s, i)
    }

    #[test]
    fn crc32_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksums_verify_and_localize_corruption() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let sums = BlockChecksums::compute(&data, 512);
        assert_eq!(sums.chunk_count(), 4);
        assert_eq!(sums.block_len(), 2000);
        assert!(sums.verify(&data).is_ok());
        let mut rotten = data.clone();
        rotten[1500] ^= 0x01;
        assert_eq!(sums.verify(&rotten), Err(2));
        assert_eq!(sums.verify(&data[..1999]), Err(0), "truncation is corrupt");
    }

    #[test]
    fn chunk_span_covers_and_clamps() {
        let sums = BlockChecksums::compute(&vec![0u8; 2000], 512);
        assert_eq!(sums.chunk_span(&(0..512)), (0..512, 0));
        assert_eq!(sums.chunk_span(&(100..600)), (0..1024, 0));
        assert_eq!(sums.chunk_span(&(1600..2000)), (1536..2000, 3));
    }

    #[test]
    fn sidecar_roundtrip_and_rejects_garbage() {
        let sums = BlockChecksums::compute(&vec![3u8; 1300], 512);
        let encoded = sums.to_bytes();
        assert_eq!(BlockChecksums::from_bytes(&encoded), Some(sums));
        assert_eq!(BlockChecksums::from_bytes(b"not a sidecar"), None);
        assert_eq!(BlockChecksums::from_bytes(&encoded[..10]), None);
        // A sidecar whose sum count disagrees with its length is rejected.
        let mut short = encoded.clone();
        short.truncate(encoded.len() - 4);
        assert_eq!(BlockChecksums::from_bytes(&short), None);
    }

    #[test]
    fn get_detects_corruption_and_get_range_skips_clean_chunks() {
        let store = ChecksummedStore::new(MemoryStore::new());
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        store.put(block(1, 0), Bytes::from(data.clone())).unwrap();
        assert_eq!(store.get(block(1, 0)).unwrap(), data);
        store.corrupt(block(1, 0), 2048).unwrap();
        assert!(matches!(
            store.get(block(1, 0)),
            Err(EcPipeError::CorruptBlock { chunk: 4, .. })
        ));
        assert!(matches!(
            store.verify(block(1, 0)),
            Err(EcPipeError::CorruptBlock { .. })
        ));
        // Ranges that miss chunk 4 verify clean; ranges that touch it fail.
        assert_eq!(store.get_range(block(1, 0), 0..2048).unwrap(), data[..2048]);
        assert_eq!(
            store.get_range(block(1, 0), 2560..4096).unwrap(),
            data[2560..]
        );
        assert!(store.get_range(block(1, 0), 2000..2100).is_err());
        assert_eq!(store.verify_all(), vec![block(1, 0)]);
        // A rewrite refreshes the checksums and heals the block.
        store.put(block(1, 0), Bytes::from(data.clone())).unwrap();
        assert!(store.verify(block(1, 0)).is_ok());
        assert!(store.verify_all().is_empty());
    }

    #[test]
    fn truncation_is_corruption_for_whole_and_range_reads() {
        let store = ChecksummedStore::new(MemoryStore::new());
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        store.put(block(5, 0), Bytes::from(data.clone())).unwrap();
        // Truncate behind the wrapper's back (a torn write / lost tail).
        store
            .inner()
            .put(block(5, 0), Bytes::from(data[..1000].to_vec()))
            .unwrap();
        assert!(matches!(
            store.get(block(5, 0)),
            Err(EcPipeError::CorruptBlock { chunk: 0, .. })
        ));
        // A range the recorded length covers but the truncated block cannot
        // serve is corruption too — it must take the re-plan/heal path, not
        // fail as a bad request.
        assert!(matches!(
            store.get_range(block(5, 0), 2048..2560),
            Err(EcPipeError::CorruptBlock { chunk: 4, .. })
        ));
        // Asking past the recorded length is still the caller's error.
        assert!(matches!(
            store.get_range(block(5, 0), 4000..5000),
            Err(EcPipeError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn unknown_blocks_are_adopted_on_first_read() {
        let inner = MemoryStore::new();
        inner.put(block(2, 1), Bytes::from(vec![9u8; 100])).unwrap();
        let store = ChecksummedStore::new(inner);
        // First read adopts the current content as the good copy...
        assert_eq!(store.get(block(2, 1)).unwrap().len(), 100);
        // ...after which corruption is detectable.
        store.corrupt(block(2, 1), 50).unwrap();
        assert!(matches!(
            store.get(block(2, 1)),
            Err(EcPipeError::CorruptBlock { .. })
        ));
    }

    #[test]
    fn out_of_bounds_requests_error_cleanly() {
        let store = ChecksummedStore::new(MemoryStore::new());
        store.put(block(3, 0), Bytes::from(vec![1u8; 64])).unwrap();
        assert!(matches!(
            store.get_range(block(3, 0), 10..100),
            Err(EcPipeError::InvalidRequest { .. })
        ));
        assert!(matches!(
            store.corrupt(block(3, 0), 64),
            Err(EcPipeError::InvalidRequest { .. })
        ));
        assert!(matches!(
            store.get(block(9, 9)),
            Err(EcPipeError::BlockNotFound { .. })
        ));
    }

    #[test]
    fn persistent_checksums_survive_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "ecpipe-integrity-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 249) as u8).collect();
        {
            let store = ChecksummedStore::persistent(FileStore::open(&dir).unwrap(), &dir).unwrap();
            store.put(block(7, 2), Bytes::from(data.clone())).unwrap();
            assert!(store.verify(block(7, 2)).is_ok());
            // The sidecar sits next to the block file and is not a block.
            assert_eq!(store.list(), vec![block(7, 2)]);
        }
        // Tamper with the block file directly, then reopen: the reloaded
        // sidecar must convict the rotten byte.
        let path = dir.join(block(7, 2).to_string());
        let mut raw = std::fs::read(&path).unwrap();
        raw[300] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        {
            let store = ChecksummedStore::persistent(FileStore::open(&dir).unwrap(), &dir).unwrap();
            assert!(matches!(
                store.verify(block(7, 2)),
                Err(EcPipeError::CorruptBlock { .. })
            ));
            // Deleting the block removes the sidecar too.
            assert!(store.delete(block(7, 2)).unwrap());
            assert!(!dir.join(format!("{}.crc", block(7, 2))).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
