//! Pooled, reference-counted slice buffers.
//!
//! The repair executors allocate one partial-sum buffer per slice per
//! helper; at the paper's slice sizes (tens of KiB) and pipeline depths
//! that is thousands of short-lived allocations per repaired block. A
//! [`BufPool`] recycles them: [`BufPool::take`] hands out a zeroed
//! [`PooledBuf`] to accumulate into, [`PooledBuf::freeze`] turns it into an
//! immutable [`Bytes`] view that flows through transport framing and store
//! writes without copying, and when the last view drops, the underlying
//! allocation returns to the pool for the next slice.
//!
//! The pool is deliberately simple — a bounded free-list, not a slab with
//! size classes — because repair traffic is monoculture: within one repair
//! every buffer has the same slice (or bundle) size, so the head of the
//! free-list almost always fits and mismatched buffers are just resized in
//! place.

use std::sync::Arc;

use bytes::Bytes;
use ecpipe_sync::Mutex;

use crate::lock_order;

/// How many returned buffers a pool retains before letting extras drop.
/// One pipeline's worth of slices in flight plus headroom for the
/// requestor-side copies; beyond that, holding memory costs more than the
/// malloc it saves.
const DEFAULT_MAX_RETAINED: usize = 32;

struct PoolInner {
    /// Lock class: `buf.pool` ([`lock_order::BUF_POOL`]).
    free: Mutex<Vec<Vec<u8>>>,
    max_retained: usize,
}

/// A bounded free-list of slice buffers shared by the threads of a repair.
///
/// Cloning the pool is cheap (it is an `Arc` handle); every clone feeds the
/// same free-list.
///
/// ```
/// use ecpipe::BufPool;
///
/// let pool = BufPool::new();
/// let mut buf = pool.take(8);
/// buf.copy_from_slice(b"01234567");
/// let bytes = buf.freeze();
/// assert_eq!(&bytes[..], b"01234567");
/// drop(bytes); // allocation returns to the pool
/// assert_eq!(pool.retained(), 1);
/// ```
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl BufPool {
    /// Creates a pool retaining up to a small default number of buffers.
    pub fn new() -> Self {
        BufPool::with_max_retained(DEFAULT_MAX_RETAINED)
    }

    /// Creates a pool retaining at most `max_retained` returned buffers.
    pub fn with_max_retained(max_retained: usize) -> Self {
        BufPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(&lock_order::BUF_POOL, Vec::new()),
                max_retained,
            }),
        }
    }

    /// Takes a zero-filled buffer of exactly `len` bytes, reusing a
    /// previously returned allocation when one is available.
    pub fn take(&self, len: usize) -> PooledBuf {
        let recycled = self.inner.free.lock().pop();
        let data = match recycled {
            Some(mut vec) => {
                // Zero whatever prefix survives and extend with zeros; the
                // result is indistinguishable from a fresh `vec![0; len]`.
                vec.clear();
                vec.resize(len, 0);
                vec
            }
            None => vec![0u8; len],
        };
        PooledBuf {
            data,
            pool: Arc::clone(&self.inner),
        }
    }

    /// How many buffers are currently parked in the free-list.
    pub fn retained(&self) -> usize {
        self.inner.free.lock().len()
    }
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("retained", &self.retained())
            .field("max_retained", &self.inner.max_retained)
            .finish()
    }
}

/// A mutable buffer checked out of a [`BufPool`].
///
/// Dereferences to `[u8]` for in-place accumulation;
/// [`freeze`](PooledBuf::freeze) converts it into an immutable shared
/// [`Bytes`] without copying. Whether frozen or simply dropped, the
/// allocation returns to its pool once the last reference goes away.
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// Converts into an immutable [`Bytes`] view sharing this allocation.
    /// Clones and sub-slices of the result all reference the same memory;
    /// the buffer re-enters the pool when the last of them drops.
    pub fn freeze(self) -> Bytes {
        Bytes::from_owner(self)
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let vec = std::mem::take(&mut self.data);
        if vec.capacity() == 0 {
            return;
        }
        let mut free = self.pool.free.lock();
        if free.len() < self.pool.max_retained {
            free.push(vec);
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_through_freeze_and_drop() {
        let pool = BufPool::new();
        assert_eq!(pool.retained(), 0);

        let buf = pool.take(1024);
        let ptr = buf.as_ref().as_ptr() as usize;
        let bytes = buf.freeze();
        let view = bytes.slice(100..200);
        drop(bytes);
        assert_eq!(pool.retained(), 0, "a live view keeps the buffer out");
        drop(view);
        assert_eq!(pool.retained(), 1, "last view returns the buffer");

        // The next take reuses the same allocation.
        let again = pool.take(512);
        assert_eq!(again.as_ref().as_ptr() as usize, ptr);
        assert!(again.iter().all(|&b| b == 0), "recycled buffers are zeroed");
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn recycled_buffers_grow_and_are_fully_zeroed() {
        let pool = BufPool::new();
        let mut buf = pool.take(16);
        buf.copy_from_slice(&[0xAA; 16]);
        drop(buf);
        let grown = pool.take(64);
        assert_eq!(grown.len(), 64);
        assert!(grown.iter().all(|&b| b == 0), "no stale bytes survive");
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufPool::with_max_retained(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take(8)).collect();
        drop(bufs);
        assert_eq!(pool.retained(), 2);
    }

    #[test]
    fn freeze_then_slice_is_zero_copy() {
        let before = bytes::shim_metrics::deep_copy_bytes();
        let pool = BufPool::new();
        let mut buf = pool.take(4096);
        buf[0] = 7;
        let bytes = buf.freeze();
        let s = bytes.slice(0..1);
        assert_eq!(s[0], 7);
        assert_eq!(
            bytes::shim_metrics::deep_copy_bytes(),
            before,
            "take → freeze → slice must not deep-copy"
        );
    }
}
