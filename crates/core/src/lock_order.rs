//! The runtime's lock hierarchy.
//!
//! Every lock in this crate belongs to one of the classes below; ranks
//! strictly increase along every legal nesting path, so acquiring in
//! increasing-rank order is always safe and anything else panics in checked
//! builds (see `ecpipe-sync`). The table is mirrored in
//! docs/ARCHITECTURE.md ("Lock hierarchy"); `cargo run -p xtask -- lint`
//! rejects rank or name collisions workspace-wide.
//!
//! Conventions:
//!
//! * Outermost (longest-held, coarsest) classes get the lowest ranks; leaf
//!   classes that never hold anything else get the highest.
//! * Ranks are spaced by ~5 so a new class can slot between two existing
//!   ones without renumbering.
//! * A condition variable shares the class of the mutex it waits on; only
//!   the mutex is ranked.

use ecpipe_sync::lock_class;

lock_class!(
    /// [`Coordinator`](crate::Coordinator) metadata behind the manager's
    /// daemon mutex: stripe map, object namespace, helper-selection state.
    /// Outermost lock of the repair path — planning closures run under it
    /// and consult liveness and placements.
    pub COORDINATOR = ("manager.coordinator", rank = 10)
);

lock_class!(
    /// [`Cluster`](crate::Cluster) stripe→node placement map. Taken inside
    /// the coordinator lock on the put/publish path.
    pub CLUSTER_PLACEMENTS = ("cluster.placements", rank = 20)
);

lock_class!(
    /// `EngineState::scheduled` — keys of repairs queued or in flight;
    /// `wait_for` blocks on its condvar.
    pub ENGINE_SCHEDULED = ("engine.scheduled", rank = 30)
);

lock_class!(
    /// `EngineState::pending` — count of jobs submitted but not finished;
    /// `wait_idle` blocks on its condvar.
    pub ENGINE_PENDING = ("engine.pending", rank = 32)
);

lock_class!(
    /// `EngineState::first_error` — the first worker error, held briefly
    /// while aborting (which closes the queue, so it precedes
    /// [`MANAGER_QUEUE`] in rank).
    pub ENGINE_FIRST_ERROR = ("engine.first_error", rank = 34)
);

lock_class!(
    /// `RepairQueue` internals; `pop` blocks
    /// on its condvar.
    pub MANAGER_QUEUE = ("manager.queue", rank = 36)
);

lock_class!(
    /// `AdmissionGate` per-node in-flight counts; `acquire` blocks on its
    /// condvar and records metrics while counting, so this precedes
    /// [`MANAGER_METRICS`].
    pub MANAGER_GATE = ("manager.gate", rank = 40)
);

lock_class!(
    /// `MetricsCollector` counters.
    pub MANAGER_METRICS = ("manager.metrics", rank = 42)
);

lock_class!(
    /// `Liveness` per-node health map. Read by
    /// planning closures under the coordinator lock.
    pub MANAGER_LIVENESS = ("manager.liveness", rank = 44)
);

lock_class!(
    /// [`LinkTelemetry`](crate::telemetry::LinkTelemetry) per-pair EWMA
    /// throughput state. Consulted by planning closures under the
    /// coordinator lock; `observe` holds it while snapshotting transport
    /// counters, so it precedes [`TRANSPORT_STATS`].
    pub MANAGER_TELEMETRY = ("manager.telemetry", rank = 46)
);

lock_class!(
    /// Transport [`StatsRegistry`](crate::transport::StatsRegistry) link
    /// table.
    pub TRANSPORT_STATS = ("transport.stats", rank = 50)
);

lock_class!(
    /// Reactor transport listener table; held while binding and registering
    /// a listener with the reactor, so it precedes the reactor's dispatch
    /// table (`reactor.sources`, rank 55, declared in `ecpipe-reactor`).
    pub RTRANSPORT_LISTENERS = ("rtransport.listeners", rank = 51)
);

lock_class!(
    /// TCP transport listener table.
    pub TCP_LISTENERS = ("tcp.listeners", rank = 52)
);

lock_class!(
    /// Reactor transport connection table (outbound cache + accepted
    /// inbound); held while writing the handshake into per-connection state
    /// and while registering sockets with the reactor, so it precedes both
    /// [`RTRANSPORT_CONN`] and `reactor.sources` (rank 55).
    pub RTRANSPORT_CONNS = ("rtransport.conns", rank = 53)
);

lock_class!(
    /// TCP transport connection cache; held while writing the handshake
    /// frame, so it precedes [`TCP_WRITER`].
    pub TCP_CONNS = ("tcp.conns", rank = 54)
);

lock_class!(
    /// Live-link table shared by the socket transports; held while closing
    /// per-link state, so it precedes [`FRAMED_LINK_STATE`].
    pub FRAMED_LINKS = ("framed.links", rank = 56)
);

lock_class!(
    /// Connection→links index used for teardown, shared by the socket
    /// transports.
    pub FRAMED_CONN_LINKS = ("framed.conn_links", rank = 58)
);

lock_class!(
    /// Reactor transport per-connection buffers (outbound queue, inbound
    /// frame decoder). Senders take it after the credit gate releases
    /// [`FRAMED_LINK_STATE`], and the read path drains decoded frames under
    /// it before pushing into link queues — but teardown may close link
    /// state while a connection is being evicted, so it ranks just below
    /// [`FRAMED_LINK_STATE`].
    pub RTRANSPORT_CONN = ("rtransport.conn", rank = 59)
);

lock_class!(
    /// Per-link queue/credit state shared by the socket transports; senders
    /// and receivers block on its condvars.
    pub FRAMED_LINK_STATE = ("framed.link_state", rank = 60)
);

lock_class!(
    /// Reactor transport per-connection epoll registration slot. Interest
    /// re-arming decisions are made while holding the connection's buffer
    /// state, so this ranks above [`RTRANSPORT_CONN`] and
    /// [`FRAMED_LINK_STATE`].
    pub RTRANSPORT_CONN_REG = ("rtransport.conn_reg", rank = 61)
);

lock_class!(
    /// Per-connection socket writer.
    pub TCP_WRITER = ("tcp.writer", rank = 62)
);

lock_class!(
    /// Reader-thread join handles, taken at shutdown.
    pub TCP_READER_THREADS = ("tcp.reader_threads", rank = 64)
);

lock_class!(
    /// [`ChecksummedStore`](crate::ChecksummedStore) checksum cache. Leaf:
    /// never held across inner-store calls.
    pub STORE_CHECKSUMS = ("store.checksums", rank = 70)
);

lock_class!(
    /// [`MemoryStore`](crate::MemoryStore) block map. Leaf.
    pub STORE_MEMORY = ("store.memory", rank = 72)
);

lock_class!(
    /// [`BufPool`](crate::BufPool) free-list of recycled slice buffers.
    /// Leaf: taken for a push/pop only, with nothing held and holding
    /// nothing.
    pub BUF_POOL = ("buf.pool", rank = 76)
);

lock_class!(
    /// Transport `Shaper` bucket map (per-directed-pair token buckets under
    /// topology shaping). Taken while opening links and when re-rating a
    /// pair, which touches bucket state — so it precedes
    /// [`TRANSPORT_TOKEN_BUCKET`].
    pub TRANSPORT_SHAPER = ("transport.shaper", rank = 78)
);

lock_class!(
    /// Token-bucket rate-limiter state. Leaf; taken with nothing held.
    pub TRANSPORT_TOKEN_BUCKET = ("transport.token_bucket", rank = 80)
);
