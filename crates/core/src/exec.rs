//! Repair executors: real threads moving real bytes.
//!
//! Each strategy wires helper worker threads together with bounded channels
//! and runs the repair end to end against the cluster's block stores, so the
//! reconstructed block can be checked byte-for-byte against the erased one.
//!
//! * [`ExecStrategy::Conventional`] — every helper streams its whole block to
//!   the requestor, which performs the decoding combination (§2.2).
//! * [`ExecStrategy::Ppr`] — partial-parallel repair: helpers combine
//!   pairwise along a binary aggregation tree (§2.2).
//! * [`ExecStrategy::RepairPipelining`] — the paper's contribution: slices
//!   flow along the linear helper path, each helper adding `a_i * B_i` (§3.2).
//! * [`ExecStrategy::BlockPipeline`] — the `Pipe-B` baseline of §6.4: the
//!   same path but at whole-block granularity.
//!
//! The executors are generic over the [`Transport`] trait: the same
//! strategies run over in-process channels
//! ([`ChannelTransport`](crate::transport::ChannelTransport), no bandwidth
//! limits, used for correctness tests and throughput microbenches) or real
//! localhost sockets ([`TcpTransport`](crate::transport::TcpTransport),
//! optionally throttled so the §3.2 timing claims can be measured on the
//! wire). Timing-shape experiments at scale still run on the `simnet`
//! simulator.

use bytes::Bytes;
use ecpipe_sync::OnceFlag;
use gf256::Gf256;

use ecc::slice::SliceLayout;

use crate::buf::BufPool;
use crate::cluster::Cluster;
use crate::coordinator::{MultiRepairDirective, RepairDirective};
use crate::transport::{SliceMsg, Transport};
use crate::{EcPipeError, Result};

/// The number of slices that may be buffered between two pipeline stages.
/// Senders block (backpressure) once this many slices are in flight on one
/// link.
pub const PIPELINE_DEPTH: usize = 8;

/// How a single-block repair is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecStrategy {
    /// Requestor fetches all helper blocks and decodes locally.
    Conventional,
    /// Partial-parallel repair over a binary aggregation tree.
    Ppr,
    /// Slice-level repair pipelining along the helper path.
    RepairPipelining,
    /// Block-level pipelining along the helper path (`Pipe-B`).
    BlockPipeline,
}

impl ExecStrategy {
    /// A short label matching the paper's figures.
    #[deprecated(since = "0.2.0", note = "use the `Display` impl instead")]
    pub fn label(&self) -> &'static str {
        match self {
            ExecStrategy::Conventional => "Conv.",
            ExecStrategy::Ppr => "PPR",
            ExecStrategy::RepairPipelining => "RP",
            ExecStrategy::BlockPipeline => "Pipe-B",
        }
    }
}

impl std::fmt::Display for ExecStrategy {
    /// Formats as the short label used in the paper's figures (`Conv.`,
    /// `PPR`, `RP`, `Pipe-B`), so strategy names are uniform across reports
    /// and benches.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One string table: the deprecated alias keeps serving it until it
        // is removed. `pad` honors width/alignment options in table output.
        #[allow(deprecated)]
        f.pad(self.label())
    }
}

fn execution_error(reason: impl Into<String>) -> EcPipeError {
    EcPipeError::Execution {
        reason: reason.into(),
    }
}

/// Executes a single-block repair and returns the reconstructed block.
pub fn execute_single<T: Transport + ?Sized>(
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
    strategy: ExecStrategy,
) -> Result<Vec<u8>> {
    execute_single_cancellable(directive, cluster, transport, strategy, &OnceFlag::new())
}

/// [`execute_single`] with cooperative cancellation: once `cancel` is set,
/// every stage bails out at its next slice boundary and the repair fails
/// with an [`EcPipeError::Execution`] error instead of completing.
///
/// The repair manager's link watchdog uses this to abandon a stream whose
/// path crosses a degraded link, then re-plans the repair around it. A
/// cancelled execution leaves no partial block in any store — only the
/// requestor writes, and only on success.
pub fn execute_single_cancellable<T: Transport + ?Sized>(
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
    strategy: ExecStrategy,
    cancel: &OnceFlag,
) -> Result<Vec<u8>> {
    // Pre-flight: every helper block must still be present. A block that
    // disappeared after planning surfaces as `BlockNotFound`, which lets the
    // caller restart with a different helper set (§3.2).
    for &(node, block, _) in &directive.path {
        if !cluster.store(node).contains(block) {
            return Err(EcPipeError::BlockNotFound { block });
        }
    }
    match strategy {
        ExecStrategy::Conventional => run_conventional(directive, cluster, transport, cancel),
        ExecStrategy::Ppr => run_ppr(directive, cluster, transport, cancel),
        ExecStrategy::RepairPipelining => {
            run_pipeline(directive, cluster, transport, directive.layout, cancel)
        }
        ExecStrategy::BlockPipeline => {
            let block_layout =
                SliceLayout::new(directive.layout.block_size, directive.layout.block_size);
            run_pipeline(directive, cluster, transport, block_layout, cancel)
        }
    }
}

fn cancelled_error() -> EcPipeError {
    execution_error("repair cancelled mid-stream")
}

/// Slice-level (or block-level) pipelining along the helper path.
fn run_pipeline<T: Transport + ?Sized>(
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
    layout: SliceLayout,
    cancel: &OnceFlag,
) -> Result<Vec<u8>> {
    let slices = layout.slice_count();
    let path = &directive.path;
    if path.is_empty() {
        return Err(execution_error("repair path has no helpers"));
    }
    let (stripe, repair) = (directive.stripe.0, directive.repair_id());

    // One pool serves the whole path: a partial buffer freed by the
    // downstream consumer is reused for a later slice, so the steady state
    // allocates nothing per slice.
    let pool = BufPool::new();
    std::thread::scope(|scope| -> Result<Vec<u8>> {
        let mut handles = Vec::new();
        let mut prev_rx = None;
        for (i, &(node, block, coeff)) in path.iter().enumerate() {
            let next_node = if i + 1 < path.len() {
                path[i + 1].0
            } else {
                directive.requestor
            };
            let (tx, rx) = transport.link(node, next_node, PIPELINE_DEPTH);
            let store = cluster.store(node).clone();
            let incoming = prev_rx.replace(rx);
            let pool = pool.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                for j in 0..slices {
                    if cancel.is_set() {
                        return Err(cancelled_error());
                    }
                    let local = store.get_range(block, layout.slice_range(j))?;
                    let mut partial = pool.take(local.len());
                    gf256::mul_slice(Gf256::new(coeff), &local, &mut partial);
                    if let Some(rx) = &incoming {
                        let msg = rx
                            .recv()
                            .ok_or_else(|| execution_error("upstream helper stopped early"))?;
                        gf256::add_slice(&msg.data, &mut partial);
                    }
                    tx.send(SliceMsg::new(j, partial.freeze()).tagged(stripe, repair))?;
                }
                Ok(())
            }));
        }

        // The requestor assembles the repaired block.
        let rx = prev_rx.expect("path has at least one helper");
        let mut out = vec![0u8; layout.block_size];
        let mut stalled = false;
        for _ in 0..slices {
            if cancel.is_set() {
                stalled = true;
                break;
            }
            match rx.recv() {
                Some(msg) => out[layout.slice_range(msg.index)].copy_from_slice(&msg.data),
                None => {
                    stalled = true;
                    break;
                }
            }
        }
        drop(rx);
        // Join the helpers before reporting a stall: a helper that failed a
        // local read (a vanished or checksum-corrupt block) carries the
        // specific error; the requestor only saw the stream end early.
        join_all(handles)?;
        if stalled {
            return Err(execution_error(
                "pipeline ended before the block was complete",
            ));
        }
        Ok(out)
    })
}

/// Conventional repair: the requestor pulls every helper block and decodes.
fn run_conventional<T: Transport + ?Sized>(
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
    cancel: &OnceFlag,
) -> Result<Vec<u8>> {
    let layout = directive.layout;
    let slices = layout.slice_count();
    let (stripe, repair) = (directive.stripe.0, directive.repair_id());

    std::thread::scope(|scope| -> Result<Vec<u8>> {
        let mut handles = Vec::new();
        let mut receivers = Vec::new();
        for &(node, block, coeff) in &directive.path {
            let (tx, rx) = transport.link(node, directive.requestor, PIPELINE_DEPTH);
            receivers.push((rx, coeff));
            let store = cluster.store(node).clone();
            handles.push(scope.spawn(move || -> Result<()> {
                for j in 0..slices {
                    if cancel.is_set() {
                        return Err(cancelled_error());
                    }
                    let local = store.get_range(block, layout.slice_range(j))?;
                    tx.send(SliceMsg::new(j, local).tagged(stripe, repair))?;
                }
                Ok(())
            }));
        }

        let mut out = vec![0u8; layout.block_size];
        let mut stalled = false;
        'links: for (rx, coeff) in receivers {
            for _ in 0..slices {
                if cancel.is_set() {
                    stalled = true;
                    break 'links;
                }
                let Some(msg) = rx.recv() else {
                    stalled = true;
                    // Breaking drops the remaining receivers, so the other
                    // helpers fail their sends and terminate.
                    break 'links;
                };
                gf256::mul_add_slice(
                    Gf256::new(coeff),
                    &msg.data,
                    &mut out[layout.slice_range(msg.index)],
                );
            }
        }
        join_all(handles)?;
        if stalled {
            return Err(execution_error("helper stopped before sending its block"));
        }
        Ok(out)
    })
}

/// Partial-parallel repair: pairwise aggregation along a binary tree.
fn run_ppr<T: Transport + ?Sized>(
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
    cancel: &OnceFlag,
) -> Result<Vec<u8>> {
    let layout = directive.layout;
    let slices = layout.slice_count();
    let (stripe, repair) = (directive.stripe.0, directive.repair_id());

    // Initial partials: every helper scales its local block by its
    // coefficient (in parallel).
    let mut partials: std::collections::HashMap<simnet::NodeId, Vec<u8>> =
        std::thread::scope(|scope| -> Result<_> {
            let handles: Vec<_> = directive
                .path
                .iter()
                .map(|&(node, block, coeff)| {
                    let store = cluster.store(node).clone();
                    scope.spawn(move || -> Result<(simnet::NodeId, Vec<u8>)> {
                        let local = store.get(block)?;
                        let mut partial = vec![0u8; local.len()];
                        gf256::mul_slice(Gf256::new(coeff), &local, &mut partial);
                        Ok((node, partial))
                    })
                })
                .collect();
            let mut map = std::collections::HashMap::new();
            for h in handles {
                let (node, partial) = h
                    .join()
                    .map_err(|_| execution_error("helper thread panicked"))??;
                map.insert(node, partial);
            }
            Ok(map)
        })?;
    // The requestor starts with an all-zero partial.
    partials.insert(directive.requestor, vec![0u8; layout.block_size]);

    let rounds = repair::ppr::aggregation_rounds(&directive.helper_nodes(), directive.requestor);
    for round in rounds {
        // All pairs of a round run in parallel; senders stream their partial
        // to receivers slice by slice.
        let mut work = Vec::new();
        for (sender, receiver) in round {
            let sender_partial = partials
                .remove(&sender)
                .ok_or_else(|| execution_error("sender has no partial result"))?;
            let receiver_partial = partials
                .remove(&receiver)
                .ok_or_else(|| execution_error("receiver has no partial result"))?;
            work.push((sender, receiver, sender_partial, receiver_partial));
        }
        let results = std::thread::scope(|scope| -> Result<Vec<(simnet::NodeId, Vec<u8>)>> {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(sender, receiver, sender_partial, mut receiver_partial)| {
                    let (tx, rx) = transport.link(sender, receiver, PIPELINE_DEPTH);
                    let send_handle = scope.spawn(move || -> Result<()> {
                        // Freeze the whole partial once; each slice message
                        // is a view into the same allocation.
                        let sender_bytes = Bytes::from(sender_partial);
                        for j in 0..slices {
                            if cancel.is_set() {
                                return Err(cancelled_error());
                            }
                            let data = sender_bytes.slice(layout.slice_range(j));
                            tx.send(SliceMsg::new(j, data).tagged(stripe, repair))?;
                        }
                        Ok(())
                    });
                    let recv_handle = scope.spawn(move || -> Result<(simnet::NodeId, Vec<u8>)> {
                        for _ in 0..slices {
                            if cancel.is_set() {
                                return Err(cancelled_error());
                            }
                            let msg = rx
                                .recv()
                                .ok_or_else(|| execution_error("sender stopped early"))?;
                            gf256::add_slice(
                                &msg.data,
                                &mut receiver_partial[layout.slice_range(msg.index)],
                            );
                        }
                        Ok((receiver, receiver_partial))
                    });
                    (send_handle, recv_handle)
                })
                .collect();
            let mut results = Vec::new();
            for (send_handle, recv_handle) in handles {
                send_handle
                    .join()
                    .map_err(|_| execution_error("sender thread panicked"))??;
                results.push(
                    recv_handle
                        .join()
                        .map_err(|_| execution_error("receiver thread panicked"))??,
                );
            }
            Ok(results)
        })?;
        for (node, partial) in results {
            partials.insert(node, partial);
        }
    }

    partials
        .remove(&directive.requestor)
        .ok_or_else(|| execution_error("aggregation did not reach the requestor"))
}

/// Executes a multi-block repair (§4.4): each helper reads its block once and
/// forwards a bundle of `f` partial slices per offset; the last helper
/// delivers each reconstructed slice to its requestor.
pub fn execute_multi<T: Transport + ?Sized>(
    directive: &MultiRepairDirective,
    cluster: &Cluster,
    transport: &T,
) -> Result<Vec<Vec<u8>>> {
    let layout = directive.layout;
    let slices = layout.slice_count();
    let (stripe, repair) = (directive.stripe.0, directive.repair_id());
    let f = directive.plan.failure_count();
    let path = &directive.path;
    if path.is_empty() {
        return Err(execution_error("repair path has no helpers"));
    }
    for &(node, block) in path {
        if !cluster.store(node).contains(block) {
            return Err(EcPipeError::BlockNotFound { block });
        }
    }

    // Delivery links from the last helper to each requestor. The channel
    // capacity covers the whole block so the last helper never blocks on a
    // requestor that is collected later.
    let last_helper = path.last().expect("path checked non-empty").0;
    let (delivery_senders, delivery_receivers): (Vec<_>, Vec<_>) = directive
        .requestors
        .iter()
        .map(|&r| transport.link(last_helper, r, slices.max(PIPELINE_DEPTH)))
        .unzip();

    let pool = BufPool::new();
    std::thread::scope(|scope| -> Result<Vec<Vec<u8>>> {
        let mut handles = Vec::new();
        let mut prev_rx = None;
        let mut delivery_senders = Some(delivery_senders);
        for (i, &(node, block)) in path.iter().enumerate() {
            let is_last = i + 1 == path.len();
            let coeffs: Vec<u8> = directive
                .plan
                .coefficients
                .iter()
                .map(|row| row[i])
                .collect();
            let store = cluster.store(node).clone();
            let incoming = prev_rx.take();
            let forward = if !is_last {
                let (tx, rx) = transport.link(node, path[i + 1].0, PIPELINE_DEPTH);
                prev_rx = Some(rx);
                Some(tx)
            } else {
                None
            };
            let delivery = if is_last {
                delivery_senders.take()
            } else {
                None
            };
            let pool = pool.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                for j in 0..slices {
                    let local = store.get_range(block, layout.slice_range(j))?;
                    let mut bundle = pool.take(f * local.len());
                    if let Some(rx) = &incoming {
                        let msg = rx
                            .recv()
                            .ok_or_else(|| execution_error("upstream helper stopped early"))?;
                        bundle.copy_from_slice(&msg.data);
                    }
                    for (row, &coeff) in coeffs.iter().enumerate() {
                        gf256::mul_add_slice(
                            Gf256::new(coeff),
                            &local,
                            &mut bundle[row * local.len()..(row + 1) * local.len()],
                        );
                    }
                    let bundle = bundle.freeze();
                    if let Some(tx) = &forward {
                        tx.send(SliceMsg::new(j, bundle).tagged(stripe, repair))?;
                    } else if let Some(delivery) = &delivery {
                        // Each requestor receives a view into the shared
                        // bundle, not its own copy.
                        for (row, tx) in delivery.iter().enumerate() {
                            let slice = bundle.slice(row * local.len()..(row + 1) * local.len());
                            tx.send(SliceMsg::new(j, slice).tagged(stripe, repair))?;
                        }
                    }
                }
                Ok(())
            }));
        }

        // Collect each requestor's block.
        let mut outputs = vec![vec![0u8; layout.block_size]; f];
        let mut stalled = false;
        'rows: for (row, rx) in delivery_receivers.into_iter().enumerate() {
            for _ in 0..slices {
                let Some(msg) = rx.recv() else {
                    stalled = true;
                    break 'rows;
                };
                outputs[row][layout.slice_range(msg.index)].copy_from_slice(&msg.data);
            }
        }
        join_all(handles)?;
        if stalled {
            return Err(execution_error("delivery ended before block was complete"));
        }
        Ok(outputs)
    })
}

/// Joins every helper thread. When several failed, the most *specific* error
/// wins: a local-read failure (a corrupt or vanished block) explains the
/// repair's failure, while `Execution` errors are usually just the
/// downstream echo of that same event ("peer gone", "upstream stopped
/// early"). The manager relies on this to re-plan around the actual culprit
/// instead of seeing a generic stream failure.
fn join_all(handles: Vec<std::thread::ScopedJoinHandle<'_, Result<()>>>) -> Result<()> {
    fn specificity(e: &EcPipeError) -> u8 {
        match e {
            EcPipeError::CorruptBlock { .. } | EcPipeError::BlockNotFound { .. } => 2,
            EcPipeError::Execution { .. } => 0,
            _ => 1,
        }
    }
    let mut worst: Option<EcPipeError> = None;
    for h in handles {
        let outcome = match h.join() {
            Ok(result) => result,
            Err(_) => Err(execution_error("worker thread panicked")),
        };
        if let Err(e) = outcome {
            if worst
                .as_ref()
                .is_none_or(|w| specificity(&e) > specificity(w))
            {
                worst = Some(e);
            }
        }
    }
    match worst {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::SelectionPolicy;
    use crate::transport::ChannelTransport;
    use crate::{Cluster, Coordinator};
    use ecc::stripe::StripeId;
    use ecc::{ErasureCode, Lrc, ReedSolomon};
    use std::sync::Arc;

    const BLOCK: usize = 8192;

    fn make_data(k: usize, seed: u64) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 131 + i as u64 * 17 + seed * 7) % 253) as u8)
                    .collect()
            })
            .collect()
    }

    fn setup(code: Arc<dyn ErasureCode>) -> (Cluster, Coordinator, Vec<Vec<u8>>, StripeId) {
        let k = code.k();
        let n = code.n();
        let mut coordinator = Coordinator::new(code, ecc::slice::SliceLayout::new(BLOCK, 1024));
        let cluster = Cluster::new(crate::StoreBackend::memory(n + 2)).unwrap();
        let data = make_data(k, 3);
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        (cluster, coordinator, data, stripe)
    }

    #[test]
    fn every_strategy_reconstructs_a_data_block() {
        for strategy in [
            ExecStrategy::Conventional,
            ExecStrategy::Ppr,
            ExecStrategy::RepairPipelining,
            ExecStrategy::BlockPipeline,
        ] {
            let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
            let (cluster, mut coordinator, data, stripe) = setup(code);
            cluster.erase_block(stripe, 3);
            let repaired = cluster
                .repair(&mut coordinator, stripe, 3, 15, strategy)
                .unwrap();
            assert_eq!(repaired, data[3], "strategy {:?}", strategy);
        }
    }

    #[test]
    fn every_strategy_reconstructs_a_parity_block() {
        let code = Arc::new(ReedSolomon::new(9, 6).unwrap());
        for strategy in [
            ExecStrategy::Conventional,
            ExecStrategy::Ppr,
            ExecStrategy::RepairPipelining,
            ExecStrategy::BlockPipeline,
        ] {
            let (cluster, mut coordinator, data, stripe) = setup(code.clone());
            let expected = code.encode(&data).unwrap()[7].clone();
            cluster.erase_block(stripe, 7);
            let repaired = cluster
                .repair(&mut coordinator, stripe, 7, 10, strategy)
                .unwrap();
            assert_eq!(repaired, expected, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn rp_traffic_is_balanced_across_links() {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
        let (cluster, mut coordinator, _data, stripe) = setup(code);
        cluster.erase_block(stripe, 0);
        let directive = coordinator
            .plan_single_repair(stripe, 0, 15, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let transport = ChannelTransport::new();
        execute_single(
            &directive,
            &cluster,
            &transport,
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
        // k links, each carrying exactly one block.
        assert_eq!(transport.links_used(), 10);
        assert_eq!(transport.total_bytes(), 10 * BLOCK as u64);
        assert_eq!(transport.max_link_bytes(), BLOCK as u64);
    }

    #[test]
    fn conventional_traffic_funnels_into_the_requestor() {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
        let (cluster, mut coordinator, _data, stripe) = setup(code);
        cluster.erase_block(stripe, 0);
        let directive = coordinator
            .plan_single_repair(stripe, 0, 15, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let transport = ChannelTransport::new();
        execute_single(&directive, &cluster, &transport, ExecStrategy::Conventional).unwrap();
        assert_eq!(transport.total_bytes(), 10 * BLOCK as u64);
        // Every link ends at the requestor.
        for &(node, _, _) in &directive.path {
            assert_eq!(transport.link_bytes(node, 15), BLOCK as u64);
        }
    }

    #[test]
    fn lrc_repair_reads_only_the_local_group() {
        let code: Arc<dyn ErasureCode> = Arc::new(Lrc::new(12, 2, 2).unwrap());
        let (cluster, mut coordinator, data, stripe) = setup(code);
        cluster.erase_block(stripe, 4);
        let directive = coordinator
            .plan_single_repair(stripe, 4, 17, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        assert_eq!(directive.path.len(), 6);
        let transport = ChannelTransport::new();
        let repaired = execute_single(
            &directive,
            &cluster,
            &transport,
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
        assert_eq!(repaired, data[4]);
        assert_eq!(transport.total_bytes(), 6 * BLOCK as u64);
    }

    #[test]
    fn reordered_path_still_reconstructs() {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(9, 6).unwrap());
        let (cluster, mut coordinator, data, stripe) = setup(code);
        cluster.erase_block(stripe, 2);
        let directive = coordinator
            .plan_single_repair(stripe, 2, 10, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let mut order = directive.helper_nodes();
        order.reverse();
        let directive = directive.with_path_order(&order);
        let transport = ChannelTransport::new();
        let repaired = execute_single(
            &directive,
            &cluster,
            &transport,
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
        assert_eq!(repaired, data[2]);
    }

    #[test]
    fn missing_helper_block_surfaces_as_error() {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let (cluster, mut coordinator, _data, stripe) = setup(code);
        cluster.erase_block(stripe, 0);
        // Also erase a block that will be used as a helper, *after* planning.
        let directive = coordinator
            .plan_single_repair(stripe, 0, 7, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let helper_index = directive.plan.sources[0].block_index;
        cluster.erase_block(stripe, helper_index);
        let transport = ChannelTransport::new();
        let result = execute_single(
            &directive,
            &cluster,
            &transport,
            ExecStrategy::RepairPipelining,
        );
        assert!(result.is_err());
    }

    #[test]
    fn cancelled_execution_fails_without_storing_anything() {
        for strategy in [
            ExecStrategy::Conventional,
            ExecStrategy::Ppr,
            ExecStrategy::RepairPipelining,
            ExecStrategy::BlockPipeline,
        ] {
            let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(6, 4).unwrap());
            let (cluster, mut coordinator, _data, stripe) = setup(code);
            cluster.erase_block(stripe, 1);
            let directive = coordinator
                .plan_single_repair(stripe, 1, 7, &[], SelectionPolicy::CodeDefault)
                .unwrap();
            let transport = ChannelTransport::new();
            let cancel = OnceFlag::new();
            cancel.set();
            let result =
                execute_single_cancellable(&directive, &cluster, &transport, strategy, &cancel);
            assert!(
                matches!(result, Err(EcPipeError::Execution { .. })),
                "strategy {strategy:?} must fail once cancelled"
            );
            assert!(
                !cluster.store(7).contains(ecc::stripe::BlockId::new(0, 1)),
                "a cancelled repair must leave no partial block"
            );
        }
    }

    #[test]
    fn multi_block_repair_reconstructs_all_failures() {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
        let (cluster, mut coordinator, data, stripe) = setup(code.clone());
        let coded = code.encode(&data).unwrap();
        let failed = vec![1, 6, 12];
        for &f in &failed {
            cluster.erase_block(stripe, f);
        }
        let directive = coordinator
            .plan_multi_repair(stripe, &failed, &[14, 15, 14])
            .unwrap();
        let transport = ChannelTransport::new();
        let repaired = execute_multi(&directive, &cluster, &transport).unwrap();
        for (j, &f) in directive.plan.failed.iter().enumerate() {
            assert_eq!(repaired[j], coded[f], "failed block {f}");
        }
        // Each helper read its block once: inter-helper links carry f blocks,
        // delivery links one block each.
        assert_eq!(
            transport.total_bytes(),
            ((directive.path.len() - 1) * failed.len() * BLOCK + failed.len() * BLOCK) as u64
        );
    }
}
