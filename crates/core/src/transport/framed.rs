//! Link-level flow control shared by the socket-backed transports.
//!
//! Both [`TcpTransport`](super::TcpTransport) and
//! [`ReactorTransport`](super::ReactorTransport) multiplex many logical
//! links over one connection per directed node pair, and both enforce a
//! link's `capacity` with sender-side credits: a sender consumes one credit
//! per slice and blocks at zero; the receiver returns a credit each time it
//! pops a slice. Credits are process-local control state (these backends
//! run all nodes in one process over localhost); the data plane — every
//! slice payload — always crosses a real socket. The per-link queue/credit
//! state ([`LinkState`]) and the registry tying link ids to their carrying
//! connection ([`LinkTable`]) live here so the two backends stay
//! byte-for-byte interchangeable.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use ecpipe_sync::{Condvar, Mutex};
use simnet::NodeId;

use crate::lock_order;

use super::wire::{Frame, OP_DATA, OP_EOS};
use super::{SliceMsg, SliceRx};

/// How long blocked senders/receivers sleep between re-checks; a backstop so
/// a lost wakeup degrades to latency rather than a deadlock.
pub(super) const WAIT_TICK: Duration = Duration::from_millis(50);

/// Shared state of one logical link (queue on the receive side, credits on
/// the send side).
pub(super) struct LinkState {
    /// Lock class: `framed.link_state` ([`lock_order::FRAMED_LINK_STATE`]).
    pub(super) inner: Mutex<LinkInner>,
    pub(super) readable: Condvar,
    pub(super) writable: Condvar,
}

pub(super) struct LinkInner {
    pub(super) queue: VecDeque<SliceMsg>,
    pub(super) credits: usize,
    pub(super) sender_closed: bool,
    pub(super) receiver_closed: bool,
    /// Local halves dropped (distinct from the wire-level closed flags
    /// above): once both are gone the registry entry can be reclaimed.
    pub(super) tx_dropped: bool,
    pub(super) rx_dropped: bool,
}

impl LinkState {
    pub(super) fn new(capacity: usize) -> Self {
        LinkState {
            inner: Mutex::new(
                &lock_order::FRAMED_LINK_STATE,
                LinkInner {
                    queue: VecDeque::new(),
                    credits: capacity.max(1),
                    sender_closed: false,
                    receiver_closed: false,
                    tx_dropped: false,
                    rx_dropped: false,
                },
            ),
            readable: Condvar::new(),
            writable: Condvar::new(),
        }
    }

    pub(super) fn close_sender(&self) {
        self.inner.lock().sender_closed = true;
        self.readable.notify_all();
    }

    pub(super) fn close_receiver(&self) {
        self.inner.lock().receiver_closed = true;
        self.writable.notify_all();
    }
}

/// The registry of live links and of which directed connection carries each
/// one, so a connection teardown can close exactly the receive queues it
/// fed.
pub(super) struct LinkTable {
    /// Lock class: `framed.links` ([`lock_order::FRAMED_LINKS`]).
    pub(super) links: Mutex<HashMap<u64, Arc<LinkState>>>,
    /// Links riding each directed connection.
    ///
    /// Lock class: `framed.conn_links` ([`lock_order::FRAMED_CONN_LINKS`]).
    pub(super) conn_links: Mutex<HashMap<(NodeId, NodeId), Vec<u64>>>,
}

impl Default for LinkTable {
    fn default() -> Self {
        LinkTable {
            links: Mutex::new(&lock_order::FRAMED_LINKS, HashMap::new()),
            conn_links: Mutex::new(&lock_order::FRAMED_CONN_LINKS, HashMap::new()),
        }
    }
}

impl LinkTable {
    /// Registers a freshly-opened link as riding the `pair` connection.
    pub(super) fn register(&self, pair: (NodeId, NodeId), link_id: u64, link: Arc<LinkState>) {
        self.links.lock().insert(link_id, link);
        self.conn_links
            .lock()
            .entry(pair)
            .or_default()
            .push(link_id);
    }

    /// Records that one local half of a link was dropped; once both halves
    /// are gone the registry entries are reclaimed, so a long-lived
    /// transport does not accumulate state for finished repairs.
    pub(super) fn release_link_half(
        &self,
        pair: (NodeId, NodeId),
        link_id: u64,
        link: &LinkState,
        tx: bool,
    ) {
        let both_dropped = {
            let mut inner = link.inner.lock();
            if tx {
                inner.tx_dropped = true;
            } else {
                inner.rx_dropped = true;
            }
            inner.tx_dropped && inner.rx_dropped
        };
        if both_dropped {
            self.links.lock().remove(&link_id);
            if let Some(ids) = self.conn_links.lock().get_mut(&pair) {
                ids.retain(|&id| id != link_id);
            }
        }
    }

    /// Marks every link fed by the `(src, dst)` connection as
    /// sender-closed: the connection is gone, no more slices can arrive.
    pub(super) fn close_conn_links(&self, src: NodeId, dst: NodeId) {
        let ids = self
            .conn_links
            .lock()
            .get(&(src, dst))
            .cloned()
            .unwrap_or_default();
        let links = self.links.lock();
        for id in ids {
            if let Some(link) = links.get(&id) {
                link.close_sender();
            }
        }
    }

    /// Closes both ends of every live link — the shutdown path, unblocking
    /// any straggling senders and receivers.
    pub(super) fn close_all(&self) {
        let links = self.links.lock();
        for link in links.values() {
            link.close_sender();
            link.close_receiver();
        }
    }

    /// Routes one received `DATA`/`EOS` frame to its link queue. Frames for
    /// links already gone (both halves dropped) are discarded — the normal
    /// fate of an `EOS` racing a receiver teardown.
    pub(super) fn dispatch(&self, frame: Frame) {
        match frame.opcode {
            OP_DATA => {
                let link = self.links.lock().get(&frame.link).cloned();
                if let Some(link) = link {
                    let mut inner = link.inner.lock();
                    if !inner.receiver_closed {
                        inner.queue.push_back(SliceMsg {
                            index: frame.index as usize,
                            stripe: frame.stripe,
                            repair: frame.repair,
                            data: frame.payload.into(),
                        });
                        link.readable.notify_one();
                    }
                }
            }
            OP_EOS => {
                let link = self.links.lock().get(&frame.link).cloned();
                if let Some(link) = link {
                    link.close_sender();
                }
            }
            _ => {}
        }
    }
}

/// The receiving half of a socket-transport link: pops slices pushed by the
/// backend's frame-dispatch path, returning credits as it drains. Shared by
/// both socket backends — receive semantics are identical once frames reach
/// the link queue.
pub(super) struct FramedRx {
    pub(super) pair: (NodeId, NodeId),
    pub(super) link_id: u64,
    pub(super) link: Arc<LinkState>,
    pub(super) table: Arc<LinkTable>,
}

impl SliceRx for FramedRx {
    fn recv(&self) -> Option<SliceMsg> {
        let inner = self.link.inner.lock();
        let mut inner = self
            .link
            .readable
            .wait_while_tick(inner, WAIT_TICK, |s| s.queue.is_empty() && !s.sender_closed);
        let msg = inner.queue.pop_front()?;
        inner.credits += 1;
        self.link.writable.notify_one();
        Some(msg)
    }
}

impl Drop for FramedRx {
    fn drop(&mut self) {
        self.link.close_receiver();
        self.table
            .release_link_half(self.pair, self.link_id, &self.link, false);
    }
}
