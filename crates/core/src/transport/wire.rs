//! The framed wire format shared by the socket-backed transports.
//!
//! [`TcpTransport`](super::TcpTransport) (blocking, thread-per-connection)
//! and [`ReactorTransport`](super::ReactorTransport) (nonblocking,
//! event-driven) speak the identical byte stream — the conformance suites
//! assert both backends are interchangeable — so the encoding lives here
//! once. Every frame is length-prefixed and little-endian:
//!
//! ```text
//! +--------+----------+-----------+------------+------------+----------+---------+
//! | opcode | link id  | slice idx | stripe id  | repair id  | len: u32 | payload |
//! | u8     | u64      | u64       | u64        | u64        |          | [u8]    |
//! +--------+----------+-----------+------------+------------+----------+---------+
//! ```
//!
//! Opcodes: `HELLO` (first frame on a connection, announcing the `(src,
//! dst)` node pair in the link/index fields), `DATA` (one
//! [`SliceMsg`](super::SliceMsg): slice index, stripe and repair-job ids,
//! payload), `EOS` (the sending half of a link was dropped).

use std::io::Read;
use std::net::TcpStream;

/// First frame on a connection: announces the `(src, dst)` node pair.
pub(super) const OP_HELLO: u8 = 1;
/// One slice message.
pub(super) const OP_DATA: u8 = 2;
/// The sending half of a link was dropped.
pub(super) const OP_EOS: u8 = 3;

/// Header: opcode + link id + slice index + stripe id + repair id + length.
pub(super) const HEADER_LEN: usize = 1 + 8 + 8 + 8 + 8 + 4;

pub(super) fn encode_header(
    opcode: u8,
    link: u64,
    index: u64,
    stripe: u64,
    repair: u64,
    len: u32,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0] = opcode;
    h[1..9].copy_from_slice(&link.to_le_bytes());
    h[9..17].copy_from_slice(&index.to_le_bytes());
    h[17..25].copy_from_slice(&stripe.to_le_bytes());
    h[25..33].copy_from_slice(&repair.to_le_bytes());
    h[33..37].copy_from_slice(&len.to_le_bytes());
    h
}

/// One decoded frame.
pub(super) struct Frame {
    pub(super) opcode: u8,
    pub(super) link: u64,
    pub(super) index: u64,
    pub(super) stripe: u64,
    pub(super) repair: u64,
    pub(super) payload: Vec<u8>,
}

fn decode(header: &[u8; HEADER_LEN], payload: Vec<u8>) -> Frame {
    Frame {
        opcode: header[0],
        link: u64::from_le_bytes(header[1..9].try_into().unwrap()),
        index: u64::from_le_bytes(header[9..17].try_into().unwrap()),
        stripe: u64::from_le_bytes(header[17..25].try_into().unwrap()),
        repair: u64::from_le_bytes(header[25..33].try_into().unwrap()),
        payload,
    }
}

/// Blocking read of one complete frame (the `TcpTransport` reader-thread
/// path).
pub(super) fn read_frame(stream: &mut TcpStream) -> std::io::Result<Frame> {
    let mut h = [0u8; HEADER_LEN];
    stream.read_exact(&mut h)?;
    let len = u32::from_le_bytes(h[33..37].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(decode(&h, payload))
}

/// Incremental frame parser for nonblocking reads (the `ReactorTransport`
/// path): bytes go in whenever the socket is readable, complete frames come
/// out. Partial frames stay buffered across calls.
#[derive(Default)]
pub(super) struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so steady-state parsing
    /// does not memmove on every frame.
    start: usize,
}

impl FrameDecoder {
    /// Appends freshly-read bytes to the parse buffer.
    pub(super) fn extend(&mut self, bytes: &[u8]) {
        // Compact once the dead prefix dominates, bounding memory at ~2x
        // the largest in-flight frame.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, or `None` until more bytes arrive.
    pub(super) fn next_frame(&mut self) -> Option<Frame> {
        let pending = &self.buf[self.start..];
        if pending.len() < HEADER_LEN {
            return None;
        }
        let header: [u8; HEADER_LEN] = pending[..HEADER_LEN].try_into().unwrap();
        let len = u32::from_le_bytes(header[33..37].try_into().unwrap()) as usize;
        if pending.len() < HEADER_LEN + len {
            return None;
        }
        let payload = pending[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.start += HEADER_LEN + len;
        Some(decode(&header, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(opcode: u8, link: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = encode_header(opcode, link, 1, 2, 3, payload.len() as u32).to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn decoder_handles_split_and_coalesced_frames() {
        let mut wire = frame_bytes(OP_DATA, 7, b"abc");
        wire.extend(frame_bytes(OP_EOS, 8, b""));
        let mut decoder = FrameDecoder::default();
        // Feed byte-by-byte: no frame until the last byte of the first one.
        let mut seen = Vec::new();
        for chunk in wire.chunks(1) {
            decoder.extend(chunk);
            while let Some(f) = decoder.next_frame() {
                seen.push((f.opcode, f.link, f.payload));
            }
        }
        assert_eq!(
            seen,
            vec![(OP_DATA, 7, b"abc".to_vec()), (OP_EOS, 8, Vec::new())]
        );
        // Feed everything at once: both frames pop out back-to-back.
        let mut decoder = FrameDecoder::default();
        decoder.extend(&wire);
        assert_eq!(decoder.next_frame().unwrap().opcode, OP_DATA);
        assert_eq!(decoder.next_frame().unwrap().opcode, OP_EOS);
        assert!(decoder.next_frame().is_none());
    }

    #[test]
    fn decoder_roundtrips_metadata() {
        let mut out = encode_header(OP_DATA, 11, 22, 33, 44, 2).to_vec();
        out.extend_from_slice(b"xy");
        let mut decoder = FrameDecoder::default();
        decoder.extend(&out);
        let f = decoder.next_frame().unwrap();
        assert_eq!(
            (f.opcode, f.link, f.index, f.stripe, f.repair, f.payload),
            (OP_DATA, 11, 22, 33, 44, b"xy".to_vec())
        );
    }
}
