//! The TCP transport backend: slices move over real localhost sockets.
//!
//! Mirrors the extended evaluation of the paper (arXiv:1908.01527), where
//! helpers exchange slices over direct TCP connections instead of Redis.
//! One listener thread per node accepts connections; one TCP connection is
//! established per directed `(src, dst)` node pair and reused by every link
//! (and therefore every slice and every repair) between those nodes, with
//! frames demultiplexed by link id.
//!
//! The wire format is shared with [`ReactorTransport`](super::ReactorTransport)
//! and documented in [`wire`](super::wire); the credit-based flow control
//! (a link's `capacity` enforced with sender-side credits) is shared too
//! and lives in [`framed`](super::framed). What distinguishes this backend
//! is its threading model: blocking sockets, one accept thread per
//! listener and one reader thread per accepted connection — simple and
//! fine at a handful of nodes, superseded by the reactor backend when
//! connection counts grow.
//!
//! # Throttling
//!
//! [`TcpTransport::with_rate_limit`] gives every link a token-bucket
//! throttle, which is how the paper's 1 Gb/s testbed is approximated on a
//! loopback device: with `rate` bytes/s per link, a single-block repair
//! under repair pipelining should take about `1 + (k-1)/s` times a direct
//! block send (§3.2), which the conformance tests measure.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ecpipe_sync::{Mutex, OnceFlag};
use simnet::{NodeId, Topology};

use crate::lock_order;

use super::framed::{FramedRx, LinkState, LinkTable, WAIT_TICK};
use super::wire::{encode_header, read_frame, OP_DATA, OP_EOS, OP_HELLO};
use super::{
    Shaper, SliceMsg, SliceReceiver, SliceSender, SliceTx, StatsRegistry, TokenBucket, Transport,
    TransportError,
};

/// One reusable TCP connection for a directed node pair. All links between
/// the pair share the writer; frames carry the link id for demultiplexing.
struct Conn {
    /// Lock class: `tcp.writer` ([`lock_order::TCP_WRITER`]).
    writer: Mutex<TcpStream>,
    /// Clone used to interrupt blocked I/O at shutdown.
    stream: TcpStream,
}

impl Conn {
    fn write_frame(
        &self,
        opcode: u8,
        link: u64,
        index: u64,
        stripe: u64,
        repair: u64,
        payload: &[u8],
    ) -> std::io::Result<()> {
        let header = encode_header(opcode, link, index, stripe, repair, payload.len() as u32);
        let mut writer = self.writer.lock();
        writer.write_all(&header)?;
        writer.write_all(payload)
    }
}

struct ListenerHandle {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

struct Shared {
    table: Arc<LinkTable>,
    shutdown: OnceFlag,
    /// Lock class: `tcp.reader_threads` ([`lock_order::TCP_READER_THREADS`]).
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            table: Arc::new(LinkTable::default()),
            shutdown: OnceFlag::new(),
            reader_threads: Mutex::new(&lock_order::TCP_READER_THREADS, Vec::new()),
        }
    }
}

struct TcpTx {
    /// The shared connection, or the socket-setup failure that prevented
    /// it: setup errors surface per-send as `TransportError::Io` (failing
    /// the repair) instead of panicking inside the executor.
    conn: Result<Arc<Conn>, String>,
    pair: (NodeId, NodeId),
    link_id: u64,
    link: Arc<LinkState>,
    shared: Arc<Shared>,
    bucket: Option<Arc<TokenBucket>>,
}

impl SliceTx for TcpTx {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        let conn = self
            .conn
            .as_ref()
            .map_err(|reason| TransportError::Io(std::io::Error::other(reason.clone())))?;
        // Credit gate: block until the receiver has drained below capacity.
        {
            let inner = self.link.inner.lock();
            let mut inner = self
                .link
                .writable
                .wait_while_tick(inner, WAIT_TICK, |s| !s.receiver_closed && s.credits == 0);
            if inner.receiver_closed {
                return Err(TransportError::Disconnected);
            }
            inner.credits -= 1;
        }
        if let Some(bucket) = &self.bucket {
            bucket.take(super::wire::HEADER_LEN + msg.data.len());
        }
        conn.write_frame(
            OP_DATA,
            self.link_id,
            msg.index as u64,
            msg.stripe,
            msg.repair,
            &msg.data,
        )
        .map_err(TransportError::Io)
    }
}

impl Drop for TcpTx {
    fn drop(&mut self) {
        // Graceful end-of-stream: queued DATA frames arrive first (same
        // socket, FIFO), then the receiver sees the close.
        if let Ok(conn) = &self.conn {
            let _ = conn.write_frame(OP_EOS, self.link_id, 0, 0, 0, &[]);
        }
        self.shared
            .table
            .release_link_half(self.pair, self.link_id, &self.link, true);
    }
}

/// The localhost TCP backend: framed slices over reused per-node-pair
/// connections, credit-based backpressure at link capacity, and an optional
/// per-link token-bucket throttle (see the `wire` module source for the
/// wire format).
pub struct TcpTransport {
    stats: StatsRegistry,
    shared: Arc<Shared>,
    /// Lock class: `tcp.listeners` ([`lock_order::TCP_LISTENERS`]).
    listeners: Mutex<HashMap<NodeId, ListenerHandle>>,
    /// Lock class: `tcp.conns` ([`lock_order::TCP_CONNS`]).
    conns: Mutex<HashMap<(NodeId, NodeId), Arc<Conn>>>,
    next_link_id: AtomicU64,
    shaper: Shaper,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Creates a transport with no bandwidth limit. Listeners are bound
    /// lazily, one per node, on `127.0.0.1` ephemeral ports.
    pub fn new() -> Self {
        TcpTransport {
            stats: StatsRegistry::default(),
            shared: Arc::new(Shared::default()),
            listeners: Mutex::new(&lock_order::TCP_LISTENERS, HashMap::new()),
            conns: Mutex::new(&lock_order::TCP_CONNS, HashMap::new()),
            next_link_id: AtomicU64::new(1),
            shaper: Shaper::default(),
        }
    }

    /// Creates a transport where every link is throttled to `bytes_per_sec`
    /// by a token bucket, approximating the paper's per-link 1 Gb/s testbed
    /// on the loopback device.
    pub fn with_rate_limit(bytes_per_sec: u64) -> Self {
        let mut transport = TcpTransport::new();
        transport.shaper = Shaper::flat(bytes_per_sec);
        transport
    }

    /// Creates a transport whose links are shaped per directed node pair by
    /// the topology's bandwidth model ([`Topology::bandwidth`]), so a
    /// heterogeneous cluster is reproduced on loopback sockets. All links
    /// over one pair share one bucket — matching the connection reuse, which
    /// also keys by directed pair.
    pub fn with_topology(topology: Arc<Topology>) -> Self {
        let mut transport = TcpTransport::new();
        transport.shaper = Shaper::topology(topology);
        transport
    }

    /// Re-rates one directed pair's shared bucket at runtime
    /// (topology-shaped transports only), throttling streams already in
    /// flight — the fault-injection hook behind the mid-stream
    /// link-degradation tests. Returns whether the transport shapes per
    /// pair.
    pub fn set_link_rate(&self, src: NodeId, dst: NodeId, bytes_per_sec: u64) -> bool {
        self.shaper.set_link_rate(src, dst, bytes_per_sec)
    }

    /// The loopback address a node's listener is bound to (binding it first
    /// if needed).
    fn listener_addr(&self, node: NodeId) -> std::io::Result<SocketAddr> {
        let mut listeners = self.listeners.lock();
        if let Some(handle) = listeners.get(&node) {
            return Ok(handle.addr);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = self.shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(listener, shared));
        listeners.insert(
            node,
            ListenerHandle {
                addr,
                accept_thread: Some(accept_thread),
            },
        );
        Ok(addr)
    }

    /// The reusable connection for a directed node pair (established on
    /// first use; every later link between the pair shares it).
    fn conn(&self, src: NodeId, dst: NodeId) -> std::io::Result<Arc<Conn>> {
        if let Some(conn) = self.conns.lock().get(&(src, dst)) {
            return Ok(conn.clone());
        }
        let addr = self.listener_addr(dst)?;
        let mut conns = self.conns.lock();
        // Double-checked: another thread may have connected meanwhile.
        if let Some(conn) = conns.get(&(src, dst)) {
            return Ok(conn.clone());
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let conn = Arc::new(Conn {
            writer: Mutex::new(&lock_order::TCP_WRITER, stream.try_clone()?),
            stream,
        });
        conn.write_frame(OP_HELLO, src as u64, dst as u64, 0, 0, &[])?;
        conns.insert((src, dst), conn.clone());
        Ok(conn)
    }
}

impl Transport for TcpTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        let stats = self.stats.register(src, dst);
        let link_id = self.next_link_id.fetch_add(1, Ordering::Relaxed);
        let link = Arc::new(LinkState::new(capacity));
        let conn = self
            .conn(src, dst)
            .map_err(|e| format!("tcp transport setup for link {src}->{dst} failed: {e}"));
        if conn.is_err() {
            // No data can ever arrive; unblock the receiver immediately and
            // let the sender report the setup failure on first use.
            link.close_sender();
        }
        self.shared
            .table
            .register((src, dst), link_id, link.clone());
        let bucket = self.shaper.bucket(src, dst);
        (
            SliceSender {
                inner: Box::new(TcpTx {
                    conn,
                    pair: (src, dst),
                    link_id,
                    link: link.clone(),
                    shared: self.shared.clone(),
                    bucket,
                }),
                stats,
            },
            SliceReceiver {
                inner: Box::new(FramedRx {
                    pair: (src, dst),
                    link_id,
                    link,
                    table: self.shared.table.clone(),
                }),
            },
        )
    }

    fn stats(&self) -> &StatsRegistry {
        &self.stats
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.set();
        // Unblock any straggling senders/receivers.
        self.shared.table.close_all();
        // Tear down connections; reader threads wake with EOF/error.
        for conn in self.conns.lock().values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Wake each accept loop with a throwaway connection, then join.
        let mut listeners = self.listeners.lock();
        for handle in listeners.values_mut() {
            let _ = TcpStream::connect(handle.addr);
            if let Some(t) = handle.accept_thread.take() {
                let _ = t.join();
            }
        }
        let readers = std::mem::take(&mut *self.shared.reader_threads.lock());
        for t in readers {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while let Ok((stream, _)) = listener.accept() {
        if shared.shutdown.is_set() {
            break;
        }
        stream.set_nodelay(true).ok();
        let shared_for_reader = shared.clone();
        let reader = std::thread::spawn(move || reader_loop(stream, shared_for_reader));
        shared.reader_threads.lock().push(reader);
    }
}

/// Consumes frames from one accepted connection and routes them to the
/// in-process link queues.
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let mut pair: Option<(NodeId, NodeId)> = None;
    // Ends on EOF or a reset: the peer (or the transport's Drop) tore the
    // connection down; every link it fed is finished.
    while let Ok(frame) = read_frame(&mut stream) {
        match frame.opcode {
            OP_HELLO => {
                pair = Some((frame.link as NodeId, frame.index as NodeId));
            }
            OP_DATA | OP_EOS => shared.table.dispatch(frame),
            _ => break,
        }
    }
    if let Some((src, dst)) = pair {
        shared.table.close_conn_links(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn roundtrip_over_a_socket() {
        let transport = TcpTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"hello")).tagged(5, 3))
            .unwrap();
        tx.send(SliceMsg::new(1, Bytes::from_static(b"world")))
            .unwrap();
        let first = rx.recv().unwrap();
        assert_eq!(first.index, 0);
        assert_eq!((first.stripe, first.repair), (5, 3));
        assert_eq!(first.data, Bytes::from_static(b"hello"));
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"world"));
        drop(tx);
        assert!(rx.recv().is_none());
        assert_eq!(transport.link_bytes(0, 1), 10);
    }

    #[test]
    fn connections_are_reused_across_links() {
        let transport = TcpTransport::new();
        let (tx1, rx1) = transport.link(2, 3, 2);
        let (tx2, rx2) = transport.link(2, 3, 2);
        tx1.send(SliceMsg::new(0, Bytes::from_static(b"a")))
            .unwrap();
        tx2.send(SliceMsg::new(0, Bytes::from_static(b"b")))
            .unwrap();
        assert_eq!(rx1.recv().unwrap().data, Bytes::from_static(b"a"));
        assert_eq!(rx2.recv().unwrap().data, Bytes::from_static(b"b"));
        assert_eq!(transport.conns.lock().len(), 1);
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let transport = TcpTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(rx);
        assert!(matches!(
            tx.send(SliceMsg::new(0, Bytes::new())),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn finished_links_are_reclaimed() {
        let transport = TcpTransport::new();
        for i in 0..10 {
            let (tx, rx) = transport.link(0, 1, 2);
            tx.send(SliceMsg::new(i, Bytes::from_static(b"p"))).unwrap();
            rx.recv().unwrap();
            drop((tx, rx));
        }
        // Both halves gone → no per-link state left behind.
        assert!(transport.shared.table.links.lock().is_empty());
        assert!(transport
            .shared
            .table
            .conn_links
            .lock()
            .values()
            .all(|ids| ids.is_empty()));
    }

    #[test]
    fn shutdown_is_clean_with_open_links() {
        let transport = TcpTransport::new();
        let (tx, rx) = transport.link(0, 1, 2);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"x"))).unwrap();
        let _ = rx.recv();
        drop((tx, rx));
        drop(transport); // must not hang or panic
    }
}
