//! The reactor transport backend: slices move over nonblocking localhost
//! sockets multiplexed by a fixed pool of epoll threads (`ecpipe-reactor`).
//!
//! Byte-for-byte the same protocol as [`TcpTransport`](super::TcpTransport)
//! — the wire format lives in [`wire`](super::wire), the credit-based link
//! flow control in [`framed`](super::framed), and the conformance suites
//! run over both — but the threading model is inverted. Where the TCP
//! backend parks one accept thread per listener and one reader thread per
//! accepted connection, this backend registers every socket (listeners and
//! connections alike) with one [`Reactor`]: a handful of poll threads serve
//! arbitrarily many nodes and connections, which is what lets a load
//! harness push thousands of concurrent client operations without thread
//! counts growing with the cluster.
//!
//! # Data flow
//!
//! *Send path (caller threads).* A sender passes the link's credit gate,
//! pays the token bucket, then locks the connection's outbound buffer: if
//! the buffer is empty it writes directly to the nonblocking socket and
//! queues only the remainder a full socket refuses (arming writable
//! interest); otherwise it appends — FIFO order is preserved, so `EOS`
//! always trails the data it follows. Senders block briefly on a high-water
//! mark so an unbounded burst cannot balloon the buffer.
//!
//! *Flush path (reactor threads).* When the socket turns writable the
//! reactor drains the outbound buffer, disarms writable interest once
//! empty, and wakes any sender parked on the watermark.
//!
//! *Receive path (reactor threads).* When an accepted socket turns readable
//! the reactor reads until `WouldBlock`, feeds an incremental
//! [`FrameDecoder`](super::wire::FrameDecoder), and dispatches the complete
//! frames to their link queues — where [`FramedRx`] receivers (caller
//! threads) pop them exactly as they do for the TCP backend. On EOF the
//! connection deregisters itself and every link it fed is sender-closed.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use ecpipe_reactor::{Interest, Reactor, Readiness, Registration, Source};
use ecpipe_sync::{Condvar, Mutex};
use simnet::{NodeId, Topology};

use crate::lock_order;

use super::framed::{FramedRx, LinkState, LinkTable, WAIT_TICK};
use super::wire::{encode_header, FrameDecoder, HEADER_LEN, OP_DATA, OP_EOS, OP_HELLO};
use super::{
    Shaper, SliceMsg, SliceReceiver, SliceSender, SliceTx, StatsRegistry, TokenBucket, Transport,
    TransportError,
};

/// Poll threads per transport unless overridden — deliberately small: the
/// whole point is that the thread budget does not scale with nodes, links
/// or in-flight operations.
const DEFAULT_THREADS: usize = 2;

/// Once a connection's outbound buffer exceeds this, senders park until the
/// reactor drains it below — bounding per-connection memory when a peer's
/// socket stops accepting bytes.
const HIGH_WATER: usize = 1 << 20;

/// Read chunk size for the receive path.
const READ_CHUNK: usize = 64 * 1024;

/// Buffered bytes to write out, plus the connection's liveness.
struct OutboundState {
    buf: Vec<u8>,
    /// Write cursor into `buf`; compacted as the reactor drains it.
    start: usize,
    closed: bool,
}

impl OutboundState {
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// One outbound connection for a directed node pair, shared by every link
/// (and sender thread) between the pair.
struct OutboundConn {
    pair: (NodeId, NodeId),
    stream: TcpStream,
    /// Lock class: `rtransport.conn` ([`lock_order::RTRANSPORT_CONN`]).
    state: Mutex<OutboundState>,
    /// Senders park here when the buffer crosses [`HIGH_WATER`].
    drained: Condvar,
    /// The epoll registration slot; populated right after registration and
    /// taken by teardown.
    ///
    /// Lock class: `rtransport.conn_reg`
    /// ([`lock_order::RTRANSPORT_CONN_REG`]).
    registration: Mutex<Option<Registration>>,
}

impl OutboundConn {
    /// Arms or disarms writable interest. Called with the buffer state lock
    /// held, which makes the interest decision atomic with the buffer
    /// emptiness it is based on (the registration class ranks above the
    /// buffer class, so this nesting is legal).
    fn set_writable_interest(&self, writable: bool) {
        if let Some(reg) = self.registration.lock().as_ref() {
            let _ = reg.set_interest(Interest {
                readable: false,
                writable,
            });
        }
    }

    /// Writes one frame (header + payload), buffering whatever the socket
    /// refuses. Frames from concurrent senders never interleave: the buffer
    /// lock is held across both segments.
    fn write_frame(&self, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "reactor transport connection is closed",
            ));
        }
        for segment in [header, payload] {
            let mut offset = 0;
            // Direct-write only while nothing is queued ahead of us.
            if state.pending() == 0 {
                loop {
                    if offset == segment.len() {
                        break;
                    }
                    match (&self.stream).write(&segment[offset..]) {
                        Ok(0) => break,
                        Ok(n) => offset += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => {
                            state.closed = true;
                            self.drained.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
            if offset < segment.len() {
                state.buf.extend_from_slice(&segment[offset..]);
            }
        }
        if state.pending() > 0 {
            self.set_writable_interest(true);
            // High-water mark: hold senders until the reactor drains the
            // backlog (ticked, so a missed wakeup costs latency not
            // liveness).
            let state = self
                .drained
                .wait_while_tick(state, WAIT_TICK, |s| !s.closed && s.pending() > HIGH_WATER);
            if state.closed {
                return Err(std::io::Error::new(
                    ErrorKind::BrokenPipe,
                    "reactor transport connection closed while flushing",
                ));
            }
        }
        Ok(())
    }

    /// Drains the outbound buffer into the socket (reactor thread). Returns
    /// `true` once the connection is dead and should be evicted.
    fn flush(&self, peer_closed: bool) -> bool {
        let mut state = self.state.lock();
        if peer_closed {
            state.closed = true;
        }
        while !state.closed && state.pending() > 0 {
            let start = state.start;
            match (&self.stream).write(&state.buf[start..]) {
                Ok(0) => state.closed = true,
                Ok(n) => {
                    state.start += n;
                    if state.start == state.buf.len() {
                        state.buf.clear();
                        state.start = 0;
                    } else if state.start >= state.buf.len() / 2 {
                        // Compact once the drained prefix dominates, so a
                        // long-lived backlog can't grow the buffer without
                        // bound.
                        let start = state.start;
                        state.buf.drain(..start);
                        state.start = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => state.closed = true,
            }
        }
        if state.closed || state.pending() == 0 {
            self.set_writable_interest(false);
        }
        self.drained.notify_all();
        state.closed
    }

    /// Marks the connection dead, wakes parked senders, detaches it from
    /// the reactor and shuts the socket down. Idempotent.
    fn teardown(&self) {
        {
            let mut state = self.state.lock();
            state.closed = true;
        }
        self.drained.notify_all();
        let registration = self.registration.lock().take();
        drop(registration);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// The readiness callback for an outbound connection: flush on writable,
/// evict on error/hangup. Kept separate from [`OutboundConn`] so the
/// registration can live *inside* the connection (the dispatch table holds
/// this thin wrapper, not the connection that owns the registration —
/// otherwise neither could ever drop).
struct FlushSource {
    conn: Arc<OutboundConn>,
    conns: Weak<Mutex<ConnTable>>,
}

impl Source for FlushSource {
    fn on_ready(&self, readiness: Readiness) {
        let dead = self.conn.flush(readiness.closed);
        if dead {
            if let Some(conns) = self.conns.upgrade() {
                evict_outbound(&conns, &self.conn);
            }
            self.conn.teardown();
        }
    }
}

/// Parser state of one accepted (inbound) connection.
struct InboundState {
    decoder: FrameDecoder,
    /// The `(src, dst)` pair announced by the HELLO frame.
    pair: Option<(NodeId, NodeId)>,
    finished: bool,
}

/// One accepted connection: reads frames and routes them to link queues.
struct InboundConn {
    id: u64,
    stream: TcpStream,
    /// Lock class: `rtransport.conn` ([`lock_order::RTRANSPORT_CONN`]).
    state: Mutex<InboundState>,
    table: Arc<LinkTable>,
    conns: Weak<Mutex<ConnTable>>,
}

impl Source for InboundConn {
    fn on_ready(&self, readiness: Readiness) {
        let mut frames = Vec::new();
        let finished;
        let pair;
        {
            let mut state = self.state.lock();
            if state.finished {
                return;
            }
            if readiness.readable {
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match (&self.stream).read(&mut chunk) {
                        Ok(0) => {
                            state.finished = true;
                            break;
                        }
                        Ok(n) => state.decoder.extend(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            state.finished = true;
                            break;
                        }
                    }
                }
            } else if readiness.closed {
                state.finished = true;
            }
            while let Some(frame) = state.decoder.next_frame() {
                if frame.opcode == OP_HELLO {
                    state.pair = Some((frame.link as NodeId, frame.index as NodeId));
                } else {
                    frames.push(frame);
                }
            }
            finished = state.finished;
            pair = state.pair;
        }
        // Dispatch outside the connection lock: pushing into link queues
        // takes the (higher-ranked) link locks and wakes receivers.
        for frame in frames {
            self.table.dispatch(frame);
        }
        if finished {
            // Deregister first (dropping the registration ends dispatch to
            // this source), then close every link the connection fed.
            if let Some(conns) = self.conns.upgrade() {
                conns.lock().inbound.remove(&self.id);
            }
            let _ = self.stream.shutdown(Shutdown::Both);
            if let Some((src, dst)) = pair {
                self.table.close_conn_links(src, dst);
            }
        }
    }
}

/// The accept callback for one node's listener: drains the accept queue,
/// registering each new connection with the reactor.
struct AcceptSource {
    listener: TcpListener,
    reactor: Weak<Reactor>,
    conns: Weak<Mutex<ConnTable>>,
    table: Arc<LinkTable>,
}

impl Source for AcceptSource {
    fn on_ready(&self, _readiness: Readiness) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let (Some(reactor), Some(conns)) = (self.reactor.upgrade(), self.conns.upgrade())
            else {
                return;
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let mut conn_table = conns.lock();
            let id = conn_table.next_inbound;
            conn_table.next_inbound += 1;
            let inbound = Arc::new(InboundConn {
                id,
                stream,
                state: Mutex::new(
                    &lock_order::RTRANSPORT_CONN,
                    InboundState {
                        decoder: FrameDecoder::default(),
                        pair: None,
                        finished: false,
                    },
                ),
                table: self.table.clone(),
                conns: Arc::downgrade(&conns),
            });
            let fd = inbound.stream.as_raw_fd();
            match reactor.register(fd, Interest::READABLE, inbound.clone() as _) {
                Ok(registration) => {
                    conn_table.inbound.insert(
                        id,
                        InboundEntry {
                            conn: inbound,
                            _registration: registration,
                        },
                    );
                }
                Err(_) => {
                    let _ = inbound.stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

struct InboundEntry {
    conn: Arc<InboundConn>,
    /// Dropping the entry deregisters the socket.
    _registration: Registration,
}

struct Listener {
    addr: SocketAddr,
    /// Dropping the handle deregisters the listener; the socket itself is
    /// owned by the [`AcceptSource`] in the reactor's dispatch table.
    _registration: Registration,
}

/// Every live connection of the transport, inbound and outbound, under one
/// lock.
struct ConnTable {
    outbound: HashMap<(NodeId, NodeId), Arc<OutboundConn>>,
    inbound: HashMap<u64, InboundEntry>,
    next_inbound: u64,
}

/// Removes `conn` from the outbound cache if it is still the cached entry
/// for its pair (a reconnect may already have replaced it).
fn evict_outbound(conns: &Mutex<ConnTable>, conn: &Arc<OutboundConn>) {
    let mut table = conns.lock();
    if let Some(current) = table.outbound.get(&conn.pair) {
        if Arc::ptr_eq(current, conn) {
            table.outbound.remove(&conn.pair);
        }
    }
}

struct ReactorTx {
    /// The shared connection, or the socket-setup failure that prevented
    /// it (surfaced per-send, mirroring the TCP backend).
    conn: Result<Arc<OutboundConn>, String>,
    pair: (NodeId, NodeId),
    link_id: u64,
    link: Arc<LinkState>,
    table: Arc<LinkTable>,
    bucket: Option<Arc<TokenBucket>>,
}

impl SliceTx for ReactorTx {
    fn send(&self, msg: SliceMsg) -> Result<(), TransportError> {
        let conn = self
            .conn
            .as_ref()
            .map_err(|reason| TransportError::Io(std::io::Error::other(reason.clone())))?;
        // Credit gate: block until the receiver has drained below capacity.
        {
            let inner = self.link.inner.lock();
            let mut inner = self
                .link
                .writable
                .wait_while_tick(inner, WAIT_TICK, |s| !s.receiver_closed && s.credits == 0);
            if inner.receiver_closed {
                return Err(TransportError::Disconnected);
            }
            inner.credits -= 1;
        }
        if let Some(bucket) = &self.bucket {
            bucket.take(HEADER_LEN + msg.data.len());
        }
        let header = encode_header(
            OP_DATA,
            self.link_id,
            msg.index as u64,
            msg.stripe,
            msg.repair,
            msg.data.len() as u32,
        );
        conn.write_frame(&header, &msg.data)
            .map_err(TransportError::Io)
    }
}

impl Drop for ReactorTx {
    fn drop(&mut self) {
        // Graceful end-of-stream: the EOS frame joins the same buffer the
        // DATA frames went through, so it arrives after them.
        if let Ok(conn) = &self.conn {
            let header = encode_header(OP_EOS, self.link_id, 0, 0, 0, 0);
            let _ = conn.write_frame(&header, &[]);
        }
        self.table
            .release_link_half(self.pair, self.link_id, &self.link, true);
    }
}

/// The event-driven socket backend: the same framed protocol, credit
/// backpressure and token-bucket shaping as
/// [`TcpTransport`](super::TcpTransport), served by a
/// fixed pool of epoll threads instead of a thread per listener and
/// connection. See the module docs for the data flow.
pub struct ReactorTransport {
    stats: StatsRegistry,
    table: Arc<LinkTable>,
    /// Lock class: `rtransport.listeners`
    /// ([`lock_order::RTRANSPORT_LISTENERS`]).
    listeners: Mutex<HashMap<NodeId, Listener>>,
    /// Lock class: `rtransport.conns` ([`lock_order::RTRANSPORT_CONNS`]).
    conns: Arc<Mutex<ConnTable>>,
    next_link_id: AtomicU64,
    shaper: Shaper,
    /// Declared last: registrations in the tables above must drop before
    /// the pool they point into (transport `Drop` also tears down
    /// explicitly; the field order is the backstop).
    reactor: Arc<Reactor>,
}

impl Default for ReactorTransport {
    fn default() -> Self {
        ReactorTransport::new()
    }
}

impl ReactorTransport {
    /// Creates a transport served by the default small reactor pool.
    ///
    /// # Panics
    ///
    /// Panics if the reactor's epoll instances or threads cannot be
    /// created — an environment error (fd/thread exhaustion) with nothing
    /// sensible to degrade to.
    pub fn new() -> Self {
        ReactorTransport::with_threads(DEFAULT_THREADS)
    }

    /// Creates a transport served by exactly `threads` poll threads
    /// (clamped to at least one). The budget is fixed for the transport's
    /// lifetime regardless of how many nodes, connections or links it
    /// carries.
    ///
    /// # Panics
    ///
    /// Panics if the reactor's epoll instances or threads cannot be
    /// created.
    pub fn with_threads(threads: usize) -> Self {
        let reactor =
            Arc::new(Reactor::new(threads).expect("create epoll reactor for ReactorTransport"));
        ReactorTransport {
            stats: StatsRegistry::default(),
            table: Arc::new(LinkTable::default()),
            listeners: Mutex::new(&lock_order::RTRANSPORT_LISTENERS, HashMap::new()),
            conns: Arc::new(Mutex::new(
                &lock_order::RTRANSPORT_CONNS,
                ConnTable {
                    outbound: HashMap::new(),
                    inbound: HashMap::new(),
                    next_inbound: 0,
                },
            )),
            next_link_id: AtomicU64::new(1),
            shaper: Shaper::default(),
            reactor,
        }
    }

    /// Creates a transport where every link is throttled to `bytes_per_sec`
    /// by a token bucket — the same shaping as the other backends.
    pub fn with_rate_limit(bytes_per_sec: u64) -> Self {
        let mut transport = ReactorTransport::new();
        transport.shaper = Shaper::flat(bytes_per_sec);
        transport
    }

    /// Creates a transport whose links are shaped per directed node pair by
    /// the topology's bandwidth model ([`Topology::bandwidth`]); all links
    /// over one pair share one bucket, matching the connection reuse.
    pub fn with_topology(topology: Arc<Topology>) -> Self {
        let mut transport = ReactorTransport::new();
        transport.shaper = Shaper::topology(topology);
        transport
    }

    /// Re-rates one directed pair's shared bucket at runtime
    /// (topology-shaped transports only). Returns whether the transport
    /// shapes per pair.
    pub fn set_link_rate(&self, src: NodeId, dst: NodeId, bytes_per_sec: u64) -> bool {
        self.shaper.set_link_rate(src, dst, bytes_per_sec)
    }

    /// The fixed number of reactor threads serving this transport.
    pub fn reactor_threads(&self) -> usize {
        self.reactor.thread_count()
    }

    /// Fault-injection hook: severs the cached connection for a directed
    /// pair, as if the peer process restarted. In-flight senders on the
    /// pair fail; receivers see end-of-stream; the *next* link over the
    /// pair transparently reconnects. Returns whether a connection existed.
    pub fn disconnect_pair(&self, src: NodeId, dst: NodeId) -> bool {
        let conn = self.conns.lock().outbound.remove(&(src, dst));
        match conn {
            Some(conn) => {
                conn.teardown();
                true
            }
            None => false,
        }
    }

    /// The loopback address a node's listener is bound to (binding and
    /// registering it first if needed).
    fn listener_addr(&self, node: NodeId) -> std::io::Result<SocketAddr> {
        let mut listeners = self.listeners.lock();
        if let Some(listener) = listeners.get(&node) {
            return Ok(listener.addr);
        }
        let socket = TcpListener::bind("127.0.0.1:0")?;
        socket.set_nonblocking(true)?;
        let addr = socket.local_addr()?;
        let fd = socket.as_raw_fd();
        let source = Arc::new(AcceptSource {
            listener: socket,
            reactor: Arc::downgrade(&self.reactor),
            conns: Arc::downgrade(&self.conns),
            table: self.table.clone(),
        });
        let registration = self.reactor.register(fd, Interest::READABLE, source)?;
        listeners.insert(
            node,
            Listener {
                addr,
                _registration: registration,
            },
        );
        Ok(addr)
    }

    /// The reusable outbound connection for a directed node pair
    /// (established on first use; every later link between the pair shares
    /// it).
    fn conn(&self, src: NodeId, dst: NodeId) -> std::io::Result<Arc<OutboundConn>> {
        if let Some(conn) = self.conns.lock().outbound.get(&(src, dst)) {
            return Ok(conn.clone());
        }
        let addr = self.listener_addr(dst)?;
        let mut conns = self.conns.lock();
        // Double-checked: another thread may have connected meanwhile.
        if let Some(conn) = conns.outbound.get(&(src, dst)) {
            return Ok(conn.clone());
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        let conn = Arc::new(OutboundConn {
            pair: (src, dst),
            stream,
            state: Mutex::new(
                &lock_order::RTRANSPORT_CONN,
                OutboundState {
                    buf: Vec::new(),
                    start: 0,
                    closed: false,
                },
            ),
            drained: Condvar::new(),
            registration: Mutex::new(&lock_order::RTRANSPORT_CONN_REG, None),
        });
        // Registered with no interest armed: hangup/error events still
        // surface (so a dead peer evicts the connection), and writable
        // interest is armed only while the outbound buffer has bytes.
        let registration = self.reactor.register(
            conn.stream.as_raw_fd(),
            Interest {
                readable: false,
                writable: false,
            },
            Arc::new(FlushSource {
                conn: conn.clone(),
                conns: Arc::downgrade(&self.conns),
            }),
        )?;
        *conn.registration.lock() = Some(registration);
        let hello = encode_header(OP_HELLO, src as u64, dst as u64, 0, 0, 0);
        conn.write_frame(&hello, &[])?;
        conns.outbound.insert((src, dst), conn.clone());
        Ok(conn)
    }
}

impl Transport for ReactorTransport {
    fn link(&self, src: NodeId, dst: NodeId, capacity: usize) -> (SliceSender, SliceReceiver) {
        let stats = self.stats.register(src, dst);
        let link_id = self.next_link_id.fetch_add(1, Ordering::Relaxed);
        let link = Arc::new(LinkState::new(capacity));
        let conn = self
            .conn(src, dst)
            .map_err(|e| format!("reactor transport setup for link {src}->{dst} failed: {e}"));
        if conn.is_err() {
            // No data can ever arrive; unblock the receiver immediately and
            // let the sender report the setup failure on first use.
            link.close_sender();
        }
        self.table.register((src, dst), link_id, link.clone());
        let bucket = self.shaper.bucket(src, dst);
        (
            SliceSender {
                inner: Box::new(ReactorTx {
                    conn,
                    pair: (src, dst),
                    link_id,
                    link: link.clone(),
                    table: self.table.clone(),
                    bucket,
                }),
                stats,
            },
            SliceReceiver {
                inner: Box::new(FramedRx {
                    pair: (src, dst),
                    link_id,
                    link,
                    table: self.table.clone(),
                }),
            },
        )
    }

    fn stats(&self) -> &StatsRegistry {
        &self.stats
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        // Unblock any straggling senders/receivers.
        self.table.close_all();
        // Tear down every connection: outbound teardown wakes parked
        // senders and deregisters; clearing the tables drops the inbound
        // registrations. The entries (and their sources in the reactor's
        // dispatch tables) die with the registrations.
        let (outbound, inbound) = {
            let mut conns = self.conns.lock();
            (
                std::mem::take(&mut conns.outbound),
                std::mem::take(&mut conns.inbound),
            )
        };
        for conn in outbound.values() {
            conn.teardown();
        }
        for entry in inbound.values() {
            let _ = entry.conn.stream.shutdown(Shutdown::Both);
        }
        drop(inbound);
        // Deregister the listeners, then the reactor (the last Arc) joins
        // its poll threads on drop.
        self.listeners.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn roundtrip_over_a_reactor_socket() {
        let transport = ReactorTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"hello")).tagged(5, 3))
            .unwrap();
        tx.send(SliceMsg::new(1, Bytes::from_static(b"world")))
            .unwrap();
        let first = rx.recv().unwrap();
        assert_eq!(first.index, 0);
        assert_eq!((first.stripe, first.repair), (5, 3));
        assert_eq!(first.data, Bytes::from_static(b"hello"));
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"world"));
        drop(tx);
        assert!(rx.recv().is_none());
        assert_eq!(transport.link_bytes(0, 1), 10);
    }

    #[test]
    fn connections_are_reused_across_links() {
        let transport = ReactorTransport::new();
        let (tx1, rx1) = transport.link(2, 3, 2);
        let (tx2, rx2) = transport.link(2, 3, 2);
        tx1.send(SliceMsg::new(0, Bytes::from_static(b"a")))
            .unwrap();
        tx2.send(SliceMsg::new(0, Bytes::from_static(b"b")))
            .unwrap();
        assert_eq!(rx1.recv().unwrap().data, Bytes::from_static(b"a"));
        assert_eq!(rx2.recv().unwrap().data, Bytes::from_static(b"b"));
        assert_eq!(transport.conns.lock().outbound.len(), 1);
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let transport = ReactorTransport::new();
        let (tx, rx) = transport.link(0, 1, 1);
        drop(rx);
        assert!(matches!(
            tx.send(SliceMsg::new(0, Bytes::new())),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn finished_links_are_reclaimed() {
        let transport = ReactorTransport::new();
        for i in 0..10 {
            let (tx, rx) = transport.link(0, 1, 2);
            tx.send(SliceMsg::new(i, Bytes::from_static(b"p"))).unwrap();
            rx.recv().unwrap();
            drop((tx, rx));
        }
        // Both halves gone → no per-link state left behind.
        assert!(transport.table.links.lock().is_empty());
        assert!(transport
            .table
            .conn_links
            .lock()
            .values()
            .all(|ids| ids.is_empty()));
    }

    #[test]
    fn thread_budget_does_not_grow_with_links() {
        let transport = ReactorTransport::with_threads(2);
        assert_eq!(transport.reactor_threads(), 2);
        let mut links = Vec::new();
        for node in 1..9 {
            links.push(transport.link(0, node, 2));
        }
        for (i, (tx, rx)) in links.iter().enumerate() {
            tx.send(SliceMsg::new(i, Bytes::from_static(b"z"))).unwrap();
            assert_eq!(rx.recv().unwrap().index, i);
        }
        // Still exactly two poll threads, eight nodes later.
        assert_eq!(transport.reactor_threads(), 2);
    }

    #[test]
    fn large_bursts_flush_through_the_reactor() {
        let transport = ReactorTransport::new();
        let (tx, rx) = transport.link(0, 1, 64);
        // Push well past socket buffers so the writable path must engage.
        let payload = Bytes::from(vec![7u8; 256 * 1024]);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..32 {
                    tx.send(SliceMsg::new(i, payload.clone())).unwrap();
                }
            });
            for i in 0..32 {
                let msg = rx.recv().unwrap();
                assert_eq!(msg.index, i);
                assert_eq!(msg.data.len(), 256 * 1024);
                assert!(msg.data.iter().all(|&b| b == 7));
            }
        });
        assert_eq!(transport.link_bytes(0, 1), 32 * 256 * 1024);
    }

    #[test]
    fn disconnect_pair_fails_senders_and_reconnects() {
        let transport = ReactorTransport::new();
        let (tx, rx) = transport.link(0, 1, 4);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"pre")))
            .unwrap();
        assert_eq!(rx.recv().unwrap().data, Bytes::from_static(b"pre"));
        assert!(transport.disconnect_pair(0, 1));
        assert!(!transport.disconnect_pair(0, 1), "already severed");
        // The old sender's connection is dead.
        let mut failed = false;
        for i in 0..50 {
            match tx.send(SliceMsg::new(i, Bytes::from_static(b"x"))) {
                Err(TransportError::Io(_)) => {
                    failed = true;
                    break;
                }
                Err(TransportError::Disconnected) => {
                    failed = true;
                    break;
                }
                Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(failed, "sends on a severed connection must start failing");
        // A fresh link transparently reconnects.
        let (tx2, rx2) = transport.link(0, 1, 4);
        tx2.send(SliceMsg::new(9, Bytes::from_static(b"post")))
            .unwrap();
        assert_eq!(rx2.recv().unwrap().data, Bytes::from_static(b"post"));
    }

    #[test]
    fn shutdown_is_clean_with_open_links() {
        let transport = ReactorTransport::new();
        let (tx, rx) = transport.link(0, 1, 2);
        tx.send(SliceMsg::new(0, Bytes::from_static(b"x"))).unwrap();
        let _ = rx.recv();
        drop((tx, rx));
        drop(transport); // must not hang or panic
    }
}
