//! The background scrubber: paced integrity walks that turn silent bit-rot
//! into queued repairs.
//!
//! Production systems (HDFS, QFS — the §5.2 integration targets) pair their
//! block files with checksums *and* a low-priority scanner, because a
//! checksum only helps once something reads the block; cold data can rot for
//! months before a repair path touches it. The scrubber closes that gap:
//! it walks every live node's store, re-reads each block (which, on a
//! [`ChecksummedStore`](crate::ChecksummedStore), verifies every chunk),
//! and enqueues each corrupt block as a
//! [`RepairPriority::Corruption`](super::RepairPriority) repair addressed
//! back to the node that served the rot — the reconstruction overwrites the
//! bad copy in place and refreshes its checksums. After the cycle's repairs
//! drain, every corrupt block is re-verified, and the whole cycle is folded
//! into the [`ManagerReport`](super::ManagerReport) as a
//! [`ScrubCycle`](super::ScrubCycle).
//!
//! Scanning is paced by the same token-bucket shaping the transports use
//! ([`ScrubConfig::rate`]), so a scrub shares disks and CPU with foreground
//! traffic instead of bursting through the whole cluster at once.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ecpipe_sync::OnceFlag;

use crate::cluster::Cluster;
use crate::transport::TokenBucket;
use crate::EcPipeError;

use super::metrics::ScrubCycle;
use super::workers::{CoordHandle, EngineState};

/// Pacing and cadence knobs for scrubbing.
#[derive(Debug, Clone)]
pub struct ScrubConfig {
    /// Scan rate in bytes per second, enforced with a token bucket (the
    /// same shaping the transports use). `None` scans at full speed.
    pub rate: Option<u64>,
    /// Pause between cycles when running as a background
    /// [`Scrubber`](super::Scrubber) thread.
    pub interval: Duration,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            rate: None,
            interval: Duration::from_millis(100),
        }
    }
}

impl ScrubConfig {
    /// Sets the scan-rate pacing in bytes per second.
    pub fn with_rate(mut self, bytes_per_sec: u64) -> Self {
        self.rate = Some(bytes_per_sec);
        self
    }
}

/// Runs one scrub cycle: walk every live node's blocks (paced), enqueue
/// corruption repairs for every block that fails verification, wait for
/// those repairs to drain, re-verify, and fold the cycle into the metrics.
///
/// `stop` (used by the background [`Scrubber`]) is checked between blocks,
/// so a paced cycle over a large cluster abandons the scan promptly instead
/// of holding a joining thread for the cycle's full token-bucket time;
/// repairs already enqueued still drain on the worker pool.
pub(crate) fn scrub_once<C: CoordHandle>(
    engine: &EngineState,
    coord: &C,
    cluster: &Cluster,
    config: &ScrubConfig,
    stop: Option<&OnceFlag>,
) -> ScrubCycle {
    let stopped = || stop.is_some_and(OnceFlag::is_set);
    let started = Instant::now();
    let bucket = config.rate.map(TokenBucket::new);
    let mut cycle = ScrubCycle::default();
    'scan: for node in 0..cluster.num_nodes() {
        if engine.liveness.is_dead(node) {
            continue;
        }
        let store = cluster.store(node);
        for block in store.list() {
            if stopped() {
                break 'scan;
            }
            // `get` verifies checksums on an integrity-aware store; plain
            // stores can only vouch for presence.
            match store.get(block) {
                Ok(data) => {
                    cycle.blocks_scanned += 1;
                    cycle.bytes_scanned += data.len() as u64;
                    if let Some(bucket) = &bucket {
                        bucket.take(data.len());
                    }
                }
                Err(EcPipeError::CorruptBlock { .. }) => {
                    cycle.blocks_scanned += 1;
                    cycle.corrupt.push(block);
                    if engine.submit_corruption(block, node) {
                        cycle.repairs_enqueued += 1;
                    }
                }
                // A block that vanished mid-scan (or an I/O hiccup) is the
                // liveness machinery's problem, not the scrubber's.
                Err(_) => {}
            }
        }
    }
    if !cycle.corrupt.is_empty() && !stopped() {
        // Let the cycle's corruption repairs (and anything racing them)
        // drain, then confirm each find is actually healed: a scrub that
        // cannot re-verify its repairs is just a detector.
        engine.wait_idle();
        for &block in &cycle.corrupt {
            // Verify wherever the coordinator maps the block now — a repair
            // may have relocated it.
            let holder = coord.with(|c| c.stripe(block.stripe).map(|m| m.node_of(block.index)));
            let healed = matches!(holder, Ok(node) if cluster.store(node).verify(block).is_ok());
            if healed {
                cycle.reverified_clean += 1;
            } else {
                cycle.still_corrupt.push(block);
            }
        }
    }
    cycle.duration = started.elapsed();
    engine.metrics.record_scrub_cycle(cycle.clone());
    cycle
}

/// A background scrubber thread, started with
/// [`RepairManager::start_scrubber`](super::RepairManager::start_scrubber).
/// Runs scrub cycles at the configured cadence until stopped (or until the
/// handle is dropped).
pub struct Scrubber {
    stop: Arc<OnceFlag>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    pub(crate) fn spawn<F>(name: &str, interval: Duration, mut cycle_fn: F) -> Self
    where
        F: FnMut(&OnceFlag) + Send + 'static,
    {
        let stop = Arc::new(OnceFlag::new());
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                while !stop_flag.is_set() {
                    cycle_fn(&stop_flag);
                    // Sleep in short ticks so stop() stays responsive even
                    // with a long cycle interval.
                    let deadline = Instant::now() + interval;
                    while !stop_flag.is_set() {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
                    }
                }
            })
            .expect("spawn scrubber thread");
        Scrubber {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the scrubber after its current cycle and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.set();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.shutdown();
    }
}
