//! The worker pool: admission gate, shared engine state and the per-worker
//! repair loop.
//!
//! Every worker runs [`worker_loop`]: pop the most urgent request, plan it
//! under the configured [`PathPolicy`] — flat least-recently-used helper
//! selection (§3.3), rack-aware selection (§4.2) or weighted selection over
//! live link telemetry (§4.3) — while excluding blocks on dead nodes, pass
//! the chosen nodes through the admission gate (per-node in-flight caps —
//! the runtime enforcement of the paper's "no overloaded helper"
//! scheduling), execute, and store the reconstructed block. A helper whose
//! block vanishes mid-flight earns a liveness strike and the repair is
//! re-planned with the survivors, generalizing
//! [`degraded_read_with_retry`](crate::recovery::degraded_read_with_retry);
//! with a [`LinkWatchConfig`] set, a path link measured below its nominal
//! bandwidth is handled the same way, minus the strike.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use ecc::stripe::BlockId;
use ecpipe_meta::{MetaRouter, RepairRecord};
use ecpipe_sync::{Condvar, Mutex, OnceFlag};
use repair::rack_aware;
use repair::weighted_path::optimal_path;
use simnet::{NodeId, Topology};

use crate::cluster::Cluster;
use crate::coordinator::{RepairDirective, SelectionPolicy};
use crate::exec;
use crate::lock_order;
use crate::telemetry::LinkTelemetry;
use crate::transport::Transport;
use crate::{Coordinator, EcPipeError, Result};

use super::liveness::Liveness;
use super::metrics::{FailedRepair, MetricsCollector, ReplanEvent, ReplanReason, SuccessRecord};
use super::queue::{QueuedRepair, RepairQueue, RepairRequest};
use super::{ManagerConfig, PathPolicy};

/// Shared access to the coordinator: the batch engine borrows the caller's
/// `&mut Coordinator`, the daemon owns one — both behind a lock.
pub(crate) trait CoordHandle: Sync {
    /// Runs `f` with exclusive access to the coordinator.
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator) -> R) -> R;
}

impl CoordHandle for Mutex<Coordinator> {
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator) -> R) -> R {
        let mut guard = self.lock();
        f(&mut guard)
    }
}

impl CoordHandle for Mutex<&mut Coordinator> {
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator) -> R) -> R {
        let mut guard = self.lock();
        f(&mut guard)
    }
}

/// Per-node in-flight caps: a repair may only start once every node it
/// involves (helpers and requestor) is below the cap, and it holds one slot
/// on each for its whole execution. All-or-nothing acquisition under a
/// single lock, so partial reservations (and therefore deadlocks) cannot
/// occur.
pub(crate) struct AdmissionGate {
    /// Lock class: `manager.gate` ([`lock_order::MANAGER_GATE`]). Held
    /// while recording in-flight metrics, so it ranks below
    /// `manager.metrics`.
    counts: Mutex<HashMap<NodeId, usize>>,
    freed: Condvar,
    cap: usize,
}

impl AdmissionGate {
    pub(crate) fn new(cap: usize) -> Self {
        AdmissionGate {
            counts: Mutex::new(&lock_order::MANAGER_GATE, HashMap::new()),
            freed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until every node in `nodes` is below the cap, then reserves
    /// one slot on each distinct node (duplicates in `nodes` are collapsed,
    /// so a node never holds more than one slot per repair and the cap
    /// invariant survives odd directives). The reservation is released when
    /// the guard drops.
    ///
    /// Admission is priority-agnostic: priorities order the *queue*, but a
    /// degraded read already blocked here competes with later arrivals for
    /// a freed slot on equal terms.
    fn acquire<'a>(&'a self, nodes: &[NodeId], metrics: &MetricsCollector) -> RoleGuard<'a> {
        let mut distinct = nodes.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let counts = self.counts.lock();
        let mut counts = self.freed.wait_while(counts, |c| {
            !distinct
                .iter()
                .all(|n| c.get(n).copied().unwrap_or(0) < self.cap)
        });
        for &n in &distinct {
            let slot = counts.entry(n).or_insert(0);
            *slot += 1;
            metrics.record_inflight(n, *slot);
        }
        RoleGuard {
            gate: self,
            nodes: distinct,
        }
    }
}

struct RoleGuard<'a> {
    gate: &'a AdmissionGate,
    nodes: Vec<NodeId>,
}

impl Drop for RoleGuard<'_> {
    fn drop(&mut self) {
        let mut counts = self.gate.counts.lock();
        for n in &self.nodes {
            if let Some(slot) = counts.get_mut(n) {
                *slot = slot.saturating_sub(1);
            }
        }
        drop(counts);
        self.gate.freed.notify_all();
    }
}

/// Everything the workers share: queue, gate, liveness, metrics, pending
/// accounting and the fail-fast machinery of batch mode.
pub(crate) struct EngineState {
    pub(crate) queue: RepairQueue,
    pub(crate) gate: AdmissionGate,
    pub(crate) liveness: Liveness,
    pub(crate) metrics: MetricsCollector,
    /// Batch mode: the first failure aborts the run. Daemon mode records
    /// failures and keeps serving.
    fail_fast: bool,
    abort: OnceFlag,
    /// Lock class: `engine.first_error`
    /// ([`lock_order::ENGINE_FIRST_ERROR`]). Held while closing the queue,
    /// so it ranks below `manager.queue`.
    first_error: Mutex<Option<EcPipeError>>,
    /// Requests enqueued but not yet completed (queued + in flight).
    /// Lock class: `engine.pending` ([`lock_order::ENGINE_PENDING`]).
    pending: Mutex<usize>,
    idle: Condvar,
    /// Blocks currently queued or in flight, so a block is never repaired
    /// twice concurrently (degraded read racing auto-recovery).
    /// Lock class: `engine.scheduled` ([`lock_order::ENGINE_SCHEDULED`]).
    scheduled: Mutex<HashSet<(u64, usize)>>,
    /// Notified whenever a block leaves `scheduled`, so callers can wait for
    /// one specific repair without draining the whole queue.
    scheduled_changed: Condvar,
    /// Round-robin requestor pool for auto-enqueued node recovery.
    auto_requestors: Vec<NodeId>,
    auto_rr: AtomicUsize,
    /// The metadata plane: accepted requests are journaled as pending
    /// repairs here (and resolved on completion), so a durable deployment
    /// re-enqueues whatever a crash interrupted.
    meta: Arc<MetaRouter>,
    /// Live link telemetry, present when the cluster has a topology
    /// attached. Topology-aware planning and the link watchdog consult it;
    /// without it both degrade to the flat behavior.
    pub(crate) telemetry: Option<LinkTelemetry>,
    /// Simulated power loss: once set, queued work is skipped and finished
    /// work is no longer resolved in the journal — the WAL keeps looking
    /// exactly as it would after `kill -9`.
    crashed: OnceFlag,
}

impl EngineState {
    pub(crate) fn new(
        config: &ManagerConfig,
        fail_fast: bool,
        meta: Arc<MetaRouter>,
        topology: Option<Arc<Topology>>,
    ) -> Self {
        EngineState {
            telemetry: topology.map(|t| LinkTelemetry::new(t, config.telemetry)),
            queue: RepairQueue::new(),
            gate: AdmissionGate::new(config.per_node_inflight_cap),
            liveness: Liveness::new(config.dead_after_misses, &config.known_dead),
            metrics: MetricsCollector::new(),
            fail_fast,
            abort: OnceFlag::new(),
            first_error: Mutex::new(&lock_order::ENGINE_FIRST_ERROR, None),
            pending: Mutex::new(&lock_order::ENGINE_PENDING, 0),
            idle: Condvar::new(),
            scheduled: Mutex::new(&lock_order::ENGINE_SCHEDULED, HashSet::new()),
            scheduled_changed: Condvar::new(),
            auto_requestors: config.auto_requestors.clone(),
            auto_rr: AtomicUsize::new(0),
            meta,
            crashed: OnceFlag::new(),
        }
    }

    /// Enqueues a request. `Ok(false)` means the block is already queued or
    /// in flight (the request is dropped); an error means the queue is
    /// closed.
    pub(crate) fn submit(&self, request: RepairRequest) -> Result<bool> {
        let key = (request.stripe.0, request.failed);
        if !self.scheduled.lock().insert(key) {
            return Ok(false);
        }
        *self.pending.lock() += 1;
        // Journal before the push (holding no locks): once the request can
        // run, a crash must find its record. Best effort — an unknown
        // stripe (hand-driven engines may enqueue before registering) goes
        // unjournaled, and on a closed queue the record stays pending: the
        // repair never ran, so a durable reopen re-enqueueing it is right.
        if let Ok(epoch) = self.meta.epoch_of(request.stripe) {
            let _ = self.meta.record_repair(RepairRecord {
                stripe: request.stripe,
                index: request.failed,
                requestor: request.requestor,
                priority: request.priority.tag(),
                epoch,
            });
        }
        if self.queue.push(request) {
            Ok(true)
        } else {
            self.unschedule(key);
            self.finish_pending();
            Err(EcPipeError::ManagerShutdown)
        }
    }

    /// Marks a repair's journal record resolved — it ran to an outcome
    /// (success, terminal failure, or stale rejection) and must not be
    /// re-enqueued by recovery. Skipped after a simulated crash.
    fn resolve_journal(&self, key: (u64, usize)) {
        if !self.crashed() {
            let _ = self
                .meta
                .resolve_repair(ecc::stripe::StripeId(key.0), key.1);
        }
    }

    /// Simulates power loss: stops serving (closing the queue) without
    /// resolving journaled repairs, so a durable reopen sees every queued
    /// and in-flight directive still pending.
    pub(crate) fn crash(&self) {
        self.crashed.set();
        self.queue.close();
    }

    pub(crate) fn crashed(&self) -> bool {
        self.crashed.is_set()
    }

    /// Removes a block from the scheduled set and wakes anyone waiting for
    /// that specific repair to finish.
    fn unschedule(&self, key: (u64, usize)) {
        self.scheduled.lock().remove(&key);
        self.scheduled_changed.notify_all();
    }

    /// Blocks until block `key.1` of stripe `key.0` is neither queued nor in
    /// flight. Returns immediately when the block was never scheduled; says
    /// nothing about whether the repair succeeded — callers re-read the
    /// store (or the metrics) to find out.
    pub(crate) fn wait_for(&self, key: (u64, usize)) {
        let scheduled = self.scheduled.lock();
        let _scheduled = self
            .scheduled_changed
            .wait_while(scheduled, |s| s.contains(&key));
    }

    /// Marks one request finished (successfully or not) and wakes
    /// `wait_idle` when everything has drained.
    fn finish_pending(&self) {
        let mut pending = self.pending.lock();
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until no request is queued or in flight.
    pub(crate) fn wait_idle(&self) {
        let pending = self.pending.lock();
        let _pending = self.idle.wait_while(pending, |p| *p > 0);
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.is_set()
    }

    fn abort_with(&self, error: EcPipeError) {
        let mut first = self.first_error.lock();
        if first.is_none() {
            *first = Some(error);
        }
        self.abort.set();
        self.queue.close();
    }

    /// The first error of a fail-fast run, if any.
    pub(crate) fn take_error(&self) -> Option<EcPipeError> {
        self.first_error.lock().take()
    }

    /// The next live requestor from the auto-recovery pool (round-robin).
    fn next_auto_requestor(&self) -> Option<NodeId> {
        for _ in 0..self.auto_requestors.len() {
            let i = self.auto_rr.fetch_add(1, Ordering::Relaxed) % self.auto_requestors.len();
            let candidate = self.auto_requestors[i];
            if !self.liveness.is_dead(candidate) {
                return Some(candidate);
            }
        }
        None
    }

    /// Enqueues an in-place corruption repair: reconstruct `block` onto
    /// `requestor` (normally the node serving the rotten copy, so the
    /// repair overwrites it and refreshes its checksums) at
    /// [`RepairPriority::Corruption`]. Returns whether the repair was newly
    /// queued — `false` when it is already queued/in flight, the requestor
    /// is dead, or the queue has closed (a fail-fast batch drains without
    /// accepting side work).
    pub(crate) fn submit_corruption(&self, block: BlockId, requestor: NodeId) -> bool {
        if self.liveness.is_dead(requestor) {
            return false;
        }
        matches!(
            self.submit(RepairRequest {
                stripe: block.stripe,
                failed: block.index,
                requestor,
                priority: super::queue::RepairPriority::Corruption,
            }),
            Ok(true)
        )
    }

    /// Enqueues a background repair for every stripe still mapping a block
    /// to `node` (called when a node is declared dead). Returns how many
    /// repairs were queued.
    pub(crate) fn enqueue_node_recovery<C: CoordHandle>(&self, coord: &C, node: NodeId) -> usize {
        if self.auto_requestors.is_empty() {
            return 0;
        }
        let affected = coord.with(|c| c.stripes_on_node(node));
        let mut queued = 0;
        for (stripe, failed) in affected {
            let Some(requestor) = self.next_auto_requestor() else {
                break;
            };
            let ok = self.submit(RepairRequest {
                stripe,
                failed,
                requestor,
                priority: super::queue::RepairPriority::Background,
            });
            if matches!(ok, Ok(true)) {
                queued += 1;
            }
        }
        queued
    }
}

/// A completed repair, as seen by the metrics layer.
struct Done {
    bytes: usize,
    replans: usize,
    /// The node that actually received the block (may differ from the
    /// request when the manager fell back to another requestor).
    requestor: NodeId,
    /// Every node that held a role (helpers + requestor).
    roles: Vec<NodeId>,
    /// The helper path of the final, successful attempt, in pipeline order.
    path: Vec<NodeId>,
    /// The weighted planner's bottleneck estimate for that path, if any.
    bottleneck: Option<f64>,
}

struct RepairFailure {
    error: EcPipeError,
    replans: usize,
}

/// Records a liveness strike against `node`; if this pushes it over the
/// death threshold, recovery of everything else it held is queued.
fn strike<C: CoordHandle>(engine: &EngineState, coord: &C, node: NodeId) {
    if engine.liveness.record_miss(node) {
        engine.enqueue_node_recovery(coord, node);
    }
}

/// The body of one worker thread: drains the queue until it is closed and
/// empty.
pub(crate) fn worker_loop<C, T>(
    engine: &EngineState,
    coord: &C,
    cluster: &Cluster,
    transport: &T,
    config: &ManagerConfig,
) where
    C: CoordHandle,
    T: Transport + ?Sized,
{
    while let Some(job) = engine.queue.pop() {
        let key = (job.request.stripe.0, job.request.failed);
        if engine.aborted() || engine.crashed() {
            // Skipped work is *not* resolved in the journal: after a crash
            // (or an aborted batch) the block still needs the repair, and a
            // durable reopen must re-enqueue it.
            engine.unschedule(key);
            engine.finish_pending();
            continue;
        }
        let queue_wait = job.enqueued.elapsed();
        let started_seq = engine.metrics.begin_repair();
        let started = Instant::now();
        match run_one(engine, coord, cluster, transport, config, &job) {
            Ok(done) => {
                engine.metrics.record_success(SuccessRecord {
                    stripe: job.request.stripe,
                    failed: job.request.failed,
                    requestor: done.requestor,
                    priority: job.request.priority,
                    queue_wait,
                    duration: started.elapsed(),
                    replans: done.replans,
                    started_seq,
                    bytes: done.bytes,
                    roles: &done.roles,
                    path: done.path,
                    bottleneck: done.bottleneck,
                });
            }
            Err(failure) => {
                if engine.fail_fast {
                    engine.abort_with(failure.error);
                } else {
                    engine.metrics.record_failure(FailedRepair {
                        stripe: job.request.stripe,
                        failed: job.request.failed,
                        requestor: job.request.requestor,
                        priority: job.request.priority,
                        error: failure.error.to_string(),
                        replans: failure.replans,
                    });
                }
            }
        }
        engine.resolve_journal(key);
        engine.unschedule(key);
        engine.finish_pending();
    }
}

/// A planned attempt: the directive plus what the planner knew about it.
struct PlannedRepair {
    directive: RepairDirective,
    /// The weighted planner's bottleneck-weight estimate for the chosen
    /// path, when one was computed.
    bottleneck: Option<f64>,
    /// A topology-aware policy had too few candidates (or no feasible
    /// path) and this attempt degraded to flat LRU selection.
    fell_back: bool,
}

/// Plans a repair under the configured [`PathPolicy`], excluding `excluded`
/// block indices and every block that sits on a dead node.
///
/// The topology-aware policies choose the `k` helpers *and* their pipeline
/// order up front — rack-aware per Algorithm 1, weighted per Algorithm 2
/// over the engine's live telemetry — then pin the coordinator's plan to
/// exactly that set by marking every other index unavailable (so the LRU
/// truncation never reorders the choice) and applying the path order.
fn plan_repair<C: CoordHandle>(
    engine: &EngineState,
    coord: &C,
    config: &ManagerConfig,
    request: &RepairRequest,
    requestor: NodeId,
    excluded: &[usize],
) -> Result<PlannedRepair> {
    coord.with(|c| {
        let locations = c.stripe(request.stripe)?.locations.clone();
        let mut unavailable = excluded.to_vec();
        for (index, &node) in locations.iter().enumerate() {
            if index != request.failed
                && !unavailable.contains(&index)
                && engine.liveness.is_dead(node)
            {
                unavailable.push(index);
            }
        }
        let mut bottleneck = None;
        let mut fell_back = false;
        let chosen: Option<Vec<NodeId>> = match (config.path_policy, &engine.telemetry) {
            (PathPolicy::Lru, _) | (_, None) => None,
            (policy, Some(telemetry)) => {
                let k = c.code().k();
                // Candidate helpers, mirroring plan_single_repair's filter:
                // not the failed block, not excluded/dead, not a block the
                // requestor already holds.
                let candidates: Vec<NodeId> = locations
                    .iter()
                    .enumerate()
                    .filter(|&(index, &node)| {
                        index != request.failed
                            && !unavailable.contains(&index)
                            && node != requestor
                    })
                    .map(|(_, &node)| node)
                    .collect();
                let selection = match policy {
                    PathPolicy::RackAware if candidates.len() >= k => Some(
                        rack_aware::select_path(telemetry.topology(), requestor, &candidates, k),
                    ),
                    PathPolicy::Weighted => {
                        optimal_path(telemetry, requestor, &candidates, k).map(|sel| {
                            bottleneck = Some(sel.bottleneck_weight);
                            sel.path
                        })
                    }
                    _ => None,
                };
                fell_back = selection.is_none();
                selection
            }
        };
        if let Some(order) = &chosen {
            // Pin the plan to exactly the chosen helpers: every other index
            // becomes unavailable, leaving plan_single_repair a helper set
            // of size k in which LRU has nothing left to decide.
            for (index, node) in locations.iter().enumerate() {
                if index != request.failed && !unavailable.contains(&index) && !order.contains(node)
                {
                    unavailable.push(index);
                }
            }
        }
        let directive = c.plan_single_repair(
            request.stripe,
            request.failed,
            requestor,
            &unavailable,
            SelectionPolicy::LeastRecentlyUsed,
        )?;
        let directive = match chosen {
            Some(order) => directive.with_path_order(&order),
            None => directive,
        };
        Ok(PlannedRepair {
            directive,
            bottleneck,
            fell_back,
        })
    })
}

/// Executes one request end to end, re-planning around helpers that die
/// mid-flight (up to `config.max_replans` times).
fn run_one<C, T>(
    engine: &EngineState,
    coord: &C,
    cluster: &Cluster,
    transport: &T,
    config: &ManagerConfig,
    job: &QueuedRepair,
) -> std::result::Result<Done, RepairFailure>
where
    C: CoordHandle,
    T: Transport + ?Sized,
{
    let request = &job.request;
    // Requestor candidates: the requested node first, then the
    // auto-recovery pool as fallbacks. A requestor that already holds
    // blocks of the stripe (e.g. after earlier relocations) can shrink the
    // candidate helper set below `k`; falling back to another requestor
    // keeps the block repairable. The sequential wrapper configures no
    // fallbacks, preserving the historical behavior exactly.
    let mut requestors: Vec<NodeId> = vec![request.requestor];
    for &candidate in &engine.auto_requestors {
        if !requestors.contains(&candidate) {
            requestors.push(candidate);
        }
    }
    if config.relocate_on_success {
        // When the repaired copy must take over the block's placement,
        // prefer requestors holding no *other* block of the stripe: the
        // coordinator refuses relocations that would co-locate two blocks,
        // which would leave the copy unplaceable and force a second repair
        // on the next read. Stable sort keeps the requested node first
        // among equally suitable candidates.
        let holders = coord
            .with(|c| c.stripe(request.stripe).map(|m| m.locations.clone()))
            .unwrap_or_default();
        requestors.sort_by_key(|r| {
            holders
                .iter()
                .enumerate()
                .any(|(i, &n)| i != request.failed && n == *r)
        });
    }
    let mut requestor_idx = 0usize;
    let mut excluded: Vec<usize> = Vec::new();
    let mut replans = 0usize;
    loop {
        // A requestor declared dead (possibly after this request was
        // enqueued) must not receive the block: storing onto a dead node
        // would count the repair as done while the data is already lost.
        while engine.liveness.is_dead(requestors[requestor_idx]) {
            if requestor_idx + 1 < requestors.len() {
                requestor_idx += 1;
            } else {
                return Err(RepairFailure {
                    error: EcPipeError::InvalidRequest {
                        reason: format!(
                            "every candidate requestor for block {} of stripe {} is dead",
                            request.failed, request.stripe.0
                        ),
                    },
                    replans,
                });
            }
        }
        let requestor = requestors[requestor_idx];
        // Fold the transport counters accumulated so far into the telemetry
        // before planning, so a weighted plan (and the watchdog's re-plan
        // after a degraded link) sees the freshest throughput estimates.
        if let Some(telemetry) = &engine.telemetry {
            telemetry.observe(transport.stats());
        }
        // Plan fresh on each attempt: after a helper loss the helper set
        // must shrink around the excluded block.
        let planned = match plan_repair(engine, coord, config, request, requestor, &excluded) {
            Ok(p) => p,
            Err(error @ EcPipeError::Planning(_)) => {
                if requestor_idx + 1 < requestors.len() {
                    requestor_idx += 1;
                    replans += 1;
                    continue;
                }
                return Err(RepairFailure { error, replans });
            }
            Err(error) => return Err(RepairFailure { error, replans }),
        };
        if planned.fell_back {
            engine.metrics.record_replan(ReplanEvent {
                stripe: request.stripe,
                failed: request.failed,
                reason: ReplanReason::PlanningFallback,
                node: None,
            });
        }
        let directive = planned.directive;
        let mut roles = directive.helper_nodes();
        roles.push(requestor);
        // The whole execution holds one admission slot per involved node;
        // the guard releases them even on failure.
        let (outcome, slow_link) = {
            let _roles_held = engine.gate.acquire(&roles, &engine.metrics);
            execute_watched(engine, config, &directive, cluster, transport)
        };
        match outcome {
            Ok(block) => {
                if let Err(error) = cluster.store(requestor).put(
                    BlockId {
                        stripe: request.stripe,
                        index: request.failed,
                    },
                    Bytes::from(block.clone()),
                ) {
                    return Err(RepairFailure { error, replans });
                }
                engine.liveness.record_success(&directive.helper_nodes());
                if config.relocate_on_success {
                    // Keep the coordinator's and the cluster's placement
                    // views in step; the coordinator refuses relocations
                    // that would put two blocks of a stripe on one node, in
                    // which case the cluster mapping must not move either.
                    // The completion is pinned to the epoch the directive
                    // was planned at: if the placement moved while this
                    // repair was in flight, the relocation is rejected as
                    // stale instead of double-healing the block.
                    match coord.with(|c| {
                        c.relocate_block_at(
                            request.stripe,
                            request.failed,
                            requestor,
                            directive.epoch,
                        )
                    }) {
                        Ok(true) => {
                            if let Err(error) =
                                cluster.relocate(request.stripe, request.failed, requestor)
                            {
                                return Err(RepairFailure { error, replans });
                            }
                        }
                        Ok(false) => {}
                        Err(error @ EcPipeError::StaleRepair { .. }) => {
                            // Another repair (or an operator move) won the
                            // race. The copy just stored is redundant —
                            // drop it, unless the winning placement put the
                            // block on this very node.
                            let holder = coord.with(|c| {
                                c.stripe(request.stripe).map(|m| m.node_of(request.failed))
                            });
                            if !matches!(holder, Ok(h) if h == requestor) {
                                let _ = cluster.store(requestor).delete(BlockId {
                                    stripe: request.stripe,
                                    index: request.failed,
                                });
                            }
                            return Err(RepairFailure { error, replans });
                        }
                        Err(error) => return Err(RepairFailure { error, replans }),
                    }
                }
                return Ok(Done {
                    bytes: block.len(),
                    replans,
                    requestor,
                    path: directive.helper_nodes(),
                    bottleneck: planned.bottleneck,
                    roles,
                });
            }
            Err(EcPipeError::BlockNotFound { block })
                if block.stripe == request.stripe && replans < config.max_replans =>
            {
                // A helper lost its block between planning and execution:
                // strike the node, exclude the block, re-plan with the
                // survivors (§3.2 straggler handling, generalized).
                replans += 1;
                excluded.push(block.index);
                if let Some(&(node, _, _)) =
                    directive.path.iter().find(|e| e.1.index == block.index)
                {
                    engine.metrics.record_replan(ReplanEvent {
                        stripe: request.stripe,
                        failed: request.failed,
                        reason: ReplanReason::HelperLost,
                        node: Some(node),
                    });
                    strike(engine, coord, node);
                }
            }
            Err(EcPipeError::CorruptBlock { block, .. })
                if block.stripe == request.stripe && replans < config.max_replans =>
            {
                // A helper read a slice whose checksums no longer match:
                // bit-rot, not node death. The stream failed cleanly before
                // any poisoned partial could reach the requestor; re-plan
                // around the rotten block — without a liveness strike, the
                // node itself is healthy — and queue an in-place
                // corruption-class repair to scrub the rot out.
                replans += 1;
                excluded.push(block.index);
                let holder = coord.with(|c| c.stripe(block.stripe).map(|m| m.node_of(block.index)));
                if let Ok(holder) = holder {
                    engine.metrics.record_replan(ReplanEvent {
                        stripe: request.stripe,
                        failed: request.failed,
                        reason: ReplanReason::CorruptHelper,
                        node: Some(holder),
                    });
                    engine.submit_corruption(block, holder);
                }
            }
            Err(_cancelled) if slow_link.is_some() && replans < config.max_replans => {
                // The link watchdog measured a path link below its
                // degradation threshold and cancelled the stream. Blame the
                // helper endpoint of the slow hop (the downstream helper,
                // or the upstream one when the hop ends at the requestor)
                // and exclude its block — *without* a liveness strike: the
                // node is healthy, its link is slow. The failed attempt
                // also pushed bytes through the slow link at the degraded
                // rate, so the telemetry the re-plan observes has already
                // collapsed for that pair and a weighted re-plan routes
                // around it even when the blame heuristic picked the wrong
                // endpoint.
                let (src, dst) = slow_link.expect("guarded by slow_link.is_some()");
                let helpers = directive.helper_nodes();
                let blamed = if helpers.contains(&dst) { dst } else { src };
                replans += 1;
                engine.metrics.record_replan(ReplanEvent {
                    stripe: request.stripe,
                    failed: request.failed,
                    reason: ReplanReason::LinkDegraded,
                    node: Some(blamed),
                });
                if let Some(&(_, block, _)) = directive.path.iter().find(|e| e.0 == blamed) {
                    excluded.push(block.index);
                }
            }
            Err(error @ EcPipeError::Execution { .. }) if replans < config.max_replans => {
                // A helper died *mid-stream*: the pipeline reports only that
                // a link ended early, so identify the culprits by re-checking
                // which helper blocks are still present, then re-plan around
                // them. If every block is still there the failure was not a
                // vanished helper — give up with the original error.
                let missing: Vec<(NodeId, usize)> = directive
                    .path
                    .iter()
                    .filter(|&&(node, block, _)| !cluster.store(node).contains(block))
                    .map(|&(node, block, _)| (node, block.index))
                    .collect();
                if missing.is_empty() {
                    return Err(RepairFailure { error, replans });
                }
                replans += 1;
                for (node, index) in missing {
                    excluded.push(index);
                    engine.metrics.record_replan(ReplanEvent {
                        stripe: request.stripe,
                        failed: request.failed,
                        reason: ReplanReason::HelperLost,
                        node: Some(node),
                    });
                    strike(engine, coord, node);
                }
            }
            Err(error) => return Err(RepairFailure { error, replans }),
        }
    }
}

/// Executes one directive, under the link watchdog when one is configured.
///
/// Without a [`LinkWatchConfig`] (or without telemetry) this is exactly
/// [`exec::execute_single`]. With one, the execution runs on a scoped
/// thread while this thread samples the bytes each path link moved; once a
/// link has been streaming for the grace period, observing it below
/// [`degraded_below`](LinkWatchConfig::degraded_below) × its nominal
/// topology bandwidth cancels the stream. Returns the execution outcome
/// plus the slow link, if one was flagged.
///
/// The observed rate is bytes moved over *wall time*, not the telemetry's
/// busy-time EWMA: a fully stalled link accrues no send time, which a
/// busy-time estimate would never notice. Traffic from concurrent repairs
/// sharing a link only inflates the observed rate, so sharing cannot flag
/// a healthy link.
fn execute_watched<T>(
    engine: &EngineState,
    config: &ManagerConfig,
    directive: &RepairDirective,
    cluster: &Cluster,
    transport: &T,
) -> (Result<Vec<u8>>, Option<(NodeId, NodeId)>)
where
    T: Transport + ?Sized,
{
    let (Some(watch), Some(telemetry)) = (config.link_watch, engine.telemetry.as_ref()) else {
        return (
            exec::execute_single(directive, cluster, transport, config.strategy),
            None,
        );
    };
    let topology = telemetry.topology();
    // The directed links the repair streams over: helper-to-helper hops in
    // pipeline order, then the last hop into the requestor.
    let helpers = directive.helper_nodes();
    let mut hops: Vec<(NodeId, NodeId)> = helpers.windows(2).map(|w| (w[0], w[1])).collect();
    if let Some(&last) = helpers.last() {
        hops.push((last, directive.requestor));
    }
    let baseline: Vec<u64> = hops
        .iter()
        .map(|&(src, dst)| transport.link_bytes(src, dst))
        .collect();
    let cancel = OnceFlag::new();
    // A hop is judged from the moment it first moves bytes, not from the
    // start of the attempt: in a pipelined chain the hop into the requestor
    // only starts streaming after the pipeline fills, and measuring its
    // rate over the whole attempt would dilute it below any threshold and
    // cancel perfectly healthy repairs. A hop that has moved nothing is
    // still filling (or its helper is dead — the helper-loss path covers
    // that) and is not judged at all.
    let mut first_seen: Vec<Option<Instant>> = vec![None; hops.len()];
    let mut slow = None;
    let outcome = std::thread::scope(|scope| {
        let execution = scope.spawn(|| {
            exec::execute_single_cancellable(
                directive,
                cluster,
                transport,
                config.strategy,
                &cancel,
            )
        });
        while !execution.is_finished() {
            std::thread::sleep(watch.tick);
            if cancel.is_set() {
                continue;
            }
            let now = Instant::now();
            for (i, &(src, dst)) in hops.iter().enumerate() {
                let moved = transport.link_bytes(src, dst).saturating_sub(baseline[i]);
                if moved == 0 {
                    continue;
                }
                let since = match first_seen[i] {
                    Some(first) => now.duration_since(first),
                    None => {
                        first_seen[i] = Some(now);
                        continue;
                    }
                };
                if since < watch.grace {
                    continue;
                }
                let observed = moved as f64 / since.as_secs_f64();
                if observed < watch.degraded_below * topology.bandwidth(src, dst) {
                    slow = Some((src, dst));
                    cancel.set();
                    break;
                }
            }
        }
        execution.join().expect("repair execution must not panic")
    });
    (outcome, slow)
}
