//! Structured reporting for the repair manager.
//!
//! Workers feed a shared [`MetricsCollector`]; [`ManagerReport`] is the
//! snapshot handed back to callers: per-node load histogram (the §3.3
//! balance the greedy scheduler is supposed to produce), per-node peak
//! in-flight roles (proof the admission gate held), queue latencies per
//! priority class, per-repair outcomes in completion order, elapsed wall
//! time and network bytes.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use ecc::stripe::{BlockId, StripeId};
use ecpipe_sync::Mutex;
use simnet::{NodeId, Topology};

use crate::lock_order;
use crate::transport::LinkSnapshot;

use super::queue::RepairPriority;

/// Aggregate waiting-time statistics for one priority class.
#[derive(Debug, Clone, Default)]
pub struct WaitStats {
    /// Number of repairs in the class.
    pub count: usize,
    /// Sum of all queue waits.
    pub total: Duration,
    /// Longest single queue wait.
    pub max: Duration,
}

impl WaitStats {
    fn record(&mut self, wait: Duration) {
        self.count += 1;
        self.total += wait;
        self.max = self.max.max(wait);
    }

    /// Mean queue wait (zero when the class is empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// The outcome of one repair the manager executed.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired stripe.
    pub stripe: StripeId,
    /// Index of the reconstructed block.
    pub failed: usize,
    /// Node the block was reconstructed onto.
    pub requestor: NodeId,
    /// Priority class the repair ran under.
    pub priority: RepairPriority,
    /// Time spent queued before a worker picked the repair up.
    pub queue_wait: Duration,
    /// Time from pickup to the block being stored (including re-plans).
    pub duration: Duration,
    /// How many times the repair was re-planned around a dead helper.
    pub replans: usize,
    /// Global pickup order (1-based): the i-th repair any worker started.
    pub started_seq: usize,
    /// Global completion order (1-based).
    pub finished_seq: usize,
    /// The helper nodes the repair finally streamed over, in pipeline order
    /// (the requestor, listed separately, terminates the path).
    pub path: Vec<NodeId>,
    /// The planner's bottleneck-weight estimate for the chosen path
    /// (seconds per byte, lower is better). `Some` only under
    /// [`PathPolicy::Weighted`](super::PathPolicy::Weighted).
    pub bottleneck: Option<f64>,
}

/// Why one repair attempt was abandoned and the repair re-planned (or, for
/// [`ReplanReason::PlanningFallback`], why a topology-aware plan degraded
/// to flat selection).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanReason {
    /// A helper's block vanished mid-flight; the node earned a liveness
    /// strike and the repair was re-planned around it.
    HelperLost,
    /// A helper served a block that failed checksum verification; the block
    /// was excluded (no strike — the node itself is healthy) and an
    /// in-place corruption repair was queued.
    CorruptHelper,
    /// The link watchdog measured a path link below its degradation
    /// threshold and cancelled the stream; the repair was re-planned with
    /// the slow link's telemetry folded in.
    LinkDegraded,
    /// Topology-aware selection had too few candidates (or no feasible
    /// path) and fell back to flat LRU selection for this attempt. Not a
    /// re-execution: the attempt still ran, just without the topology.
    PlanningFallback,
}

impl fmt::Display for ReplanReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            ReplanReason::HelperLost => "helper lost",
            ReplanReason::CorruptHelper => "corrupt helper",
            ReplanReason::LinkDegraded => "link degraded",
            ReplanReason::PlanningFallback => "planning fallback",
        };
        f.write_str(label)
    }
}

/// One re-plan (or planning-fallback) event, in occurrence order, so a
/// report shows not just *how many* times repairs re-planned but *why*.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// The stripe whose repair re-planned.
    pub stripe: StripeId,
    /// Index of the block being reconstructed.
    pub failed: usize,
    /// What triggered the re-plan.
    pub reason: ReplanReason,
    /// The node held responsible — the sick helper, or the endpoint blamed
    /// for a degraded link — when one is identifiable.
    pub node: Option<NodeId>,
}

/// A repair the manager gave up on, so an operator can tell from the
/// report which blocks are still missing.
#[derive(Debug, Clone)]
pub struct FailedRepair {
    /// The stripe whose block is still unreconstructed.
    pub stripe: StripeId,
    /// Index of the block that could not be rebuilt.
    pub failed: usize,
    /// The requestor the repair was addressed to.
    pub requestor: NodeId,
    /// Priority class the repair ran under.
    pub priority: RepairPriority,
    /// Rendering of the error that ended the repair.
    pub error: String,
    /// Re-plans attempted before giving up.
    pub replans: usize,
}

/// What one scrub cycle over the cluster's stores found and fixed.
#[derive(Debug, Clone, Default)]
pub struct ScrubCycle {
    /// Blocks whose checksums were verified this cycle.
    pub blocks_scanned: usize,
    /// Bytes read and verified this cycle (what the pacing rate meters).
    pub bytes_scanned: u64,
    /// Blocks that failed verification, in scan order.
    pub corrupt: Vec<BlockId>,
    /// Corruption-class repairs this cycle enqueued (corrupt blocks already
    /// queued or in flight are not double-counted).
    pub repairs_enqueued: usize,
    /// Corrupt blocks that verified clean when re-checked after their
    /// repair.
    pub reverified_clean: usize,
    /// Corrupt blocks that still failed verification after the cycle's
    /// repairs drained — data the operator must treat as at risk.
    pub still_corrupt: Vec<BlockId>,
    /// Wall time of the cycle, including the wait for enqueued repairs.
    pub duration: Duration,
}

/// A structured report of everything a manager run did.
#[derive(Debug, Clone, Default)]
pub struct ManagerReport {
    /// Number of blocks reconstructed.
    pub blocks_repaired: usize,
    /// Total bytes reconstructed.
    pub bytes_repaired: usize,
    /// Blocks reconstructed per requestor node.
    pub per_requestor: HashMap<NodeId, usize>,
    /// Bytes moved over the transport by this run: always the sum of
    /// [`link_bytes`](Self::link_bytes).
    pub network_bytes: u64,
    /// Bytes moved per directed link by this run, so topology experiments
    /// can tell cross-rack traffic from in-rack traffic.
    pub link_bytes: HashMap<(NodeId, NodeId), u64>,
    /// Elapsed wall time of the run (first enqueue to last completion for
    /// batches; start to shutdown for the daemon).
    pub wall_time: Duration,
    /// Per-node load histogram: how many repairs each node served a role in
    /// (helper or requestor).
    pub node_load: HashMap<NodeId, usize>,
    /// Per-node peak of simultaneously held repair roles; never exceeds the
    /// configured in-flight cap.
    pub peak_inflight: HashMap<NodeId, usize>,
    /// Queue-wait statistics for degraded reads.
    pub degraded_wait: WaitStats,
    /// Queue-wait statistics for corruption repairs (scrub finds and failed
    /// helper reads).
    pub corruption_wait: WaitStats,
    /// Queue-wait statistics for background repairs.
    pub background_wait: WaitStats,
    /// Total re-plans across all repairs (helpers lost mid-flight, corrupt
    /// helper blocks, degraded links).
    pub replans: usize,
    /// Every re-plan and planning-fallback event, in occurrence order.
    pub replan_events: Vec<ReplanEvent>,
    /// Repairs that failed even after re-planning (daemon mode only; the
    /// batch engine aborts on the first failure instead).
    pub failed_repairs: usize,
    /// Per-repair outcomes, in completion order.
    pub outcomes: Vec<RepairOutcome>,
    /// The repairs behind `failed_repairs`, with the block identity and the
    /// final error.
    pub failures: Vec<FailedRepair>,
    /// One entry per completed scrub cycle, in completion order.
    pub scrub_cycles: Vec<ScrubCycle>,
}

impl ManagerReport {
    /// The highest number of repair roles any single node held at once.
    pub fn max_inflight(&self) -> usize {
        self.peak_inflight.values().copied().max().unwrap_or(0)
    }

    /// The heaviest per-node load (repairs served) in the histogram.
    pub fn max_node_load(&self) -> usize {
        self.node_load.values().copied().max().unwrap_or(0)
    }

    /// Blocks verified across all scrub cycles.
    pub fn blocks_scrubbed(&self) -> usize {
        self.scrub_cycles.iter().map(|c| c.blocks_scanned).sum()
    }

    /// Corrupt blocks detected across all scrub cycles.
    pub fn corruption_detected(&self) -> usize {
        self.scrub_cycles.iter().map(|c| c.corrupt.len()).sum()
    }

    /// Bytes this run moved across rack boundaries under `topology` — the
    /// cost the paper's rack-aware path selection (§4.2) minimizes.
    pub fn cross_rack_bytes(&self, topology: &Topology) -> u64 {
        self.link_bytes
            .iter()
            .filter(|((src, dst), _)| topology.is_cross_rack(*src, *dst))
            .map(|(_, bytes)| bytes)
            .sum()
    }

    /// The re-plan events matching one reason.
    pub fn replans_because(&self, reason: ReplanReason) -> usize {
        self.replan_events
            .iter()
            .filter(|e| e.reason == reason)
            .count()
    }
}

/// Per-directed-link bytes moved since `baseline`, from two
/// [`StatsRegistry`](crate::transport::StatsRegistry) snapshots. Links that
/// moved nothing are omitted.
pub(crate) fn link_bytes_since(
    baseline: &HashMap<(NodeId, NodeId), LinkSnapshot>,
    now: HashMap<(NodeId, NodeId), LinkSnapshot>,
) -> HashMap<(NodeId, NodeId), u64> {
    now.into_iter()
        .filter_map(|(pair, snap)| {
            let before = baseline.get(&pair).map(|s| s.bytes).unwrap_or(0);
            let delta = snap.bytes.saturating_sub(before);
            (delta > 0).then_some((pair, delta))
        })
        .collect()
}

/// Everything the worker knows about one finished repair, handed to
/// [`MetricsCollector::record_success`] as a bundle.
pub(crate) struct SuccessRecord<'a> {
    pub(crate) stripe: StripeId,
    pub(crate) failed: usize,
    pub(crate) requestor: NodeId,
    pub(crate) priority: RepairPriority,
    pub(crate) queue_wait: Duration,
    pub(crate) duration: Duration,
    pub(crate) replans: usize,
    pub(crate) started_seq: usize,
    pub(crate) bytes: usize,
    /// Every node that held a role (helpers + requestor).
    pub(crate) roles: &'a [NodeId],
    /// The helper path of the final, successful attempt.
    pub(crate) path: Vec<NodeId>,
    /// The weighted planner's bottleneck estimate, when one was computed.
    pub(crate) bottleneck: Option<f64>,
}

/// Shared, thread-safe accumulator behind a [`ManagerReport`].
pub(crate) struct MetricsCollector {
    /// Lock class: `manager.metrics` ([`lock_order::MANAGER_METRICS`]).
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    report: ManagerReport,
    started: usize,
    finished: usize,
}

impl MetricsCollector {
    pub(crate) fn new() -> Self {
        MetricsCollector {
            inner: Mutex::new(&lock_order::MANAGER_METRICS, Inner::default()),
        }
    }

    /// Assigns the next global pickup sequence number.
    pub(crate) fn begin_repair(&self) -> usize {
        let mut inner = self.inner.lock();
        inner.started += 1;
        inner.started
    }

    /// Updates a node's peak-in-flight high-water mark (called by the
    /// admission gate with the node's new in-flight count).
    pub(crate) fn record_inflight(&self, node: NodeId, current: usize) {
        let mut inner = self.inner.lock();
        let peak = inner.report.peak_inflight.entry(node).or_insert(0);
        *peak = (*peak).max(current);
    }

    /// Records a successful repair.
    pub(crate) fn record_success(&self, success: SuccessRecord<'_>) {
        let mut inner = self.inner.lock();
        inner.finished += 1;
        let finished_seq = inner.finished;
        let report = &mut inner.report;
        report.blocks_repaired += 1;
        report.bytes_repaired += success.bytes;
        *report.per_requestor.entry(success.requestor).or_default() += 1;
        for &node in success.roles {
            *report.node_load.entry(node).or_default() += 1;
        }
        match success.priority {
            RepairPriority::DegradedRead => report.degraded_wait.record(success.queue_wait),
            RepairPriority::Corruption => report.corruption_wait.record(success.queue_wait),
            RepairPriority::Background => report.background_wait.record(success.queue_wait),
        }
        report.replans += success.replans;
        report.outcomes.push(RepairOutcome {
            stripe: success.stripe,
            failed: success.failed,
            requestor: success.requestor,
            priority: success.priority,
            queue_wait: success.queue_wait,
            duration: success.duration,
            replans: success.replans,
            started_seq: success.started_seq,
            finished_seq,
            path: success.path,
            bottleneck: success.bottleneck,
        });
    }

    /// Appends one re-plan event in occurrence order.
    pub(crate) fn record_replan(&self, event: ReplanEvent) {
        self.inner.lock().report.replan_events.push(event);
    }

    /// Records a repair the manager gave up on (daemon mode), keeping the
    /// block identity so the report says what is still missing.
    pub(crate) fn record_failure(&self, failure: FailedRepair) {
        let mut inner = self.inner.lock();
        inner.finished += 1;
        inner.report.failed_repairs += 1;
        inner.report.replans += failure.replans;
        inner.report.failures.push(failure);
    }

    /// Folds a finished scrub cycle into the report.
    pub(crate) fn record_scrub_cycle(&self, cycle: ScrubCycle) {
        self.inner.lock().report.scrub_cycles.push(cycle);
    }

    /// Snapshots the report, stamping wall time and the per-link byte map
    /// (the total `network_bytes` is derived as its sum).
    pub(crate) fn report(
        &self,
        wall_time: Duration,
        link_bytes: HashMap<(NodeId, NodeId), u64>,
    ) -> ManagerReport {
        let inner = self.inner.lock();
        let mut report = inner.report.clone();
        report.wall_time = wall_time;
        report.network_bytes = link_bytes.values().sum();
        report.link_bytes = link_bytes;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_orders() {
        let m = MetricsCollector::new();
        let s1 = m.begin_repair();
        let s2 = m.begin_repair();
        assert_eq!((s1, s2), (1, 2));
        m.record_inflight(4, 1);
        m.record_inflight(4, 3);
        m.record_inflight(4, 2);
        m.record_replan(ReplanEvent {
            stripe: StripeId(0),
            failed: 1,
            reason: ReplanReason::HelperLost,
            node: Some(3),
        });
        m.record_success(SuccessRecord {
            stripe: StripeId(0),
            failed: 1,
            requestor: 9,
            priority: RepairPriority::Background,
            queue_wait: Duration::from_millis(5),
            duration: Duration::from_millis(20),
            replans: 1,
            started_seq: s1,
            bytes: 1024,
            roles: &[4, 5, 9],
            path: vec![4, 5],
            bottleneck: None,
        });
        m.record_success(SuccessRecord {
            stripe: StripeId(1),
            failed: 0,
            requestor: 8,
            priority: RepairPriority::DegradedRead,
            queue_wait: Duration::from_millis(1),
            duration: Duration::from_millis(10),
            replans: 0,
            started_seq: s2,
            bytes: 1024,
            roles: &[4, 6, 8],
            path: vec![4, 6],
            bottleneck: Some(1.0 / 4096.0),
        });
        m.record_failure(FailedRepair {
            stripe: StripeId(2),
            failed: 3,
            requestor: 7,
            priority: RepairPriority::Background,
            error: "too many failures".to_string(),
            replans: 2,
        });
        m.record_scrub_cycle(ScrubCycle {
            blocks_scanned: 60,
            bytes_scanned: 60 * 1024,
            corrupt: vec![BlockId::new(4, 2)],
            repairs_enqueued: 1,
            reverified_clean: 1,
            still_corrupt: Vec::new(),
            duration: Duration::from_millis(3),
        });
        let report = m.report(
            Duration::from_millis(40),
            HashMap::from([((4, 5), 1024u64), ((5, 9), 3072u64)]),
        );
        assert_eq!(report.blocks_repaired, 2);
        assert_eq!(report.scrub_cycles.len(), 1);
        assert_eq!(report.blocks_scrubbed(), 60);
        assert_eq!(report.corruption_detected(), 1);
        assert_eq!(report.corruption_wait.count, 0);
        assert_eq!(report.bytes_repaired, 2048);
        assert_eq!(report.replans, 3);
        assert_eq!(report.failed_repairs, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].stripe, StripeId(2));
        assert_eq!(report.failures[0].failed, 3);
        assert!(report.failures[0].error.contains("failures"));
        assert_eq!(report.node_load[&4], 2);
        assert_eq!(report.peak_inflight[&4], 3);
        assert_eq!(report.max_inflight(), 3);
        assert_eq!(report.max_node_load(), 2);
        assert_eq!(report.degraded_wait.count, 1);
        assert_eq!(report.background_wait.count, 1);
        assert_eq!(report.background_wait.mean(), Duration::from_millis(5));
        assert_eq!(report.outcomes[0].finished_seq, 1);
        assert_eq!(report.outcomes[1].finished_seq, 2);
        assert_eq!(report.outcomes[0].path, vec![4, 5]);
        assert_eq!(report.outcomes[1].bottleneck, Some(1.0 / 4096.0));
        // network_bytes is derived from the per-link split.
        assert_eq!(report.network_bytes, 4096);
        assert_eq!(report.link_bytes[&(4, 5)], 1024);
        assert_eq!(report.link_bytes[&(5, 9)], 3072);
        assert_eq!(report.replan_events.len(), 1);
        assert_eq!(report.replans_because(ReplanReason::HelperLost), 1);
        assert_eq!(report.replans_because(ReplanReason::LinkDegraded), 0);
        assert!(report.wall_time > Duration::ZERO);
    }

    #[test]
    fn cross_rack_bytes_follow_the_topology() {
        let report = ManagerReport {
            link_bytes: HashMap::from([((0, 1), 100u64), ((0, 4), 40u64), ((5, 1), 7u64)]),
            ..ManagerReport::default()
        };
        let topology = Topology::rack_based(&[4, 4], 100.0, 10.0);
        assert_eq!(report.cross_rack_bytes(&topology), 47);
    }

    #[test]
    fn link_deltas_subtract_the_baseline() {
        let snap = |bytes| LinkSnapshot {
            bytes,
            messages: 1,
            busy_nanos: 1,
        };
        let baseline = HashMap::from([((0, 1), snap(100))]);
        let now = HashMap::from([((0, 1), snap(150)), ((2, 3), snap(30)), ((4, 5), snap(0))]);
        let deltas = link_bytes_since(&baseline, now);
        assert_eq!(deltas, HashMap::from([((0, 1), 50u64), ((2, 3), 30u64)]));
    }

    #[test]
    fn wait_stats_mean_handles_empty() {
        assert_eq!(WaitStats::default().mean(), Duration::ZERO);
    }
}
