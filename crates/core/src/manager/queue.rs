//! The prioritized repair queue.
//!
//! Two FIFO classes: degraded reads (a client is blocked on the block right
//! now) always pop before background full-node recovery work. Workers block
//! on [`RepairQueue::pop`] until work arrives or the queue is closed and
//! drained, so the same queue drives both the run-to-completion batch engine
//! and the long-running daemon.

use std::collections::VecDeque;
use std::time::Instant;

use ecc::stripe::StripeId;
use ecpipe_sync::{Condvar, Mutex};
use simnet::NodeId;

use crate::lock_order;

/// Priority class of a repair. Lower is more urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum RepairPriority {
    /// A degraded read: a client is waiting for this block (§3.2). Pops
    /// before any queued corruption or background work.
    DegradedRead,
    /// A corruption repair: a scrubber (or a failed helper read) caught a
    /// block whose bytes no longer match their checksums. Nobody is blocked
    /// on it, but the stripe is one failure closer to data loss than the
    /// metadata believes, so it pops before routine background recovery.
    Corruption,
    /// Background single-stripe repair, typically part of a full-node
    /// recovery (§3.3).
    Background,
}

impl RepairPriority {
    /// The stable one-byte tag this priority is journaled as in the durable
    /// metadata plane's pending-repair records.
    pub(crate) fn tag(self) -> u8 {
        match self {
            RepairPriority::DegradedRead => 0,
            RepairPriority::Corruption => 1,
            RepairPriority::Background => 2,
        }
    }

    /// Decodes a journaled tag; unknown tags (from a newer writer) degrade
    /// to background priority rather than failing recovery.
    pub(crate) fn from_tag(tag: u8) -> RepairPriority {
        match tag {
            0 => RepairPriority::DegradedRead,
            1 => RepairPriority::Corruption,
            _ => RepairPriority::Background,
        }
    }

    /// A short label for reports and logs.
    #[deprecated(since = "0.2.0", note = "use the `Display` impl instead")]
    pub fn label(&self) -> &'static str {
        match self {
            RepairPriority::DegradedRead => "degraded-read",
            RepairPriority::Corruption => "corruption",
            RepairPriority::Background => "background",
        }
    }
}

impl std::fmt::Display for RepairPriority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One string table: the deprecated alias keeps serving it until it
        // is removed. `pad` honors width/alignment options in table output.
        #[allow(deprecated)]
        f.pad(self.label())
    }
}

/// One repair the manager should perform: reconstruct block `failed` of
/// `stripe` onto `requestor`.
#[derive(Debug, Clone)]
pub struct RepairRequest {
    /// The stripe with the missing block.
    pub stripe: StripeId,
    /// Index of the block to reconstruct.
    pub failed: usize,
    /// Node that receives (and stores) the reconstructed block.
    pub requestor: NodeId,
    /// Priority class.
    pub priority: RepairPriority,
}

/// A queued request plus the instant it entered the queue (for queue-latency
/// accounting).
pub(crate) struct QueuedRepair {
    pub request: RepairRequest,
    pub enqueued: Instant,
}

#[derive(Default)]
struct QueueInner {
    degraded: VecDeque<QueuedRepair>,
    corruption: VecDeque<QueuedRepair>,
    background: VecDeque<QueuedRepair>,
    closed: bool,
}

impl QueueInner {
    fn is_empty(&self) -> bool {
        self.degraded.is_empty() && self.corruption.is_empty() && self.background.is_empty()
    }
}

/// A blocking two-class priority queue.
pub(crate) struct RepairQueue {
    /// Lock class: `manager.queue` ([`lock_order::MANAGER_QUEUE`]).
    inner: Mutex<QueueInner>,
    available: Condvar,
}

impl RepairQueue {
    pub(crate) fn new() -> Self {
        RepairQueue {
            inner: Mutex::new(&lock_order::MANAGER_QUEUE, QueueInner::default()),
            available: Condvar::new(),
        }
    }

    /// Enqueues a request. Returns `false` (dropping the request) once the
    /// queue is closed.
    pub(crate) fn push(&self, request: RepairRequest) -> bool {
        let mut inner = self.inner.lock();
        if inner.closed {
            return false;
        }
        let queued = QueuedRepair {
            request,
            enqueued: Instant::now(),
        };
        match queued.request.priority {
            RepairPriority::DegradedRead => inner.degraded.push_back(queued),
            RepairPriority::Corruption => inner.corruption.push_back(queued),
            RepairPriority::Background => inner.background.push_back(queued),
        }
        drop(inner);
        self.available.notify_one();
        true
    }

    /// Pops the most urgent request, blocking while the queue is open but
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub(crate) fn pop(&self) -> Option<QueuedRepair> {
        let inner = self.inner.lock();
        let mut inner = self
            .available
            .wait_while(inner, |q| !q.closed && q.is_empty());
        if let Some(job) = inner.degraded.pop_front() {
            return Some(job);
        }
        if let Some(job) = inner.corruption.pop_front() {
            return Some(job);
        }
        if let Some(job) = inner.background.pop_front() {
            return Some(job);
        }
        debug_assert!(inner.closed);
        None
    }

    /// Promotes a still-queued repair of `(stripe, failed)` to the
    /// degraded-read class — a client is now blocked on a block that was
    /// only queued for corruption or background repair. Returns `false`
    /// when the request is not waiting in a lower class (already degraded,
    /// in flight, or unknown); in-flight work cannot be promoted.
    pub(crate) fn promote_to_degraded(&self, stripe: StripeId, failed: usize) -> bool {
        let mut inner = self.inner.lock();
        let matches = |q: &QueuedRepair| q.request.stripe == stripe && q.request.failed == failed;
        let found = if let Some(pos) = inner.corruption.iter().position(matches) {
            inner.corruption.remove(pos)
        } else if let Some(pos) = inner.background.iter().position(matches) {
            inner.background.remove(pos)
        } else {
            None
        };
        let Some(mut queued) = found else {
            return false;
        };
        // Reclassify so the wait is accounted to the degraded class; the
        // original enqueue instant is kept (the client inherits the whole
        // wait).
        queued.request.priority = RepairPriority::DegradedRead;
        inner.degraded.push_back(queued);
        drop(inner);
        self.available.notify_one();
        true
    }

    /// Closes the queue: no further pushes are accepted, and `pop` returns
    /// `None` once the remaining work is drained.
    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Number of requests currently waiting (not counting in-flight work).
    pub(crate) fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.degraded.len() + inner.corruption.len() + inner.background.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(stripe: u64, priority: RepairPriority) -> RepairRequest {
        RepairRequest {
            stripe: StripeId(stripe),
            failed: 0,
            requestor: 9,
            priority,
        }
    }

    #[test]
    fn degraded_reads_pop_before_corruption_before_background() {
        let q = RepairQueue::new();
        assert!(q.push(request(1, RepairPriority::Background)));
        assert!(q.push(request(2, RepairPriority::Background)));
        assert!(q.push(request(4, RepairPriority::Corruption)));
        assert!(q.push(request(3, RepairPriority::DegradedRead)));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(3));
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(4));
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(1));
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(2));
    }

    #[test]
    fn promote_moves_queued_background_work_to_degraded() {
        let q = RepairQueue::new();
        q.push(request(1, RepairPriority::Background));
        q.push(request(2, RepairPriority::Background));
        q.push(request(3, RepairPriority::Corruption));
        assert!(q.promote_to_degraded(StripeId(2), 0));
        assert!(q.promote_to_degraded(StripeId(3), 0));
        // Unknown or already-degraded requests are not promoted.
        assert!(!q.promote_to_degraded(StripeId(9), 0));
        assert!(!q.promote_to_degraded(StripeId(2), 0));
        let popped = q.pop().unwrap();
        assert_eq!(popped.request.stripe, StripeId(2));
        assert_eq!(popped.request.priority, RepairPriority::DegradedRead);
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(3));
        assert_eq!(q.pop().unwrap().request.stripe, StripeId(1));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = RepairQueue::new();
        q.push(request(1, RepairPriority::Background));
        q.close();
        assert!(!q.push(request(2, RepairPriority::Background)));
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_work_arrives() {
        let q = std::sync::Arc::new(RepairQueue::new());
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop().map(|j| j.request.stripe));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(request(7, RepairPriority::DegradedRead));
        assert_eq!(handle.join().unwrap(), Some(StripeId(7)));
    }
}
