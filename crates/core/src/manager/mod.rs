//! The repair manager: a concurrent, prioritized repair-orchestration
//! subsystem.
//!
//! The paper's §3.3 full-node recovery repairs the stripes of a failed node
//! *in parallel*, with greedy least-recently-used helper scheduling so that
//! no popular helper becomes the straggler. This module is the runtime layer
//! that actually does that, sitting between the planners (`repair::*`,
//! [`Coordinator`]) and the executors ([`exec`](crate::exec)):
//!
//! * a prioritized repair queue — degraded reads
//!   ([`RepairPriority::DegradedRead`]) preempt corruption repairs
//!   ([`RepairPriority::Corruption`]), which preempt background full-node
//!   recovery;
//! * a bounded worker pool executing many single-stripe repairs
//!   concurrently, generic over [`Transport`];
//! * an admission gate enforcing per-node in-flight caps on top of the
//!   coordinator's [`SelectionPolicy::LeastRecentlyUsed`](crate::SelectionPolicy)
//!   helper choice, so no node serves more than a configured number of
//!   simultaneous repair roles;
//! * a [liveness view](NodeHealth) fed by repair outcomes — a helper that
//!   fails mid-flight earns strikes, a node crossing the threshold is
//!   declared dead and its remaining stripes are auto-enqueued — with
//!   mid-flight re-planning around the lost block (generalizing
//!   [`degraded_read_with_retry`](crate::recovery::degraded_read_with_retry));
//! * a [scrubber](Scrubber) that walks the cluster's stores at a paced rate,
//!   verifies block checksums (see [`ChecksummedStore`](crate::ChecksummedStore)),
//!   enqueues corrupt blocks as in-place [`RepairPriority::Corruption`]
//!   repairs and re-verifies them once repaired — bit-rot handled as a
//!   first-class failure class next to deletes and node death;
//! * a structured [`ManagerReport`]: per-node load histogram, peak
//!   in-flight roles, queue latencies per priority class, per-repair
//!   outcomes, scrub-cycle summaries, wall time and network bytes.
//!
//! Two entry points share the same engine. [`run_batch`] executes a fixed
//! set of requests to completion on scoped worker threads (this is what
//! [`full_node_recovery_over`](crate::recovery::full_node_recovery_over)
//! wraps — with one worker it preserves the sequential semantics exactly).
//! [`RepairManager`] is the long-running daemon: it owns the coordinator,
//! cluster and transport, accepts work while running, and reports on
//! shutdown.

mod liveness;
mod metrics;
mod queue;
mod scrub;
mod workers;

pub use liveness::NodeHealth;
pub use metrics::{
    FailedRepair, ManagerReport, RepairOutcome, ReplanEvent, ReplanReason, ScrubCycle, WaitStats,
};
pub use queue::{RepairPriority, RepairRequest};
pub use scrub::{ScrubConfig, Scrubber};

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ecpipe_sync::Mutex;
use simnet::NodeId;

use crate::cluster::Cluster;
use crate::exec::ExecStrategy;
use crate::lock_order;
use crate::telemetry::TelemetryConfig;
use crate::transport::{LinkSnapshot, Transport};
use crate::{Coordinator, EcPipeError, Result};

use workers::{worker_loop, EngineState};

/// How the planner picks (and orders) the helpers of a repair path.
///
/// The topology-aware policies need a [`Topology`](simnet::Topology)
/// attached to the cluster (see
/// [`Cluster::set_topology`](crate::Cluster::set_topology) or
/// [`EcPipeBuilder::topology`](crate::EcPipeBuilder::topology)); without one
/// they degrade to [`PathPolicy::Lru`]. They also fall back per attempt —
/// recorded as a [`ReplanReason::PlanningFallback`] event — when too few
/// candidate helpers remain for a topology-shaped choice.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathPolicy {
    /// Flat least-recently-used helper selection (§3.3): balances load, is
    /// blind to racks and link speeds. The historical default.
    #[default]
    Lru,
    /// Algorithm 1 (§4.2): pick and order helpers to minimize cross-rack
    /// transmissions, keeping same-rack helpers adjacent in the pipeline.
    RackAware,
    /// Algorithm 2 (§4.3): maximize the path's bottleneck bandwidth over
    /// live [`LinkTelemetry`](crate::LinkTelemetry) weights, falling back to
    /// static topology weights for links that are still cold.
    Weighted,
}

impl std::fmt::Display for PathPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            PathPolicy::Lru => "lru",
            PathPolicy::RackAware => "rack-aware",
            PathPolicy::Weighted => "weighted",
        };
        f.write_str(label)
    }
}

/// Tuning for the mid-stream link watchdog: while a repair streams, the
/// worker samples the bytes its path links actually moved and cancels the
/// stream when a link runs below a fraction of its nominal (topology)
/// bandwidth — a slow link is then handled like a sick helper: the repair
/// re-plans ([`ReplanReason::LinkDegraded`]) with the slow link's measured
/// throughput already folded into the telemetry, so the new path routes
/// around it. Requires a cluster topology; off by default
/// ([`ManagerConfig::link_watch`] is `None`).
#[derive(Debug, Clone, Copy)]
pub struct LinkWatchConfig {
    /// Measurement warm-up: a link is judged only once it has been
    /// streaming (moving bytes) for this long, so pipeline fill and
    /// startup jitter cannot cancel a healthy repair.
    pub grace: Duration,
    /// How often the watchdog samples the per-link byte counters.
    pub tick: Duration,
    /// A link is degraded when its observed throughput (bytes moved over
    /// the wall time since its first byte) drops below this fraction of
    /// its nominal topology bandwidth.
    pub degraded_below: f64,
}

impl Default for LinkWatchConfig {
    fn default() -> Self {
        LinkWatchConfig {
            grace: Duration::from_millis(150),
            tick: Duration::from_millis(25),
            degraded_below: 0.5,
        }
    }
}

/// Tuning knobs for the repair manager.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Worker threads executing repairs concurrently.
    pub workers: usize,
    /// Maximum simultaneous repair roles (helper or requestor) per node; the
    /// admission gate blocks repairs that would exceed it. A cap of 1 with
    /// one worker reproduces the sequential recovery loop.
    pub per_node_inflight_cap: usize,
    /// How many times one repair may be re-planned around a helper that died
    /// mid-flight before giving up.
    pub max_replans: usize,
    /// Consecutive block misses after which a node is declared dead (and its
    /// stripes auto-enqueued).
    pub dead_after_misses: usize,
    /// Execution strategy for every repair.
    pub strategy: ExecStrategy,
    /// Nodes already known to be dead when the engine starts; their blocks
    /// are never selected as helpers.
    pub known_dead: Vec<NodeId>,
    /// Requestor pool (round-robin) for repairs the manager enqueues on its
    /// own when a node dies. Empty disables auto-enqueueing.
    pub auto_requestors: Vec<NodeId>,
    /// Update the coordinator's block location after a successful repair, so
    /// later plans treat the reconstructed copy as available. Off by
    /// default, matching the historical recovery loop.
    pub relocate_on_success: bool,
    /// How helpers are picked and ordered. The topology-aware policies need
    /// a topology on the cluster; without one (or with too few candidates)
    /// they degrade to [`PathPolicy::Lru`].
    pub path_policy: PathPolicy,
    /// Tuning for the live link-telemetry layer the weighted policy and the
    /// link watchdog plan against.
    pub telemetry: TelemetryConfig,
    /// Mid-stream link watchdog; `None` (the default) disables it.
    pub link_watch: Option<LinkWatchConfig>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            workers: 4,
            per_node_inflight_cap: 4,
            max_replans: 2,
            dead_after_misses: 2,
            strategy: ExecStrategy::RepairPipelining,
            known_dead: Vec::new(),
            auto_requestors: Vec::new(),
            relocate_on_success: false,
            path_policy: PathPolicy::Lru,
            telemetry: TelemetryConfig::default(),
            link_watch: None,
        }
    }
}

impl ManagerConfig {
    /// The configuration that reproduces the historical sequential recovery
    /// loop: one worker, no admission cap, no re-plans.
    pub fn sequential(strategy: ExecStrategy) -> Self {
        ManagerConfig {
            workers: 1,
            per_node_inflight_cap: usize::MAX,
            max_replans: 0,
            strategy,
            ..ManagerConfig::default()
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-node in-flight cap.
    pub fn with_inflight_cap(mut self, cap: usize) -> Self {
        self.per_node_inflight_cap = cap;
        self
    }

    /// Sets the helper-selection policy.
    pub fn with_path_policy(mut self, policy: PathPolicy) -> Self {
        self.path_policy = policy;
        self
    }

    /// Enables the mid-stream link watchdog.
    pub fn with_link_watch(mut self, watch: LinkWatchConfig) -> Self {
        self.link_watch = Some(watch);
        self
    }
}

/// Runs a fixed batch of repairs to completion on `config.workers` scoped
/// worker threads and returns the combined report.
///
/// Duplicate requests for the same block are dropped. The batch is
/// *fail-fast*: the first repair that fails (after its re-plans) aborts the
/// run and is returned as the error; repairs already finished stay stored.
pub fn run_batch<T: Transport + ?Sized>(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    transport: &T,
    config: &ManagerConfig,
    requests: Vec<RepairRequest>,
) -> Result<ManagerReport> {
    let engine = EngineState::new(
        config,
        true,
        coordinator.meta().clone(),
        cluster.topology().cloned(),
    );
    for request in requests {
        // The queue cannot be closed yet, so only duplicates are dropped.
        let _ = engine.submit(request)?;
    }
    engine.queue.close();
    let baseline = transport.stats().snapshot();
    let started = Instant::now();
    let coordinator = Mutex::new(&lock_order::COORDINATOR, coordinator);
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(&engine, &coordinator, cluster, transport, config));
        }
    });
    if let Some(error) = engine.take_error() {
        return Err(error);
    }
    Ok(engine.metrics.report(
        started.elapsed(),
        metrics::link_bytes_since(&baseline, transport.stats().snapshot()),
    ))
}

/// Builds the background repair requests for recovering every block that
/// `failed_node` held, spreading requestors round-robin (the §3.3 enqueue
/// order: stripes sorted by id, one single-block repair each).
pub fn node_recovery_requests(
    coordinator: &Coordinator,
    failed_node: NodeId,
    requestors: &[NodeId],
) -> Result<Vec<RepairRequest>> {
    if requestors.is_empty() {
        return Err(EcPipeError::InvalidRequest {
            reason: "at least one requestor is required".to_string(),
        });
    }
    if requestors.contains(&failed_node) {
        return Err(EcPipeError::InvalidRequest {
            reason: "the failed node cannot be a requestor".to_string(),
        });
    }
    Ok(coordinator
        .stripes_on_node(failed_node)
        .into_iter()
        .enumerate()
        .map(|(i, (stripe, failed))| RepairRequest {
            stripe,
            failed,
            requestor: requestors[i % requestors.len()],
            priority: RepairPriority::Background,
        })
        .collect())
}

/// Recovers every block of `failed_node` through the manager: plans the
/// per-stripe requests, marks the node dead for helper selection, and runs
/// them on the configured worker pool.
pub fn recover_node<T: Transport + ?Sized>(
    coordinator: &mut Coordinator,
    cluster: &Cluster,
    transport: &T,
    failed_node: NodeId,
    requestors: &[NodeId],
    config: &ManagerConfig,
) -> Result<ManagerReport> {
    let requests = node_recovery_requests(coordinator, failed_node, requestors)?;
    let mut config = config.clone();
    if !config.known_dead.contains(&failed_node) {
        config.known_dead.push(failed_node);
    }
    run_batch(coordinator, cluster, transport, &config, requests)
}

struct DaemonShared<T> {
    engine: EngineState,
    /// Lock class: `manager.coordinator` ([`lock_order::COORDINATOR`]).
    coordinator: Mutex<Coordinator>,
    cluster: Cluster,
    transport: T,
    config: ManagerConfig,
}

/// The long-running repair daemon: owns the coordinator, cluster and
/// transport, keeps a worker pool alive, and accepts repair requests and
/// failure reports while running.
///
/// ```
/// use std::sync::Arc;
/// use ecc::slice::SliceLayout;
/// use ecc::ReedSolomon;
/// use ecpipe::manager::{ManagerConfig, RepairManager};
/// use ecpipe::transport::ChannelTransport;
/// use ecpipe::{Cluster, Coordinator, StoreBackend};
///
/// let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
/// let mut coordinator = Coordinator::new(code, SliceLayout::new(4096, 1024));
/// let cluster = Cluster::new(StoreBackend::memory(10)).unwrap();
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 4096]).collect();
/// for s in 0..4 {
///     cluster.write_stripe(&mut coordinator, s, &data).unwrap();
/// }
/// let config = ManagerConfig {
///     auto_requestors: vec![8, 9],
///     ..ManagerConfig::default()
/// };
/// let manager = RepairManager::start(coordinator, cluster, ChannelTransport::new(), config);
/// let queued = manager.report_node_failure(2);
/// manager.wait_idle();
/// let report = manager.shutdown();
/// assert_eq!(report.blocks_repaired, queued);
/// ```
pub struct RepairManager<T: Transport + Send + Sync + 'static> {
    shared: Arc<DaemonShared<T>>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    baseline: HashMap<(NodeId, NodeId), LinkSnapshot>,
}

impl<T: Transport + Send + Sync + 'static> RepairManager<T> {
    /// Starts the daemon: spawns `config.workers` worker threads that serve
    /// the queue until [`shutdown`](RepairManager::shutdown).
    pub fn start(
        coordinator: Coordinator,
        cluster: Cluster,
        transport: T,
        config: ManagerConfig,
    ) -> Self {
        let baseline = transport.stats().snapshot();
        let meta = coordinator.meta().clone();
        let topology = cluster.topology().cloned();
        let shared = Arc::new(DaemonShared {
            engine: EngineState::new(&config, false, meta, topology),
            coordinator: Mutex::new(&lock_order::COORDINATOR, coordinator),
            cluster,
            transport,
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("repair-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &shared.engine,
                            &shared.coordinator,
                            &shared.cluster,
                            &shared.transport,
                            &shared.config,
                        )
                    })
                    .expect("spawn repair worker")
            })
            .collect();
        RepairManager {
            shared,
            workers,
            started: Instant::now(),
            baseline,
        }
    }

    /// Enqueues a repair. Returns `Ok(false)` if the block is already queued
    /// or in flight.
    pub fn enqueue(&self, request: RepairRequest) -> Result<bool> {
        self.shared.engine.submit(request)
    }

    /// Enqueues a degraded read — highest priority — reconstructing block
    /// `failed` of `stripe` onto `requestor`. If the block is already
    /// queued at a lower priority (e.g. as part of a background node
    /// recovery), the queued request is promoted to the degraded class
    /// instead: a client is blocked on it *now*, so it must not wait out
    /// the rest of the recovery.
    pub fn degraded_read(
        &self,
        stripe: ecc::stripe::StripeId,
        failed: usize,
        requestor: NodeId,
    ) -> Result<bool> {
        let queued = self.enqueue(RepairRequest {
            stripe,
            failed,
            requestor,
            priority: RepairPriority::DegradedRead,
        })?;
        if !queued {
            self.shared.engine.queue.promote_to_degraded(stripe, failed);
        }
        Ok(queued)
    }

    /// Declares a node dead and enqueues background recovery for every
    /// stripe that still maps a block to it (requestors come from
    /// `config.auto_requestors`, round-robin). Returns the number of repairs
    /// queued.
    pub fn report_node_failure(&self, node: NodeId) -> usize {
        self.shared.engine.liveness.mark_dead(node);
        self.shared
            .engine
            .enqueue_node_recovery(&self.shared.coordinator, node)
    }

    /// The current health of a node, as inferred from repair outcomes and
    /// failure reports.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.shared.engine.liveness.health_of(node)
    }

    /// Every node with a non-default health state.
    pub fn liveness_snapshot(&self) -> HashMap<NodeId, NodeHealth> {
        self.shared.engine.liveness.snapshot()
    }

    /// Number of repairs waiting in the queue (not counting in-flight work).
    pub fn queued(&self) -> usize {
        self.shared.engine.queue.len()
    }

    /// Blocks until no repair is queued or in flight.
    pub fn wait_idle(&self) {
        self.shared.engine.wait_idle();
    }

    /// Blocks until block `failed` of `stripe` is neither queued nor in
    /// flight — the wait a degraded read performs without draining the rest
    /// of the queue. Returns immediately when the block is not scheduled.
    /// Says nothing about success: re-read the store to find out.
    pub fn wait_for_block(&self, stripe: ecc::stripe::StripeId, failed: usize) {
        self.shared.engine.wait_for((stripe.0, failed));
    }

    /// Runs `f` with exclusive access to the daemon's coordinator — how the
    /// [`EcPipe`](crate::EcPipe) façade registers new stripes and objects
    /// while repairs are running.
    pub fn with_coordinator<R>(&self, f: impl FnOnce(&mut Coordinator) -> R) -> R {
        let mut guard = self.shared.coordinator.lock();
        f(&mut guard)
    }

    /// The cluster the manager repairs into (e.g. to read reconstructed
    /// blocks back).
    pub fn cluster(&self) -> &Cluster {
        &self.shared.cluster
    }

    /// The transport the manager executes over (e.g. for byte accounting).
    pub fn transport(&self) -> &T {
        &self.shared.transport
    }

    /// Runs one synchronous scrub cycle: walks every live node's blocks
    /// (paced at [`ScrubConfig::rate`]), verifies them, enqueues each
    /// corrupt block as a [`RepairPriority::Corruption`] repair back onto
    /// the node serving the rot, waits for those repairs to drain and
    /// re-verifies. The cycle is also folded into the shutdown report's
    /// [`scrub_cycles`](ManagerReport::scrub_cycles).
    pub fn scrub(&self, config: &ScrubConfig) -> ScrubCycle {
        scrub::scrub_once(
            &self.shared.engine,
            &self.shared.coordinator,
            &self.shared.cluster,
            config,
            None,
        )
    }

    /// Starts a background scrubber thread running [`scrub`](Self::scrub)
    /// cycles every [`ScrubConfig::interval`]. Stop it (or drop the handle)
    /// before [`shutdown`](Self::shutdown); cycles that race a shutdown are
    /// harmless — their repairs are refused by the closing queue and show up
    /// as `still_corrupt` in the final cycle.
    pub fn start_scrubber(&self, config: ScrubConfig) -> Scrubber {
        let shared = self.shared.clone();
        let interval = config.interval;
        Scrubber::spawn("scrubber", interval, move |stop| {
            scrub::scrub_once(
                &shared.engine,
                &shared.coordinator,
                &shared.cluster,
                &config,
                Some(stop),
            );
        })
    }

    /// Simulated `kill -9`: stops the workers like
    /// [`shutdown`](Self::shutdown), but skips the graceful bookkeeping in
    /// the durable metadata journal — still-queued repairs are skipped
    /// (their pending records survive) and repairs finishing after the
    /// crash are not resolved. Reopening the same metadata directory then
    /// exercises the real crash-recovery path: pending directives are
    /// re-enqueued, stale ones rejected by their epoch. A crashed process
    /// files no report.
    pub fn crash_stop(self) {
        self.shared.engine.crash();
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Graceful shutdown: stops accepting work, drains the queue, joins the
    /// workers and returns the run's report.
    pub fn shutdown(self) -> ManagerReport {
        self.shared.engine.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shared.engine.metrics.report(
            self.started.elapsed(),
            metrics::link_bytes_since(&self.baseline, self.shared.transport.stats().snapshot()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use ecc::slice::SliceLayout;
    use ecc::stripe::StripeId;
    use ecc::ReedSolomon;

    fn setup(stripes: u64, nodes: usize) -> (Cluster, Coordinator, Vec<Vec<Vec<u8>>>) {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(2048, 256));
        let cluster = Cluster::new(crate::StoreBackend::memory(nodes)).unwrap();
        let mut all = Vec::new();
        for s in 0..stripes {
            let data: Vec<Vec<u8>> = (0..4)
                .map(|i| {
                    (0..2048)
                        .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                        .collect()
                })
                .collect();
            cluster.write_stripe(&mut coordinator, s, &data).unwrap();
            all.push(data);
        }
        (cluster, coordinator, all)
    }

    #[test]
    fn batch_recovers_a_node_concurrently() {
        let (cluster, mut coordinator, _) = setup(12, 10);
        let lost = cluster.kill_node(3);
        let transport = ChannelTransport::new();
        let config = ManagerConfig::default()
            .with_workers(4)
            .with_inflight_cap(3);
        let report =
            recover_node(&mut coordinator, &cluster, &transport, 3, &[8, 9], &config).unwrap();
        assert_eq!(report.blocks_repaired, lost.len());
        assert!(report.max_inflight() <= 3);
        assert_eq!(report.outcomes.len(), lost.len());
        assert!(report.network_bytes > 0);
        for block in lost {
            assert!(
                [8usize, 9]
                    .iter()
                    .any(|&r| cluster.store(r).contains(block)),
                "block {block} missing"
            );
        }
    }

    #[test]
    fn batch_drops_duplicate_requests() {
        let (cluster, mut coordinator, data) = setup(1, 10);
        cluster.erase_block(StripeId(0), 0);
        let request = RepairRequest {
            stripe: StripeId(0),
            failed: 0,
            requestor: 9,
            priority: RepairPriority::DegradedRead,
        };
        let transport = ChannelTransport::new();
        let report = run_batch(
            &mut coordinator,
            &cluster,
            &transport,
            &ManagerConfig::default(),
            vec![request.clone(), request],
        )
        .unwrap();
        assert_eq!(report.blocks_repaired, 1);
        assert_eq!(
            cluster
                .store(9)
                .get(ecc::stripe::BlockId::new(0, 0))
                .unwrap(),
            bytes::Bytes::from(data[0][0].clone())
        );
    }

    #[test]
    fn recover_node_validates_requestors() {
        let (cluster, mut coordinator, _) = setup(1, 10);
        let transport = ChannelTransport::new();
        let config = ManagerConfig::default();
        assert!(recover_node(&mut coordinator, &cluster, &transport, 0, &[], &config).is_err());
        assert!(recover_node(&mut coordinator, &cluster, &transport, 0, &[0], &config).is_err());
    }

    #[test]
    fn degraded_read_promotes_queued_background_work() {
        let (cluster, coordinator, data) = setup(3, 10);
        for s in 0..3u64 {
            cluster.erase_block(StripeId(s), 0);
        }
        // One slow worker, so the queue stays observable: links are
        // throttled hard enough that each repair takes tens of ms.
        let manager = RepairManager::start(
            coordinator,
            cluster,
            ChannelTransport::with_rate_limit(128 * 1024),
            ManagerConfig::default().with_workers(1),
        );
        for s in 0..3u64 {
            assert!(manager
                .enqueue(RepairRequest {
                    stripe: StripeId(s),
                    failed: 0,
                    requestor: 9,
                    priority: RepairPriority::Background,
                })
                .unwrap());
        }
        // Wait until the worker picked up the first repair; stripes 1 and 2
        // are still queued as background work.
        while manager.queued() > 2 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // A client now blocks on stripe 2's block: the duplicate enqueue is
        // dropped but the queued request must be promoted past stripe 1.
        assert!(!manager.degraded_read(StripeId(2), 0, 9).unwrap());
        manager.wait_for_block(StripeId(2), 0);
        let store = manager.cluster().store(9);
        assert!(store.contains(ecc::stripe::BlockId::new(2, 0)));
        assert!(
            !store.contains(ecc::stripe::BlockId::new(1, 0)),
            "stripe 2 must jump the background queue ahead of stripe 1"
        );
        manager.wait_idle();
        assert_eq!(
            manager
                .cluster()
                .store(9)
                .get(ecc::stripe::BlockId::new(2, 0))
                .unwrap(),
            bytes::Bytes::from(data[2][0].clone())
        );
        let report = manager.shutdown();
        // The promoted repair is accounted to the degraded class.
        assert_eq!(report.degraded_wait.count, 1);
        assert_eq!(report.background_wait.count, 2);
    }

    #[test]
    fn daemon_serves_degraded_reads() {
        let (cluster, coordinator, data) = setup(4, 10);
        cluster.erase_block(StripeId(2), 1);
        let manager = RepairManager::start(
            coordinator,
            cluster,
            ChannelTransport::new(),
            ManagerConfig::default().with_workers(2),
        );
        assert!(manager.degraded_read(StripeId(2), 1, 9).unwrap());
        manager.wait_idle();
        assert_eq!(
            manager
                .cluster()
                .store(9)
                .get(ecc::stripe::BlockId::new(2, 1))
                .unwrap(),
            bytes::Bytes::from(data[2][1].clone())
        );
        let report = manager.shutdown();
        assert_eq!(report.blocks_repaired, 1);
        assert_eq!(report.degraded_wait.count, 1);
        assert_eq!(report.failed_repairs, 0);
    }
}
