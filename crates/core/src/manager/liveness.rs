//! Node liveness, fed by repair outcomes.
//!
//! The manager has no heartbeat protocol; instead it learns about node
//! health from the repairs themselves, the way the paper's ECPipe middleware
//! observes helpers (§5). A helper whose block turns out to be missing
//! mid-repair earns a *strike*; enough consecutive strikes and the node is
//! declared dead, at which point the manager auto-enqueues background
//! repairs for every stripe that still maps a block to it. A successful
//! repair clears the strikes of every helper that served it. Operators (or
//! an external failure detector) can also declare a node dead directly.

use std::collections::HashMap;

use ecpipe_sync::Mutex;
use simnet::NodeId;

use crate::lock_order;

/// Health of one node, as inferred from repair outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// No outstanding evidence against the node.
    Alive,
    /// The node has missed this many block reads since its last success.
    Suspect(usize),
    /// The node is considered failed; its blocks are excluded from helper
    /// selection and its stripes are queued for recovery.
    Dead,
}

/// Tracks per-node health. All methods take `&self`; the view is shared by
/// every worker.
pub(crate) struct Liveness {
    /// Lock class: `manager.liveness` ([`lock_order::MANAGER_LIVENESS`]).
    health: Mutex<HashMap<NodeId, NodeHealth>>,
    /// Consecutive misses after which a node is declared dead.
    dead_after: usize,
}

impl Liveness {
    pub(crate) fn new(dead_after: usize, known_dead: &[NodeId]) -> Self {
        let health = known_dead
            .iter()
            .map(|&n| (n, NodeHealth::Dead))
            .collect::<HashMap<_, _>>();
        Liveness {
            health: Mutex::new(&lock_order::MANAGER_LIVENESS, health),
            dead_after: dead_after.max(1),
        }
    }

    /// Declares a node dead outright. Returns `true` if it was not already
    /// dead (i.e. its stripes still need to be queued).
    pub(crate) fn mark_dead(&self, node: NodeId) -> bool {
        let mut health = self.health.lock();
        health.insert(node, NodeHealth::Dead) != Some(NodeHealth::Dead)
    }

    /// Records that `node` failed to produce a block mid-repair. Returns
    /// `true` if this strike pushed the node over the threshold (it is now
    /// newly dead).
    pub(crate) fn record_miss(&self, node: NodeId) -> bool {
        let mut health = self.health.lock();
        let entry = health.entry(node).or_insert(NodeHealth::Alive);
        let strikes = match *entry {
            NodeHealth::Dead => return false,
            NodeHealth::Alive => 1,
            NodeHealth::Suspect(s) => s + 1,
        };
        *entry = if strikes >= self.dead_after {
            NodeHealth::Dead
        } else {
            NodeHealth::Suspect(strikes)
        };
        *entry == NodeHealth::Dead
    }

    /// Records that each node served a repair successfully, clearing any
    /// strikes (dead nodes stay dead).
    pub(crate) fn record_success(&self, nodes: &[NodeId]) {
        let mut health = self.health.lock();
        for node in nodes {
            match health.get(node) {
                Some(NodeHealth::Dead) => {}
                _ => {
                    health.insert(*node, NodeHealth::Alive);
                }
            }
        }
    }

    pub(crate) fn is_dead(&self, node: NodeId) -> bool {
        matches!(self.health.lock().get(&node), Some(NodeHealth::Dead))
    }

    pub(crate) fn health_of(&self, node: NodeId) -> NodeHealth {
        self.health
            .lock()
            .get(&node)
            .copied()
            .unwrap_or(NodeHealth::Alive)
    }

    /// All nodes with a non-default state.
    pub(crate) fn snapshot(&self) -> HashMap<NodeId, NodeHealth> {
        self.health.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_to_dead() {
        let l = Liveness::new(2, &[]);
        assert_eq!(l.health_of(3), NodeHealth::Alive);
        assert!(!l.record_miss(3));
        assert_eq!(l.health_of(3), NodeHealth::Suspect(1));
        assert!(l.record_miss(3));
        assert_eq!(l.health_of(3), NodeHealth::Dead);
        // Further misses are not "newly dead".
        assert!(!l.record_miss(3));
        assert!(l.is_dead(3));
    }

    #[test]
    fn success_clears_strikes_but_not_death() {
        let l = Liveness::new(2, &[]);
        l.record_miss(1);
        l.record_miss(2);
        l.record_miss(2);
        l.record_success(&[1, 2]);
        assert_eq!(l.health_of(1), NodeHealth::Alive);
        assert_eq!(l.health_of(2), NodeHealth::Dead);
    }

    #[test]
    fn explicit_death_and_seeding() {
        let l = Liveness::new(3, &[7]);
        assert!(l.is_dead(7));
        assert!(!l.mark_dead(7), "already dead");
        assert!(l.mark_dead(8), "newly dead");
        assert_eq!(l.snapshot().len(), 2);
    }
}
