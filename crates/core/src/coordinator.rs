//! The ECPipe coordinator.
//!
//! The coordinator (one per deployment, Figure 7) answers repair requests
//! by selecting helpers and deriving the decoding coefficients, and
//! implements the greedy least-recently-selected helper scheduling used
//! during full-node recovery (§3.3).
//!
//! Since the metadata plane landed, the coordinator no longer *owns* the
//! object/stripe namespace: it is a compatibility wrapper over a shared
//! [`MetaRouter`] (the sharded, WAL-durable store in `ecpipe-meta`).
//! Planning state that is not metadata — the helper-selection clock — still
//! lives here, which is why planning methods take `&mut self`. Every
//! placement carries a monotonic epoch; directives record the epoch they
//! were planned at so a completion can be rejected as
//! [`EcPipeError::StaleRepair`] if the block moved in the meantime.

use std::collections::HashMap;
use std::sync::Arc;

use ecc::slice::SliceLayout;
use ecc::stripe::{BlockId, StripeId};
use ecc::{ErasureCode, MultiRepairPlan, RepairPlan};
use ecpipe_meta::{MetaConfig, MetaRouter, ObjectRecord, RelocateOutcome, StripeRecord};
use simnet::NodeId;

use crate::{EcPipeError, Result};

/// Metadata of one stripe: where each of its `n` blocks lives, and the
/// placement epoch that location vector corresponds to.
#[derive(Debug, Clone)]
pub struct StripeMeta {
    /// The stripe id.
    pub id: StripeId,
    /// `locations[i]` is the node storing block `i` of the stripe.
    pub locations: Vec<NodeId>,
    /// The stripe's placement epoch: 0 at registration, bumped by every
    /// accepted relocation.
    pub epoch: u64,
}

impl StripeMeta {
    /// The node storing a given block index.
    pub fn node_of(&self, index: usize) -> NodeId {
        self.locations[index]
    }

    /// The block id of a given index within this stripe.
    pub fn block_id(&self, index: usize) -> BlockId {
        BlockId {
            stripe: self.id,
            index,
        }
    }
}

impl From<StripeRecord> for StripeMeta {
    fn from(r: StripeRecord) -> Self {
        StripeMeta {
            id: r.id,
            locations: r.locations,
            epoch: r.epoch,
        }
    }
}

/// Metadata of one named object stored through the
/// [`EcPipe`](crate::EcPipe) façade: its true byte length and the stripes
/// that hold its (zero-padded) blocks, in order.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object name.
    pub name: String,
    /// Original size in bytes (before padding to whole blocks).
    pub size: usize,
    /// The stripes storing the object, in offset order. Each stripe holds
    /// `k` data blocks of the object.
    pub stripes: Vec<StripeId>,
}

impl From<ObjectRecord> for ObjectMeta {
    fn from(r: ObjectRecord) -> Self {
        ObjectMeta {
            name: r.name,
            size: r.size,
            stripes: r.stripes,
        }
    }
}

impl From<ObjectMeta> for ObjectRecord {
    fn from(m: ObjectMeta) -> Self {
        ObjectRecord {
            name: m.name,
            size: m.size,
            stripes: m.stripes,
        }
    }
}

/// How the coordinator picks helpers when more are available than needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Let the erasure code pick from all available blocks (lowest indices
    /// first for RS; the local group for LRC).
    CodeDefault,
    /// Greedy least-recently-selected scheduling (§3.3), used for full-node
    /// recovery so that no helper is overloaded across stripes.
    LeastRecentlyUsed,
}

/// Everything a set of helpers and a requestor need to execute one
/// single-block repair.
#[derive(Debug, Clone)]
pub struct RepairDirective {
    /// The stripe being repaired.
    pub stripe: StripeId,
    /// The linear repair plan (failed index, helper indices, coefficients).
    pub plan: RepairPlan,
    /// The helpers in pipeline order: `(node, block id, coefficient)`.
    pub path: Vec<(NodeId, BlockId, u8)>,
    /// The node that receives the repaired block.
    pub requestor: NodeId,
    /// Block/slice layout.
    pub layout: SliceLayout,
    /// The stripe's placement epoch when the repair was planned. Completing
    /// the repair through
    /// [`relocate_block_at`](Coordinator::relocate_block_at) with this
    /// epoch rejects the completion if the block relocated in the meantime.
    pub epoch: u64,
}

impl RepairDirective {
    /// Reorders the helper path (e.g. after rack-aware or weighted path
    /// selection). The node set must stay the same.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the current helper nodes.
    pub fn with_path_order(mut self, order: &[NodeId]) -> Self {
        assert_eq!(order.len(), self.path.len(), "path length mismatch");
        let mut by_node: HashMap<NodeId, (NodeId, BlockId, u8)> =
            self.path.iter().map(|e| (e.0, *e)).collect();
        self.path = order
            .iter()
            .map(|n| by_node.remove(n).expect("order must match helper nodes"))
            .collect();
        self
    }

    /// The helper nodes in path order.
    pub fn helper_nodes(&self) -> Vec<NodeId> {
        self.path.iter().map(|e| e.0).collect()
    }

    /// The repair-job tag stamped on every
    /// [`SliceMsg`](crate::transport::SliceMsg) and carried in TCP wire
    /// frames: the failed block index (the stripe id travels alongside it).
    /// The tags are observability metadata — frame routing itself is by
    /// link id.
    pub fn repair_id(&self) -> u64 {
        self.plan.failed as u64
    }
}

/// A multi-block repair directive (§4.4): shared helpers, one coefficient row
/// and one requestor per failed block.
#[derive(Debug, Clone)]
pub struct MultiRepairDirective {
    /// The stripe being repaired.
    pub stripe: StripeId,
    /// The underlying multi-block plan.
    pub plan: MultiRepairPlan,
    /// The helpers in pipeline order: `(node, block id)`.
    pub path: Vec<(NodeId, BlockId)>,
    /// One requestor per failed block, in `plan.failed` order.
    pub requestors: Vec<NodeId>,
    /// Block/slice layout.
    pub layout: SliceLayout,
    /// The stripe's placement epoch when the repair was planned (see
    /// [`RepairDirective::epoch`]).
    pub epoch: u64,
}

impl MultiRepairDirective {
    /// The repair-job tag for wire frames (see
    /// [`RepairDirective::repair_id`]): the lowest failed index stands in
    /// for the whole batch. Not unique across overlapping failure sets —
    /// it labels traffic for observability, it does not route it.
    pub fn repair_id(&self) -> u64 {
        self.plan.failed.first().map(|&f| f as u64).unwrap_or(0)
    }
}

/// The ECPipe coordinator: planning logic over the shared metadata plane.
pub struct Coordinator {
    code: Arc<dyn ErasureCode>,
    layout: SliceLayout,
    meta: Arc<MetaRouter>,
    last_selected: HashMap<NodeId, u64>,
    clock: u64,
}

impl Coordinator {
    /// Creates a coordinator for a given code and slice layout, backed by a
    /// fresh ephemeral metadata router (the historical behavior).
    pub fn new(code: Arc<dyn ErasureCode>, layout: SliceLayout) -> Self {
        let meta = MetaRouter::open(MetaConfig::ephemeral())
            .expect("opening an ephemeral metadata router performs no I/O");
        Coordinator::with_meta(code, layout, Arc::new(meta))
    }

    /// Creates a coordinator over an existing (possibly durable, possibly
    /// recovered) metadata router.
    pub fn with_meta(
        code: Arc<dyn ErasureCode>,
        layout: SliceLayout,
        meta: Arc<MetaRouter>,
    ) -> Self {
        Coordinator {
            code,
            layout,
            meta,
            last_selected: HashMap::new(),
            clock: 0,
        }
    }

    /// The erasure code in use.
    pub fn code(&self) -> &Arc<dyn ErasureCode> {
        &self.code
    }

    /// The block/slice layout in use.
    pub fn layout(&self) -> SliceLayout {
        self.layout
    }

    /// The metadata router this coordinator plans against.
    pub fn meta(&self) -> &Arc<MetaRouter> {
        &self.meta
    }

    /// Registers a stripe's block locations. Re-registering an existing
    /// stripe rewrites its placement and bumps its epoch.
    ///
    /// # Panics
    ///
    /// Panics if the number of locations differs from the code's `n`, or if
    /// the durable metadata WAL cannot be appended.
    pub fn register_stripe(&mut self, id: StripeId, locations: Vec<NodeId>) {
        assert_eq!(
            locations.len(),
            self.code.n(),
            "stripe must have one location per coded block"
        );
        self.meta
            .register_stripe(id, locations)
            .expect("metadata WAL append");
    }

    /// Hands out the next unused stripe id. Ids registered through
    /// [`register_stripe`](Self::register_stripe) are never re-issued, so
    /// façade `put`s and hand-registered stripes can share one namespace.
    pub fn allocate_stripe_id(&mut self) -> u64 {
        self.meta.allocate_stripe_id().0
    }

    /// Records a named object and the stripes that store it. Replaces any
    /// previous object of the same name.
    ///
    /// # Panics
    ///
    /// Panics if the durable metadata WAL cannot be appended.
    pub fn register_object(&mut self, meta: ObjectMeta) {
        self.meta
            .register_object(meta.into())
            .expect("metadata WAL append");
    }

    /// Looks up a named object.
    pub fn object(&self, name: &str) -> Result<ObjectMeta> {
        self.meta
            .object(name)
            .map(ObjectMeta::from)
            .ok_or_else(|| EcPipeError::InvalidRequest {
                reason: format!("no such object: {name}"),
            })
    }

    /// Whether an object of this name is registered.
    pub fn has_object(&self, name: &str) -> bool {
        self.meta.has_object(name)
    }

    /// All registered objects, ordered by name. Clones the whole namespace
    /// — prefer [`for_each_object`](Self::for_each_object) or
    /// [`object_count`](Self::object_count) when iterating at scale.
    pub fn objects(&self) -> Vec<ObjectMeta> {
        let mut metas = Vec::with_capacity(self.meta.object_count());
        self.meta
            .for_each_object(|o| metas.push(ObjectMeta::from(o.clone())));
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        metas
    }

    /// Visits every registered object without cloning the namespace. Shard
    /// order, not name order; `f` must not call back into this coordinator
    /// or its router.
    pub fn for_each_object(&self, mut f: impl FnMut(&ObjectRecord)) {
        self.meta.for_each_object(&mut f);
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.meta.object_count()
    }

    /// Unregisters a named object, returning its metadata. The object's
    /// stripes stay registered until [`forget_stripe`](Self::forget_stripe).
    pub fn remove_object(&mut self, name: &str) -> Option<ObjectMeta> {
        self.meta
            .remove_object(name)
            .expect("metadata WAL append")
            .map(ObjectMeta::from)
    }

    /// Drops a stripe's metadata (e.g. when its object is deleted). The id
    /// is not re-issued. Returns whether the stripe was registered.
    pub fn forget_stripe(&mut self, id: StripeId) -> bool {
        self.meta.forget_stripe(id).expect("metadata WAL append")
    }

    /// Looks up a stripe's metadata.
    pub fn stripe(&self, id: StripeId) -> Result<StripeMeta> {
        self.meta
            .stripe(id)
            .map(StripeMeta::from)
            .ok_or(EcPipeError::UnknownStripe { stripe: id.0 })
    }

    /// The current placement epoch of a stripe.
    pub fn epoch_of(&self, id: StripeId) -> Result<u64> {
        Ok(self.meta.epoch_of(id)?)
    }

    /// All registered stripes, ordered by id. Clones the whole namespace —
    /// prefer [`for_each_stripe`](Self::for_each_stripe) or
    /// [`stripe_count`](Self::stripe_count) when iterating at scale.
    pub fn stripes(&self) -> Vec<StripeMeta> {
        let mut metas = Vec::with_capacity(self.meta.stripe_count());
        self.meta
            .for_each_stripe(|s| metas.push(StripeMeta::from(s.clone())));
        metas.sort_by_key(|m| m.id);
        metas
    }

    /// Visits every registered stripe without cloning the namespace. Shard
    /// order, not id order; `f` must not call back into this coordinator or
    /// its router.
    pub fn for_each_stripe(&self, mut f: impl FnMut(&StripeRecord)) {
        self.meta.for_each_stripe(&mut f);
    }

    /// Number of registered stripes.
    pub fn stripe_count(&self) -> usize {
        self.meta.stripe_count()
    }

    /// The stripes that stored a block on `node` (the ones affected by that
    /// node's failure), with the index of the lost block.
    pub fn stripes_on_node(&self, node: NodeId) -> Vec<(StripeId, usize)> {
        self.meta.stripes_on_node(node)
    }

    /// Records that a block now lives on `node` (e.g. after the repair
    /// manager reconstructed it onto a requestor), so later repair plans for
    /// the stripe treat that copy as available again. Bumps the stripe's
    /// placement epoch.
    ///
    /// Returns `Ok(false)` — leaving the mapping unchanged — when `node`
    /// already holds another block of the stripe: a stripe's blocks must
    /// stay on distinct nodes (the same invariant the write path enforces),
    /// and the stored copy remains readable from the node's store either
    /// way. The caller is responsible for the block actually being present
    /// in `node`'s store; the coordinator only tracks metadata.
    pub fn relocate_block(&mut self, stripe: StripeId, index: usize, node: NodeId) -> Result<bool> {
        match self.meta.relocate(stripe, index, node, None)? {
            RelocateOutcome::Moved { .. } => Ok(true),
            RelocateOutcome::Refused => Ok(false),
        }
    }

    /// Like [`relocate_block`](Self::relocate_block), but only if the
    /// stripe is still at `planned_epoch` — the completion path of an
    /// epoch-carrying [`RepairDirective`]. Returns
    /// [`EcPipeError::StaleRepair`] when the block relocated after the
    /// directive was planned, so a stale repair is rejected instead of
    /// silently double-healing.
    pub fn relocate_block_at(
        &mut self,
        stripe: StripeId,
        index: usize,
        node: NodeId,
        planned_epoch: u64,
    ) -> Result<bool> {
        match self
            .meta
            .relocate(stripe, index, node, Some(planned_epoch))?
        {
            RelocateOutcome::Moved { .. } => Ok(true),
            RelocateOutcome::Refused => Ok(false),
        }
    }

    /// Plans a single-block repair: the failed block of `stripe` is
    /// reconstructed at `requestor`.
    ///
    /// `unavailable` lists additional block indices that must not be used as
    /// helpers (e.g. blocks on other failed nodes).
    pub fn plan_single_repair(
        &mut self,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        unavailable: &[usize],
        policy: SelectionPolicy,
    ) -> Result<RepairDirective> {
        let meta = self.stripe(stripe)?;
        if failed >= self.code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("block index {failed} out of range"),
            });
        }
        let mut available: Vec<usize> = (0..self.code.n())
            .filter(|&i| i != failed && !unavailable.contains(&i) && meta.node_of(i) != requestor)
            .collect();
        if policy == SelectionPolicy::LeastRecentlyUsed && available.len() > self.code.k() {
            // Order candidates by how recently their node served as a helper
            // and keep the k least recently used.
            available.sort_by_key(|&i| {
                (
                    self.last_selected
                        .get(&meta.node_of(i))
                        .copied()
                        .unwrap_or(0),
                    i,
                )
            });
            available.truncate(self.code.k());
            available.sort_unstable();
        }
        let plan = self.code.repair_plan(failed, &available)?;
        for src in &plan.sources {
            self.clock += 1;
            self.last_selected
                .insert(meta.node_of(src.block_index), self.clock);
        }
        let path: Vec<(NodeId, BlockId, u8)> = plan
            .sources
            .iter()
            .map(|src| {
                (
                    meta.node_of(src.block_index),
                    meta.block_id(src.block_index),
                    src.coefficient,
                )
            })
            .collect();
        Ok(RepairDirective {
            stripe,
            plan,
            path,
            requestor,
            layout: self.layout,
            epoch: meta.epoch,
        })
    }

    /// Plans a multi-block repair (§4.4): every index in `failed` is
    /// reconstructed, one requestor per failed block.
    pub fn plan_multi_repair(
        &mut self,
        stripe: StripeId,
        failed: &[usize],
        requestors: &[NodeId],
    ) -> Result<MultiRepairDirective> {
        if failed.len() != requestors.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: "one requestor per failed block required".to_string(),
            });
        }
        let meta = self.stripe(stripe)?;
        let available: Vec<usize> = (0..self.code.n())
            .filter(|i| !failed.contains(i) && !requestors.contains(&meta.node_of(*i)))
            .collect();
        let plan = self.code.multi_repair_plan(failed, &available)?;
        let path: Vec<(NodeId, BlockId)> = plan
            .helpers
            .iter()
            .map(|&i| (meta.node_of(i), meta.block_id(i)))
            .collect();
        // Requestors ordered to match plan.failed (which is sorted).
        let mut requestor_of: HashMap<usize, NodeId> = failed
            .iter()
            .copied()
            .zip(requestors.iter().copied())
            .collect();
        let ordered_requestors: Vec<NodeId> = plan
            .failed
            .iter()
            .map(|f| requestor_of.remove(f).expect("requestor for failed block"))
            .collect();
        Ok(MultiRepairDirective {
            stripe,
            plan,
            path,
            requestors: ordered_requestors,
            layout: self.layout,
            epoch: meta.epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::ReedSolomon;

    fn coordinator() -> Coordinator {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        Coordinator::new(code, SliceLayout::new(4096, 1024))
    }

    #[test]
    fn register_and_lookup_stripes() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        c.register_stripe(StripeId(2), vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(2), 2);
        assert_eq!(c.stripe(StripeId(2)).unwrap().node_of(0), 5);
        assert!(c.stripe(StripeId(9)).is_err());
        assert_eq!(c.stripes().len(), 2);
        assert_eq!(c.stripe_count(), 2);
    }

    #[test]
    fn object_namespace_and_stripe_allocation() {
        let mut c = coordinator();
        // Hand-registered stripes push the allocator past their ids.
        c.register_stripe(StripeId(4), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.allocate_stripe_id(), 5);
        assert_eq!(c.allocate_stripe_id(), 6);
        assert!(!c.has_object("/a"));
        assert!(c.object("/a").is_err());
        c.register_object(ObjectMeta {
            name: "/a".to_string(),
            size: 123,
            stripes: vec![StripeId(5), StripeId(6)],
        });
        c.register_object(ObjectMeta {
            name: "/b".to_string(),
            size: 7,
            stripes: vec![StripeId(4)],
        });
        assert!(c.has_object("/a"));
        assert_eq!(c.object("/a").unwrap().size, 123);
        let names: Vec<String> = c.objects().into_iter().map(|o| o.name).collect();
        assert_eq!(names, vec!["/a", "/b"]);
        assert_eq!(c.object_count(), 2);
        let mut seen = 0;
        c.for_each_object(|_| seen += 1);
        assert_eq!(seen, 2);
    }

    #[test]
    fn relocate_block_updates_metadata() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        assert!(c.relocate_block(StripeId(1), 2, 9).unwrap());
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(2), 9);
        assert_eq!(c.stripes_on_node(9), vec![(StripeId(1), 2)]);
        assert!(c.relocate_block(StripeId(7), 0, 9).is_err());
        assert!(c.relocate_block(StripeId(1), 6, 9).is_err());
        // Relocating a second block of the stripe onto node 9 would break
        // the distinct-nodes invariant: refused, mapping unchanged.
        assert!(!c.relocate_block(StripeId(1), 4, 9).unwrap());
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(4), 4);
        // Re-relocating the same block to the same node is a no-op success.
        assert!(c.relocate_block(StripeId(1), 2, 9).unwrap());
    }

    #[test]
    fn epochs_version_placements_and_reject_stale_completions() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.epoch_of(StripeId(1)).unwrap(), 0);
        let d = c
            .plan_single_repair(StripeId(1), 2, 9, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        assert_eq!(d.epoch, 0);
        // The placement moves underneath the directive...
        assert!(c.relocate_block(StripeId(1), 2, 8).unwrap());
        assert_eq!(c.epoch_of(StripeId(1)).unwrap(), 1);
        // ...so completing it at the planned epoch is rejected.
        match c.relocate_block_at(StripeId(1), 2, 9, d.epoch) {
            Err(EcPipeError::StaleRepair {
                planned: 0,
                current: 1,
                ..
            }) => {}
            other => panic!("expected StaleRepair, got {other:?}"),
        }
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(2), 8);
        // A completion planned at the current epoch goes through.
        assert!(c.relocate_block_at(StripeId(1), 2, 9, 1).unwrap());
        assert_eq!(c.epoch_of(StripeId(1)).unwrap(), 2);
    }

    #[test]
    fn stripes_on_node_finds_affected() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        c.register_stripe(StripeId(2), vec![6, 1, 2, 3, 4, 5]);
        assert_eq!(c.stripes_on_node(0), vec![(StripeId(1), 0)]);
        assert_eq!(
            c.stripes_on_node(1),
            vec![(StripeId(1), 1), (StripeId(2), 1)]
        );
        assert!(c.stripes_on_node(99).is_empty());
    }

    #[test]
    fn single_repair_directive_excludes_requestor_node() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 0, 3, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        assert_eq!(d.plan.failed, 0);
        assert_eq!(d.path.len(), 4);
        assert!(d.helper_nodes().iter().all(|&n| n != 3 && n != 0));
    }

    #[test]
    fn greedy_policy_rotates_helpers_across_repairs() {
        // Two stripes over 8 nodes: k = 4 helpers each, 7 candidates per
        // repair, so the second repair must use the 3 nodes the first one did
        // not touch and only one previously-used node.
        let code = Arc::new(ReedSolomon::new(8, 4).unwrap());
        let mut c = Coordinator::new(code, SliceLayout::new(4096, 1024));
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        c.register_stripe(StripeId(2), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let d1 = c
            .plan_single_repair(StripeId(1), 0, 100, &[], SelectionPolicy::LeastRecentlyUsed)
            .unwrap();
        let d2 = c
            .plan_single_repair(StripeId(2), 0, 100, &[], SelectionPolicy::LeastRecentlyUsed)
            .unwrap();
        let h1 = d1.helper_nodes();
        let h2 = d2.helper_nodes();
        let overlap = h2.iter().filter(|n| h1.contains(n)).count();
        assert!(overlap <= 1, "h1 {h1:?} h2 {h2:?}");
        for unused in [5, 6, 7] {
            assert!(
                h2.contains(&unused),
                "h2 {h2:?} should reuse idle node {unused}"
            );
        }
    }

    #[test]
    fn path_reordering_preserves_entries() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 5, 0, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let mut order = d.helper_nodes();
        order.reverse();
        let reordered = d.clone().with_path_order(&order);
        assert_eq!(reordered.helper_nodes(), order);
        // Coefficients still attached to the right nodes.
        for entry in &d.path {
            assert!(reordered.path.contains(entry));
        }
    }

    #[test]
    fn multi_repair_directive_matches_failures() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_multi_repair(StripeId(1), &[5, 1], &[10, 11])
            .unwrap();
        assert_eq!(d.plan.failed, vec![1, 5]);
        assert_eq!(d.requestors, vec![11, 10]);
        assert_eq!(d.path.len(), 4);
        assert_eq!(d.epoch, 0);
    }

    #[test]
    fn unavailable_blocks_are_not_helpers() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 0, 9, &[1], SelectionPolicy::CodeDefault)
            .unwrap();
        let helper_indices = d.plan.helper_indices();
        assert!(!helper_indices.contains(&1));
        assert_eq!(helper_indices.len(), 4);
        // Excluding one more block leaves fewer than k helpers, which is an
        // error.
        assert!(c
            .plan_single_repair(StripeId(1), 0, 9, &[1, 2], SelectionPolicy::CodeDefault)
            .is_err());
    }
}
