//! The ECPipe coordinator.
//!
//! The coordinator (one per deployment, Figure 7) keeps the mapping from
//! stripes to block locations, answers repair requests by selecting helpers
//! and deriving the decoding coefficients, and implements the greedy
//! least-recently-selected helper scheduling used during full-node recovery
//! (§3.3).

use std::collections::HashMap;
use std::sync::Arc;

use ecc::slice::SliceLayout;
use ecc::stripe::{BlockId, StripeId};
use ecc::{ErasureCode, MultiRepairPlan, RepairPlan};
use simnet::NodeId;

use crate::{EcPipeError, Result};

/// Metadata of one stripe: where each of its `n` blocks lives.
#[derive(Debug, Clone)]
pub struct StripeMeta {
    /// The stripe id.
    pub id: StripeId,
    /// `locations[i]` is the node storing block `i` of the stripe.
    pub locations: Vec<NodeId>,
}

impl StripeMeta {
    /// The node storing a given block index.
    pub fn node_of(&self, index: usize) -> NodeId {
        self.locations[index]
    }

    /// The block id of a given index within this stripe.
    pub fn block_id(&self, index: usize) -> BlockId {
        BlockId {
            stripe: self.id,
            index,
        }
    }
}

/// Metadata of one named object stored through the
/// [`EcPipe`](crate::EcPipe) façade: its true byte length and the stripes
/// that hold its (zero-padded) blocks, in order.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object name.
    pub name: String,
    /// Original size in bytes (before padding to whole blocks).
    pub size: usize,
    /// The stripes storing the object, in offset order. Each stripe holds
    /// `k` data blocks of the object.
    pub stripes: Vec<StripeId>,
}

/// How the coordinator picks helpers when more are available than needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Let the erasure code pick from all available blocks (lowest indices
    /// first for RS; the local group for LRC).
    CodeDefault,
    /// Greedy least-recently-selected scheduling (§3.3), used for full-node
    /// recovery so that no helper is overloaded across stripes.
    LeastRecentlyUsed,
}

/// Everything a set of helpers and a requestor need to execute one
/// single-block repair.
#[derive(Debug, Clone)]
pub struct RepairDirective {
    /// The stripe being repaired.
    pub stripe: StripeId,
    /// The linear repair plan (failed index, helper indices, coefficients).
    pub plan: RepairPlan,
    /// The helpers in pipeline order: `(node, block id, coefficient)`.
    pub path: Vec<(NodeId, BlockId, u8)>,
    /// The node that receives the repaired block.
    pub requestor: NodeId,
    /// Block/slice layout.
    pub layout: SliceLayout,
}

impl RepairDirective {
    /// Reorders the helper path (e.g. after rack-aware or weighted path
    /// selection). The node set must stay the same.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the current helper nodes.
    pub fn with_path_order(mut self, order: &[NodeId]) -> Self {
        assert_eq!(order.len(), self.path.len(), "path length mismatch");
        let mut by_node: HashMap<NodeId, (NodeId, BlockId, u8)> =
            self.path.iter().map(|e| (e.0, *e)).collect();
        self.path = order
            .iter()
            .map(|n| by_node.remove(n).expect("order must match helper nodes"))
            .collect();
        self
    }

    /// The helper nodes in path order.
    pub fn helper_nodes(&self) -> Vec<NodeId> {
        self.path.iter().map(|e| e.0).collect()
    }

    /// The repair-job tag stamped on every
    /// [`SliceMsg`](crate::transport::SliceMsg) and carried in TCP wire
    /// frames: the failed block index (the stripe id travels alongside it).
    /// The tags are observability metadata — frame routing itself is by
    /// link id.
    pub fn repair_id(&self) -> u64 {
        self.plan.failed as u64
    }
}

/// A multi-block repair directive (§4.4): shared helpers, one coefficient row
/// and one requestor per failed block.
#[derive(Debug, Clone)]
pub struct MultiRepairDirective {
    /// The stripe being repaired.
    pub stripe: StripeId,
    /// The underlying multi-block plan.
    pub plan: MultiRepairPlan,
    /// The helpers in pipeline order: `(node, block id)`.
    pub path: Vec<(NodeId, BlockId)>,
    /// One requestor per failed block, in `plan.failed` order.
    pub requestors: Vec<NodeId>,
    /// Block/slice layout.
    pub layout: SliceLayout,
}

impl MultiRepairDirective {
    /// The repair-job tag for wire frames (see
    /// [`RepairDirective::repair_id`]): the lowest failed index stands in
    /// for the whole batch. Not unique across overlapping failure sets —
    /// it labels traffic for observability, it does not route it.
    pub fn repair_id(&self) -> u64 {
        self.plan.failed.first().map(|&f| f as u64).unwrap_or(0)
    }
}

/// The ECPipe coordinator.
pub struct Coordinator {
    code: Arc<dyn ErasureCode>,
    layout: SliceLayout,
    stripes: HashMap<u64, StripeMeta>,
    objects: HashMap<String, ObjectMeta>,
    next_stripe: u64,
    last_selected: HashMap<NodeId, u64>,
    clock: u64,
}

impl Coordinator {
    /// Creates a coordinator for a given code and slice layout.
    pub fn new(code: Arc<dyn ErasureCode>, layout: SliceLayout) -> Self {
        Coordinator {
            code,
            layout,
            stripes: HashMap::new(),
            objects: HashMap::new(),
            next_stripe: 0,
            last_selected: HashMap::new(),
            clock: 0,
        }
    }

    /// The erasure code in use.
    pub fn code(&self) -> &Arc<dyn ErasureCode> {
        &self.code
    }

    /// The block/slice layout in use.
    pub fn layout(&self) -> SliceLayout {
        self.layout
    }

    /// Registers a stripe's block locations.
    ///
    /// # Panics
    ///
    /// Panics if the number of locations differs from the code's `n`.
    pub fn register_stripe(&mut self, id: StripeId, locations: Vec<NodeId>) {
        assert_eq!(
            locations.len(),
            self.code.n(),
            "stripe must have one location per coded block"
        );
        self.next_stripe = self.next_stripe.max(id.0 + 1);
        self.stripes.insert(id.0, StripeMeta { id, locations });
    }

    /// Hands out the next unused stripe id. Ids registered through
    /// [`register_stripe`](Self::register_stripe) are never re-issued, so
    /// façade `put`s and hand-registered stripes can share one namespace.
    pub fn allocate_stripe_id(&mut self) -> u64 {
        let id = self.next_stripe;
        self.next_stripe += 1;
        id
    }

    /// Records a named object and the stripes that store it. Replaces any
    /// previous object of the same name.
    pub fn register_object(&mut self, meta: ObjectMeta) {
        self.objects.insert(meta.name.clone(), meta);
    }

    /// Looks up a named object.
    pub fn object(&self, name: &str) -> Result<&ObjectMeta> {
        self.objects
            .get(name)
            .ok_or_else(|| EcPipeError::InvalidRequest {
                reason: format!("no such object: {name}"),
            })
    }

    /// Whether an object of this name is registered.
    pub fn has_object(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    /// All registered objects, ordered by name.
    pub fn objects(&self) -> Vec<&ObjectMeta> {
        let mut metas: Vec<&ObjectMeta> = self.objects.values().collect();
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        metas
    }

    /// Unregisters a named object, returning its metadata. The object's
    /// stripes stay registered until [`forget_stripe`](Self::forget_stripe).
    pub fn remove_object(&mut self, name: &str) -> Option<ObjectMeta> {
        self.objects.remove(name)
    }

    /// Drops a stripe's metadata (e.g. when its object is deleted). The id
    /// is not re-issued. Returns whether the stripe was registered.
    pub fn forget_stripe(&mut self, id: StripeId) -> bool {
        self.stripes.remove(&id.0).is_some()
    }

    /// Looks up a stripe's metadata.
    pub fn stripe(&self, id: StripeId) -> Result<&StripeMeta> {
        self.stripes
            .get(&id.0)
            .ok_or(EcPipeError::UnknownStripe { stripe: id.0 })
    }

    /// All registered stripes, ordered by id.
    pub fn stripes(&self) -> Vec<&StripeMeta> {
        let mut metas: Vec<&StripeMeta> = self.stripes.values().collect();
        metas.sort_by_key(|m| m.id);
        metas
    }

    /// The stripes that stored a block on `node` (the ones affected by that
    /// node's failure), with the index of the lost block.
    pub fn stripes_on_node(&self, node: NodeId) -> Vec<(StripeId, usize)> {
        let mut affected: Vec<(StripeId, usize)> = self
            .stripes
            .values()
            .filter_map(|m| {
                m.locations
                    .iter()
                    .position(|&n| n == node)
                    .map(|idx| (m.id, idx))
            })
            .collect();
        affected.sort();
        affected
    }

    /// Records that a block now lives on `node` (e.g. after the repair
    /// manager reconstructed it onto a requestor), so later repair plans for
    /// the stripe treat that copy as available again.
    ///
    /// Returns `Ok(false)` — leaving the mapping unchanged — when `node`
    /// already holds another block of the stripe: a stripe's blocks must
    /// stay on distinct nodes (the same invariant the write path enforces),
    /// and the stored copy remains readable from the node's store either
    /// way. The caller is responsible for the block actually being present
    /// in `node`'s store; the coordinator only tracks metadata.
    pub fn relocate_block(&mut self, stripe: StripeId, index: usize, node: NodeId) -> Result<bool> {
        let meta = self
            .stripes
            .get_mut(&stripe.0)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?;
        if index >= meta.locations.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("block index {index} out of range"),
            });
        }
        if meta
            .locations
            .iter()
            .enumerate()
            .any(|(i, &n)| i != index && n == node)
        {
            return Ok(false);
        }
        meta.locations[index] = node;
        Ok(true)
    }

    /// Plans a single-block repair: the failed block of `stripe` is
    /// reconstructed at `requestor`.
    ///
    /// `unavailable` lists additional block indices that must not be used as
    /// helpers (e.g. blocks on other failed nodes).
    pub fn plan_single_repair(
        &mut self,
        stripe: StripeId,
        failed: usize,
        requestor: NodeId,
        unavailable: &[usize],
        policy: SelectionPolicy,
    ) -> Result<RepairDirective> {
        let meta = self
            .stripes
            .get(&stripe.0)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?
            .clone();
        if failed >= self.code.n() {
            return Err(EcPipeError::InvalidRequest {
                reason: format!("block index {failed} out of range"),
            });
        }
        let mut available: Vec<usize> = (0..self.code.n())
            .filter(|&i| i != failed && !unavailable.contains(&i) && meta.node_of(i) != requestor)
            .collect();
        if policy == SelectionPolicy::LeastRecentlyUsed && available.len() > self.code.k() {
            // Order candidates by how recently their node served as a helper
            // and keep the k least recently used.
            available.sort_by_key(|&i| {
                (
                    self.last_selected
                        .get(&meta.node_of(i))
                        .copied()
                        .unwrap_or(0),
                    i,
                )
            });
            available.truncate(self.code.k());
            available.sort_unstable();
        }
        let plan = self.code.repair_plan(failed, &available)?;
        for src in &plan.sources {
            self.clock += 1;
            self.last_selected
                .insert(meta.node_of(src.block_index), self.clock);
        }
        let path: Vec<(NodeId, BlockId, u8)> = plan
            .sources
            .iter()
            .map(|src| {
                (
                    meta.node_of(src.block_index),
                    meta.block_id(src.block_index),
                    src.coefficient,
                )
            })
            .collect();
        Ok(RepairDirective {
            stripe,
            plan,
            path,
            requestor,
            layout: self.layout,
        })
    }

    /// Plans a multi-block repair (§4.4): every index in `failed` is
    /// reconstructed, one requestor per failed block.
    pub fn plan_multi_repair(
        &mut self,
        stripe: StripeId,
        failed: &[usize],
        requestors: &[NodeId],
    ) -> Result<MultiRepairDirective> {
        if failed.len() != requestors.len() {
            return Err(EcPipeError::InvalidRequest {
                reason: "one requestor per failed block required".to_string(),
            });
        }
        let meta = self
            .stripes
            .get(&stripe.0)
            .ok_or(EcPipeError::UnknownStripe { stripe: stripe.0 })?
            .clone();
        let available: Vec<usize> = (0..self.code.n())
            .filter(|i| !failed.contains(i) && !requestors.contains(&meta.node_of(*i)))
            .collect();
        let plan = self.code.multi_repair_plan(failed, &available)?;
        let path: Vec<(NodeId, BlockId)> = plan
            .helpers
            .iter()
            .map(|&i| (meta.node_of(i), meta.block_id(i)))
            .collect();
        // Requestors ordered to match plan.failed (which is sorted).
        let mut requestor_of: HashMap<usize, NodeId> = failed
            .iter()
            .copied()
            .zip(requestors.iter().copied())
            .collect();
        let ordered_requestors: Vec<NodeId> = plan
            .failed
            .iter()
            .map(|f| requestor_of.remove(f).expect("requestor for failed block"))
            .collect();
        Ok(MultiRepairDirective {
            stripe,
            plan,
            path,
            requestors: ordered_requestors,
            layout: self.layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::ReedSolomon;

    fn coordinator() -> Coordinator {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        Coordinator::new(code, SliceLayout::new(4096, 1024))
    }

    #[test]
    fn register_and_lookup_stripes() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        c.register_stripe(StripeId(2), vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(2), 2);
        assert_eq!(c.stripe(StripeId(2)).unwrap().node_of(0), 5);
        assert!(c.stripe(StripeId(9)).is_err());
        assert_eq!(c.stripes().len(), 2);
    }

    #[test]
    fn object_namespace_and_stripe_allocation() {
        let mut c = coordinator();
        // Hand-registered stripes push the allocator past their ids.
        c.register_stripe(StripeId(4), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.allocate_stripe_id(), 5);
        assert_eq!(c.allocate_stripe_id(), 6);
        assert!(!c.has_object("/a"));
        assert!(c.object("/a").is_err());
        c.register_object(ObjectMeta {
            name: "/a".to_string(),
            size: 123,
            stripes: vec![StripeId(5), StripeId(6)],
        });
        c.register_object(ObjectMeta {
            name: "/b".to_string(),
            size: 7,
            stripes: vec![StripeId(4)],
        });
        assert!(c.has_object("/a"));
        assert_eq!(c.object("/a").unwrap().size, 123);
        let names: Vec<&str> = c.objects().iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["/a", "/b"]);
    }

    #[test]
    fn relocate_block_updates_metadata() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        assert!(c.relocate_block(StripeId(1), 2, 9).unwrap());
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(2), 9);
        assert_eq!(c.stripes_on_node(9), vec![(StripeId(1), 2)]);
        assert!(c.relocate_block(StripeId(7), 0, 9).is_err());
        assert!(c.relocate_block(StripeId(1), 6, 9).is_err());
        // Relocating a second block of the stripe onto node 9 would break
        // the distinct-nodes invariant: refused, mapping unchanged.
        assert!(!c.relocate_block(StripeId(1), 4, 9).unwrap());
        assert_eq!(c.stripe(StripeId(1)).unwrap().node_of(4), 4);
        // Re-relocating the same block to the same node is a no-op success.
        assert!(c.relocate_block(StripeId(1), 2, 9).unwrap());
    }

    #[test]
    fn stripes_on_node_finds_affected() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        c.register_stripe(StripeId(2), vec![6, 1, 2, 3, 4, 5]);
        assert_eq!(c.stripes_on_node(0), vec![(StripeId(1), 0)]);
        assert_eq!(
            c.stripes_on_node(1),
            vec![(StripeId(1), 1), (StripeId(2), 1)]
        );
        assert!(c.stripes_on_node(99).is_empty());
    }

    #[test]
    fn single_repair_directive_excludes_requestor_node() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 0, 3, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        assert_eq!(d.plan.failed, 0);
        assert_eq!(d.path.len(), 4);
        assert!(d.helper_nodes().iter().all(|&n| n != 3 && n != 0));
    }

    #[test]
    fn greedy_policy_rotates_helpers_across_repairs() {
        // Two stripes over 8 nodes: k = 4 helpers each, 7 candidates per
        // repair, so the second repair must use the 3 nodes the first one did
        // not touch and only one previously-used node.
        let code = Arc::new(ReedSolomon::new(8, 4).unwrap());
        let mut c = Coordinator::new(code, SliceLayout::new(4096, 1024));
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        c.register_stripe(StripeId(2), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let d1 = c
            .plan_single_repair(StripeId(1), 0, 100, &[], SelectionPolicy::LeastRecentlyUsed)
            .unwrap();
        let d2 = c
            .plan_single_repair(StripeId(2), 0, 100, &[], SelectionPolicy::LeastRecentlyUsed)
            .unwrap();
        let h1 = d1.helper_nodes();
        let h2 = d2.helper_nodes();
        let overlap = h2.iter().filter(|n| h1.contains(n)).count();
        assert!(overlap <= 1, "h1 {h1:?} h2 {h2:?}");
        for unused in [5, 6, 7] {
            assert!(
                h2.contains(&unused),
                "h2 {h2:?} should reuse idle node {unused}"
            );
        }
    }

    #[test]
    fn path_reordering_preserves_entries() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 5, 0, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let mut order = d.helper_nodes();
        order.reverse();
        let reordered = d.clone().with_path_order(&order);
        assert_eq!(reordered.helper_nodes(), order);
        // Coefficients still attached to the right nodes.
        for entry in &d.path {
            assert!(reordered.path.contains(entry));
        }
    }

    #[test]
    fn multi_repair_directive_matches_failures() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_multi_repair(StripeId(1), &[5, 1], &[10, 11])
            .unwrap();
        assert_eq!(d.plan.failed, vec![1, 5]);
        assert_eq!(d.requestors, vec![11, 10]);
        assert_eq!(d.path.len(), 4);
    }

    #[test]
    fn unavailable_blocks_are_not_helpers() {
        let mut c = coordinator();
        c.register_stripe(StripeId(1), vec![0, 1, 2, 3, 4, 5]);
        let d = c
            .plan_single_repair(StripeId(1), 0, 9, &[1], SelectionPolicy::CodeDefault)
            .unwrap();
        let helper_indices = d.plan.helper_indices();
        assert!(!helper_indices.contains(&1));
        assert_eq!(helper_indices.len(), 4);
        // Excluding one more block leaves fewer than k helpers, which is an
        // error.
        assert!(c
            .plan_single_repair(StripeId(1), 0, 9, &[1, 2], SelectionPolicy::CodeDefault)
            .is_err());
    }
}
