//! ECPipe: the repair-pipelining middleware runtime (§5 of the paper).
//!
//! ECPipe runs alongside a distributed storage system and performs repairs on
//! its behalf. The architecture mirrors the paper's Figure 7:
//!
//! * a [`Coordinator`] holds stripe metadata (block-to-node locations and the
//!   erasure code), selects helpers — including the greedy
//!   least-recently-used scheduling of §3.3 — and turns a repair request into
//!   a [`RepairDirective`];
//! * each storage node hosts a helper that reads blocks directly from its
//!   local [`BlockStore`] (the paper's helpers read blocks through the native
//!   file system rather than the storage-system routine);
//! * a requestor receives the repaired block.
//!
//! The [`exec`] module executes a directive for real: worker threads play the
//! helper roles, slices flow through a pluggable [`transport::Transport`] —
//! bounded in-process channels ([`ChannelTransport`]) or real localhost TCP
//! sockets ([`TcpTransport`], standing in for the paper's Redis/TCP data
//! plane) — and the GF(2^8) combination is performed on actual bytes, so
//! tests can compare the reconstructed block against the erased one.
//! Execution strategies cover conventional repair, PPR, repair pipelining
//! (slice level), block-level pipelining (`Pipe-B`) and the multi-block
//! repair of §4.4. Timing-shape experiments (who wins, by how much, under
//! which bandwidth) are run on the `simnet` simulator or, with
//! [`TcpTransport::with_rate_limit`], on throttled sockets; this runtime
//! demonstrates the data path and provides throughput microbenches.
//!
//! On top of the executors sits the [`manager`] subsystem: a prioritized
//! repair queue (degraded reads preempt corruption repairs, which preempt
//! background recovery), a bounded worker pool that runs many single-stripe
//! repairs concurrently, per-node in-flight admission caps enforcing the
//! §3.3 scheduling at runtime, a liveness view fed by repair outcomes (a
//! node that keeps failing its helper reads is declared dead and its
//! stripes auto-enqueued), a paced [scrubber](manager::Scrubber) that turns
//! silent bit-rot into queued repairs, and a structured [`ManagerReport`].
//! [`recovery::full_node_recovery_over`] is a thin sequential wrapper over
//! the same engine.
//!
//! The [`integrity`] module supplies the detection layer the scrubber and
//! the helpers rely on: [`ChecksummedStore`] pairs every block with
//! per-chunk CRC-32 checksums (persisted as `.crc` sidecars for
//! [`FileStore`] nodes), verifies every read — slice reads check only the
//! chunks they overlap — and surfaces rot as
//! [`EcPipeError::CorruptBlock`], which fails a repair stream cleanly
//! instead of letting poisoned bytes into the GF(2^8) combination.
//!
//! # Examples
//!
//! ```
//! use ecc::slice::SliceLayout;
//! use ecpipe::{Cluster, Coordinator, ExecStrategy};
//! use ecc::ReedSolomon;
//! use std::sync::Arc;
//!
//! // A 6-node cluster storing one (6,4) stripe of 4 KiB blocks.
//! let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
//! let layout = SliceLayout::new(4096, 1024);
//! let mut cluster = Cluster::in_memory(6);
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 4096]).collect();
//! let mut coordinator = Coordinator::new(code.clone(), layout);
//! let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
//!
//! // Erase block 2 and repair it onto node 5 with repair pipelining.
//! cluster.erase_block(stripe, 2);
//! let repaired = cluster
//!     .repair(&mut coordinator, stripe, 2, 5, ExecStrategy::RepairPipelining)
//!     .unwrap();
//! assert_eq!(repaired, data[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod coordinator;
mod error;
pub mod exec;
pub mod integrity;
pub mod manager;
pub mod recovery;
mod store;
pub mod transport;

pub use cluster::Cluster;
pub use coordinator::{
    Coordinator, MultiRepairDirective, RepairDirective, SelectionPolicy, StripeMeta,
};
pub use error::EcPipeError;
pub use exec::ExecStrategy;
pub use integrity::{BlockChecksums, ChecksummedStore, DEFAULT_CHUNK_SIZE};
pub use manager::{
    ManagerConfig, ManagerReport, NodeHealth, RepairManager, RepairPriority, RepairRequest,
    ScrubConfig, ScrubCycle, Scrubber,
};
pub use store::{BlockStore, FileStore, MemoryStore};
pub use transport::{ChannelTransport, TcpTransport, Transport, TransportError};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, EcPipeError>;
