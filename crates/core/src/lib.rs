//! ECPipe: the repair-pipelining middleware runtime (§5 of the paper).
//!
//! ECPipe runs alongside a distributed storage system and performs repairs on
//! its behalf. The architecture mirrors the paper's Figure 7:
//!
//! * a [`Coordinator`] holds stripe metadata (block-to-node locations and the
//!   erasure code), selects helpers — including the greedy
//!   least-recently-used scheduling of §3.3 — and turns a repair request into
//!   a [`RepairDirective`];
//! * each storage node hosts a helper that reads blocks directly from its
//!   local [`BlockStore`] (the paper's helpers read blocks through the native
//!   file system rather than the storage-system routine);
//! * a requestor receives the repaired block.
//!
//! The [`exec`] module executes a directive for real: worker threads play the
//! helper roles, slices flow through a pluggable [`transport::Transport`] —
//! bounded in-process channels ([`ChannelTransport`]) or real localhost TCP
//! sockets ([`TcpTransport`], standing in for the paper's Redis/TCP data
//! plane) — and the GF(2^8) combination is performed on actual bytes, so
//! tests can compare the reconstructed block against the erased one.
//! Execution strategies cover conventional repair, PPR, repair pipelining
//! (slice level), block-level pipelining (`Pipe-B`) and the multi-block
//! repair of §4.4. Timing-shape experiments (who wins, by how much, under
//! which bandwidth) are run on the `simnet` simulator or, with
//! [`TcpTransport::with_rate_limit`], on throttled sockets; this runtime
//! demonstrates the data path and provides throughput microbenches.
//!
//! On top of the executors sits the [`manager`] subsystem: a prioritized
//! repair queue (degraded reads preempt corruption repairs, which preempt
//! background recovery), a bounded worker pool that runs many single-stripe
//! repairs concurrently, per-node in-flight admission caps enforcing the
//! §3.3 scheduling at runtime, a liveness view fed by repair outcomes (a
//! node that keeps failing its helper reads is declared dead and its
//! stripes auto-enqueued), a paced [scrubber](manager::Scrubber) that turns
//! silent bit-rot into queued repairs, and a structured [`ManagerReport`].
//! [`recovery::full_node_recovery_over`] is a thin sequential wrapper over
//! the same engine.
//!
//! The [`integrity`] module supplies the detection layer the scrubber and
//! the helpers rely on: [`ChecksummedStore`] pairs every block with
//! per-chunk CRC-32 checksums (persisted as `.crc` sidecars for
//! [`FileStore`] nodes), verifies every read — slice reads check only the
//! chunks they overlap — and surfaces rot as
//! [`EcPipeError::CorruptBlock`], which fails a repair stream cleanly
//! instead of letting poisoned bytes into the GF(2^8) combination.
//!
//! The public entry point is the [`EcPipe`] façade: [`EcPipeBuilder`]
//! assembles code, layout, [`StoreBackend`], transport and manager
//! configuration into one handle, and `put`/`get`/`get_range` give the
//! runtime an object-level data path whose reads transparently fall back
//! to manager-prioritized degraded reads. The layers underneath
//! ([`Coordinator`], [`exec`], [`RepairManager`]) stay public for code
//! that orchestrates repairs directly.
//!
//! # Examples
//!
//! ```
//! use ecpipe::{EcPipeBuilder, StoreBackend};
//!
//! // An 8-node in-memory cluster with a (6, 4) code.
//! let pipe = EcPipeBuilder::new()
//!     .code(6, 4)
//!     .block_size(4096)
//!     .slice_size(1024)
//!     .store(StoreBackend::memory(8))
//!     .build()
//!     .unwrap();
//!
//! // Write an object, lose a block, read the object back byte-exact: the
//! // missing block is rebuilt by a degraded read through the repair
//! // manager on the way.
//! let data: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
//! let meta = pipe.put("/objects/demo", &data).unwrap();
//! pipe.erase_block(meta.stripes[0], 2);
//! assert_eq!(pipe.get("/objects/demo").unwrap(), data);
//! assert_eq!(pipe.shutdown().blocks_repaired, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod cluster;
mod coordinator;
mod error;
pub mod exec;
mod facade;
pub mod integrity;
pub mod lock_order;
pub mod manager;
pub mod recovery;
mod store;
pub mod telemetry;
pub mod transport;

pub use buf::{BufPool, PooledBuf};
pub use cluster::Cluster;
pub use coordinator::{
    Coordinator, MultiRepairDirective, ObjectMeta, RepairDirective, SelectionPolicy, StripeMeta,
};
pub use ecpipe_meta::{
    MetaBackend, MetaConfig, MetaError, MetaRouter, ObjectRecord, RepairRecord, StripeRecord,
};
pub use error::EcPipeError;
pub use exec::ExecStrategy;
pub use facade::{
    chunk_into_stripes, chunk_stripe, stripe_count, EcPipe, EcPipeBuilder, TransportChoice,
};
pub use integrity::{BlockChecksums, ChecksummedStore, DEFAULT_CHUNK_SIZE};
pub use manager::{
    LinkWatchConfig, ManagerConfig, ManagerReport, NodeHealth, PathPolicy, RepairManager,
    RepairOutcome, RepairPriority, RepairRequest, ReplanEvent, ReplanReason, ScrubConfig,
    ScrubCycle, Scrubber,
};
pub use store::{BlockStore, FileStore, MemoryStore, StoreBackend};
pub use telemetry::{LinkTelemetry, TelemetryConfig};
pub use transport::{
    AnyTransport, ChannelTransport, ReactorTransport, TcpTransport, Transport, TransportError,
};

pub use simnet::Topology;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, EcPipeError>;
