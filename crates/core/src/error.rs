//! Error type for the ECPipe runtime.

use std::fmt;

use ecc::stripe::BlockId;

/// Errors returned by the ECPipe coordinator, block stores and executors.
#[derive(Debug)]
#[non_exhaustive]
pub enum EcPipeError {
    /// A block was not found in the store it was expected to live in.
    BlockNotFound {
        /// The missing block.
        block: BlockId,
    },
    /// A stored block failed checksum verification: the bytes on the node no
    /// longer match the checksums recorded when the block was written
    /// (silent bit-rot, a torn write, or an injected corruption).
    CorruptBlock {
        /// The corrupt block.
        block: BlockId,
        /// Index of the first checksum chunk that failed verification.
        chunk: usize,
    },
    /// The coordinator has no metadata for the requested stripe.
    UnknownStripe {
        /// The stripe id that was requested.
        stripe: u64,
    },
    /// The repair cannot be planned (e.g. too many failures).
    Planning(ecc::CodeError),
    /// An I/O error from a file-backed block store.
    Io(std::io::Error),
    /// A worker thread failed or a channel was closed unexpectedly.
    Execution {
        /// Human-readable explanation.
        reason: String,
    },
    /// The request itself was invalid (e.g. requestor is a helper).
    InvalidRequest {
        /// Human-readable explanation.
        reason: String,
    },
    /// The repair manager is shut down (or shutting down) and no longer
    /// accepts work.
    ManagerShutdown,
    /// A repair directive outlived its placement: the block it planned to
    /// reconstruct was relocated (its stripe's epoch moved past the one the
    /// directive was planned at), so completing it would double-heal.
    StaleRepair {
        /// The stripe the directive targeted.
        stripe: u64,
        /// The block index the directive targeted.
        index: usize,
        /// The placement epoch the directive was planned at.
        planned: u64,
        /// The stripe's current placement epoch.
        current: u64,
    },
}

impl fmt::Display for EcPipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcPipeError::BlockNotFound { block } => write!(f, "block {block} not found"),
            EcPipeError::CorruptBlock { block, chunk } => {
                write!(
                    f,
                    "block {block} failed checksum verification at chunk {chunk}"
                )
            }
            EcPipeError::UnknownStripe { stripe } => write!(f, "unknown stripe {stripe}"),
            EcPipeError::Planning(e) => write!(f, "repair planning failed: {e}"),
            EcPipeError::Io(e) => write!(f, "block store I/O error: {e}"),
            EcPipeError::Execution { reason } => write!(f, "repair execution failed: {reason}"),
            EcPipeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            EcPipeError::ManagerShutdown => {
                write!(f, "the repair manager is shut down and accepts no new work")
            }
            EcPipeError::StaleRepair {
                stripe,
                index,
                planned,
                current,
            } => write!(
                f,
                "stale repair for block {index} of stripe {stripe}: planned at \
                 placement epoch {planned}, the stripe is now at epoch {current}"
            ),
        }
    }
}

impl std::error::Error for EcPipeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcPipeError::Planning(e) => Some(e),
            EcPipeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecc::CodeError> for EcPipeError {
    fn from(e: ecc::CodeError) -> Self {
        EcPipeError::Planning(e)
    }
}

impl From<std::io::Error> for EcPipeError {
    fn from(e: std::io::Error) -> Self {
        EcPipeError::Io(e)
    }
}

impl From<ecpipe_meta::MetaError> for EcPipeError {
    fn from(e: ecpipe_meta::MetaError) -> Self {
        use ecpipe_meta::MetaError;
        match e {
            MetaError::UnknownStripe { stripe } => EcPipeError::UnknownStripe { stripe },
            MetaError::StaleEpoch {
                stripe,
                index,
                expected,
                actual,
            } => EcPipeError::StaleRepair {
                stripe,
                index,
                planned: expected,
                current: actual,
            },
            MetaError::InvalidRequest { reason } => EcPipeError::InvalidRequest { reason },
            MetaError::Io(e) => EcPipeError::Io(e),
            other => EcPipeError::Execution {
                reason: format!("metadata plane failure: {other}"),
            },
        }
    }
}

impl From<crate::transport::TransportError> for EcPipeError {
    fn from(e: crate::transport::TransportError) -> Self {
        use crate::transport::TransportError;
        match e {
            // A vanished peer means a helper or requestor died mid-repair;
            // the repair must fail loudly rather than silently truncate.
            TransportError::Disconnected => EcPipeError::Execution {
                reason: "peer end of a transport link is gone".to_string(),
            },
            TransportError::Io(e) => EcPipeError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chains_to_the_underlying_error() {
        let planning: EcPipeError = ecc::CodeError::NotEnoughBlocks {
            needed: 4,
            available: 3,
        }
        .into();
        assert!(planning.source().is_some());
        assert!(planning.source().unwrap().to_string().contains('3'));

        let io: EcPipeError = std::io::Error::other("disk gone").into();
        assert_eq!(io.source().unwrap().to_string(), "disk gone");

        // Leaf errors carry no source.
        let leaf = EcPipeError::UnknownStripe { stripe: 9 };
        assert!(leaf.source().is_none());
        assert!(leaf.to_string().contains('9'));
    }
}
