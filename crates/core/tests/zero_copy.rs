//! Pins the zero-copy slice data path.
//!
//! The `bytes` shim counts every deep copy made at the `Bytes` layer
//! (`Bytes::copy_from_slice`, `Bytes::to_vec`); everything else — cloning,
//! slicing, freezing a pooled buffer, framing a message — shares the
//! allocation. These tests assert the counter stays flat across the hot
//! flows, so a future "just copy it here" regression fails loudly instead
//! of silently re-inflating memory traffic.
//!
//! The counter is process-global and monotonic, so concurrent tests can
//! only inflate a delta, never mask a copy: a zero delta is trustworthy,
//! and the flows below are all expected to be zero.

use ecpipe::exec::ExecStrategy;
use ecpipe::{Cluster, Coordinator, EcPipeBuilder, StoreBackend};

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 31 + seed * 17 + 7) % 251) as u8)
        .collect()
}

#[test]
fn put_and_degraded_get_perform_no_bytes_deep_copies() {
    let pipe = EcPipeBuilder::new()
        .code(6, 4)
        .block_size(16 * 1024)
        .slice_size(2 * 1024)
        .store(StoreBackend::memory(8))
        .build()
        .unwrap();
    let data = pattern(4 * 16 * 1024, 11);

    let before = bytes::shim_metrics::deep_copy_bytes();
    let meta = pipe.put("/pin", &data).unwrap();
    assert_eq!(
        bytes::shim_metrics::deep_copy_bytes(),
        before,
        "put must not deep-copy at the Bytes layer"
    );

    // Degraded read: the erased block is reconstructed through the full
    // encode → helper chain → store → transport framing path.
    pipe.erase_block(meta.stripes[0], 1);
    let before = bytes::shim_metrics::deep_copy_bytes();
    assert_eq!(pipe.get("/pin").unwrap(), data);
    assert_eq!(
        bytes::shim_metrics::deep_copy_bytes(),
        before,
        "a degraded get must move slices by reference, not by copy"
    );

    let report = pipe.shutdown();
    assert_eq!(report.blocks_repaired, 1);
}

#[test]
fn every_exec_strategy_repairs_without_bytes_deep_copies() {
    use std::sync::Arc;

    let code: Arc<dyn ecc::ErasureCode> = Arc::new(ecc::ReedSolomon::new(6, 4).unwrap());
    let layout = ecc::slice::SliceLayout::new(16 * 1024, 2 * 1024);
    for strategy in [
        ExecStrategy::Conventional,
        ExecStrategy::Ppr,
        ExecStrategy::RepairPipelining,
        ExecStrategy::BlockPipeline,
    ] {
        let mut coordinator = Coordinator::new(code.clone(), layout);
        let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| pattern(16 * 1024, i)).collect();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        cluster.erase_block(stripe, 2);

        let before = bytes::shim_metrics::deep_copy_bytes();
        let repaired = cluster
            .repair(&mut coordinator, stripe, 2, 7, strategy)
            .unwrap();
        assert_eq!(repaired, data[2], "strategy {strategy}");
        assert_eq!(
            bytes::shim_metrics::deep_copy_bytes(),
            before,
            "strategy {strategy} deep-copied at the Bytes layer"
        );
    }
}
