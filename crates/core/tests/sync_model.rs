//! Model tests: the manager's core wait/notify protocols driven through
//! deterministic interleavings, plus the two mutation tests the ISSUE of
//! record demands — a seeded lock inversion and a seeded missed wakeup —
//! each asserting that the `ecpipe-sync` tooling *catches* the planted bug.
//!
//! The models are deliberately small restatements of the production
//! protocols (queue push/pop, admission, liveness strikes, `wait_for`):
//! every scheduling decision comes from a [`DetScheduler`] seed, so a
//! failure reproduces by re-running the same seed rather than by luck.

use std::collections::VecDeque;

use ecpipe_sync::det::{DetCell, DetScheduler, SchedHandle, StallError, VThread};

const SEEDS: u64 = 48;

/// The repair queue protocol: producers push prioritized jobs and close;
/// workers drain via a predicate wait. Mirrors `RepairQueue::{push, pop,
/// close}` — higher-priority jobs (degraded) must pop before background
/// ones, every job is consumed exactly once, and closing wakes everyone.
#[test]
fn queue_push_worker_pop_under_many_interleavings() {
    for seed in 0..SEEDS {
        let mut sched = DetScheduler::seeded(seed).with_spurious_wakeups();
        let available = sched.condvar();

        #[derive(Default)]
        struct QueueModel {
            degraded: VecDeque<u32>,
            background: VecDeque<u32>,
            closed: bool,
        }
        let queue = DetCell::new(QueueModel::default());
        let popped = DetCell::new(Vec::<u32>::new());

        let producer = {
            let queue = queue.clone();
            Box::new(move |h: &SchedHandle| {
                for job in [1u32, 2, 3] {
                    queue.with(|q| q.background.push_back(job));
                    h.notify_one(available);
                    h.yield_now();
                }
                for job in [101u32, 102] {
                    queue.with(|q| q.degraded.push_back(job));
                    h.notify_one(available);
                    h.yield_now();
                }
                queue.with(|q| q.closed = true);
                h.notify_all(available);
            }) as VThread<'_>
        };

        let worker = |_wid: usize| {
            let queue = queue.clone();
            let popped = popped.clone();
            Box::new(move |h: &SchedHandle| loop {
                h.wait_while(available, || {
                    queue.with(|q| q.degraded.is_empty() && q.background.is_empty() && !q.closed)
                });
                let job = queue.with(|q| {
                    // Priority: degraded reads preempt background recovery.
                    q.degraded.pop_front().or_else(|| q.background.pop_front())
                });
                match job {
                    Some(job) => {
                        popped.with(|p| p.push(job));
                        h.yield_now();
                    }
                    None => return,
                }
            }) as VThread<'_>
        };

        sched
            .run(vec![producer, worker(0), worker(1)])
            .unwrap_or_else(|stall| panic!("seed {seed}: {stall}"));

        let mut got = popped.get();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![1, 2, 3, 101, 102],
            "seed {seed}: jobs lost or duplicated"
        );
    }
}

/// The liveness protocol: concurrent strike reporters race toward the
/// dead-node threshold; the declaration (and the auto-enqueue it triggers)
/// must happen exactly once no matter how the reports interleave.
#[test]
fn liveness_strikes_declare_dead_exactly_once() {
    const THRESHOLD: u32 = 3;
    for seed in 0..SEEDS {
        let sched = DetScheduler::seeded(seed);

        #[derive(Default)]
        struct HealthModel {
            strikes: u32,
            dead: bool,
            declarations: u32,
        }
        let health = DetCell::new(HealthModel::default());

        let reporter = || {
            let health = health.clone();
            Box::new(move |h: &SchedHandle| {
                for _ in 0..2 {
                    // One strike: the counter bump and the threshold check
                    // happen under the same lock, as in `Liveness::strike`.
                    health.with(|m| {
                        m.strikes += 1;
                        if m.strikes >= THRESHOLD && !m.dead {
                            m.dead = true;
                            m.declarations += 1;
                        }
                    });
                    h.yield_now();
                }
            }) as VThread<'_>
        };

        sched.run(vec![reporter(), reporter(), reporter()]).unwrap();
        health.with(|m| {
            assert_eq!(m.strikes, 6, "seed {seed}");
            assert_eq!(
                m.declarations, 1,
                "seed {seed}: dead declared more than once"
            );
        });
    }
}

/// The facade `wait_for` protocol (the fixed, predicate-waiting version):
/// a client blocks until the worker clears its key from the scheduled set.
/// Survives every interleaving *and* injected spurious wakeups.
#[test]
fn wait_for_completes_under_spurious_wakeups() {
    for seed in 0..SEEDS {
        let mut sched = DetScheduler::seeded(seed).with_spurious_wakeups();
        let changed = sched.condvar();
        let scheduled = DetCell::new(true); // the key is in flight
        let observed_done = DetCell::new(false);

        let client = {
            let scheduled = scheduled.clone();
            let observed_done = observed_done.clone();
            Box::new(move |h: &SchedHandle| {
                h.wait_while(changed, || scheduled.get());
                assert!(!scheduled.get(), "seed {seed}: woke while still scheduled");
                observed_done.set(true);
            }) as VThread<'_>
        };
        let worker = {
            let scheduled = scheduled.clone();
            Box::new(move |h: &SchedHandle| {
                h.yield_now();
                h.yield_now();
                scheduled.set(false);
                h.notify_all(changed);
            }) as VThread<'_>
        };

        sched
            .run(vec![client, worker])
            .unwrap_or_else(|stall| panic!("seed {seed}: {stall}"));
        assert!(observed_done.get(), "seed {seed}");
    }
}

/// Runs the *buggy* `wait_for` — check the predicate once, then block
/// unconditionally — under one seed. The yield between check and wait is
/// the classic missed-wakeup window.
fn buggy_wait_for(seed: u64) -> Result<(), StallError> {
    let mut sched = DetScheduler::seeded(seed);
    let changed = sched.condvar();
    let scheduled = DetCell::new(true);

    let client = {
        let scheduled = scheduled.clone();
        Box::new(move |h: &SchedHandle| {
            // BUG (planted): test-then-wait without re-checking. If the
            // worker finishes inside this window the notify is lost.
            if scheduled.get() {
                h.yield_now();
                h.wait(changed);
            }
        }) as VThread<'_>
    };
    let worker = {
        let scheduled = scheduled.clone();
        Box::new(move |h: &SchedHandle| {
            scheduled.set(false);
            h.notify_all(changed);
        }) as VThread<'_>
    };
    sched.run(vec![client, worker])
}

/// Mutation test: the harness must *catch* the missed wakeup — some seed
/// drives the lost-notify interleaving and reports a stall naming the
/// blocked client — while the fixed version above passes every seed.
#[test]
fn mutation_missed_wakeup_is_caught_as_a_stall() {
    let caught = (0..SEEDS)
        .filter_map(|seed| buggy_wait_for(seed).err())
        .count();
    assert!(
        caught > 0,
        "no seed in 0..{SEEDS} caught the planted missed wakeup"
    );
}

/// Mutation test: acquiring real runtime lock classes against their
/// declared ranks must trip the `ecpipe-sync` detector — *without* needing
/// the unlucky cross-thread schedule that would actually deadlock. That is
/// the point of order-based detection: the inversion is caught on first
/// acquisition, on any schedule. Checked builds only (the release
/// passthrough deliberately compiles the detector out).
#[cfg(any(debug_assertions, ecpipe_sync_check))]
#[test]
fn mutation_lock_inversion_trips_the_detector() {
    use ecpipe::lock_order;
    use ecpipe_sync::Mutex;

    let gate = Mutex::new(&lock_order::MANAGER_GATE, ());
    let metrics = Mutex::new(&lock_order::MANAGER_METRICS, ());

    // The legal nesting, as `AdmissionGate::acquire` does it: gate (40)
    // then metrics (42).
    {
        let _g = gate.lock();
        let _m = metrics.lock();
    }

    // The planted inversion: metrics then gate. Run it on its own thread so
    // the panic (and its held-set bookkeeping) stays contained.
    let result = std::thread::spawn(move || {
        let _m = metrics.lock();
        let _g = gate.lock(); // must panic: rank 40 after rank 42
    })
    .join();

    let payload = result.expect_err("inverted acquisition was not detected");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap_or_default()
        });
    assert!(
        msg.contains("lock-order violation"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("manager.gate") && msg.contains("manager.metrics"),
        "panic message should name both classes: {msg}"
    );
}
