//! Pins the release-mode zero-cost claim.
//!
//! In builds without `debug_assertions` or `--cfg ecpipe_sync_check`
//! (i.e. `cargo test --release`), the wrappers must be layout-identical to
//! the primitives they forward to — no class pointer, no bookkeeping.

#[cfg(not(any(debug_assertions, ecpipe_sync_check)))]
use std::mem::size_of;

#[test]
fn checks_enabled_matches_build_mode() {
    assert_eq!(
        ecpipe_sync::CHECKS_ENABLED,
        cfg!(any(debug_assertions, ecpipe_sync_check))
    );
}

#[cfg(not(any(debug_assertions, ecpipe_sync_check)))]
#[test]
fn release_wrappers_are_zero_cost() {
    assert_eq!(
        size_of::<ecpipe_sync::Mutex<u64>>(),
        size_of::<parking_lot::Mutex<u64>>()
    );
    assert_eq!(
        size_of::<ecpipe_sync::RwLock<Vec<u8>>>(),
        size_of::<parking_lot::RwLock<Vec<u8>>>()
    );
    assert_eq!(
        size_of::<ecpipe_sync::Condvar>(),
        size_of::<std::sync::Condvar>()
    );
    assert_eq!(
        size_of::<ecpipe_sync::OnceFlag>(),
        size_of::<std::sync::atomic::AtomicBool>()
    );
    assert_eq!(
        size_of::<ecpipe_sync::MutexGuard<'_, u64>>(),
        size_of::<parking_lot::MutexGuard<'_, u64>>()
    );
}
