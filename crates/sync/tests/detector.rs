//! Runtime tests for the lock-order detector.
//!
//! The panic-expecting tests only exist in checked builds
//! (`debug_assertions` or `--cfg ecpipe_sync_check`); in pure release
//! builds the wrappers are passthroughs and the size test in
//! `zero_cost.rs` takes over.

use ecpipe_sync::{lock_class, Mutex, RwLock};

lock_class!(
    /// Low-rank test class.
    pub LOW = ("detector.low", rank = 910)
);
lock_class!(
    /// High-rank test class.
    pub HIGH = ("detector.high", rank = 920)
);
lock_class!(
    /// First of two equal-rank test classes.
    pub PEER_A = ("detector.peer_a", rank = 930)
);
lock_class!(
    /// Second of two equal-rank test classes.
    pub PEER_B = ("detector.peer_b", rank = 930)
);
lock_class!(
    /// Class used by the recursive-acquisition tests.
    pub RECURSIVE = ("detector.recursive", rank = 940)
);

#[cfg(any(debug_assertions, ecpipe_sync_check))]
mod checked {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(f: impl FnOnce()) -> String {
        let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn increasing_rank_order_is_fine() {
        let low = Mutex::new(&LOW, 1);
        let high = Mutex::new(&HIGH, 2);
        let a = low.lock();
        let b = high.lock();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn decreasing_rank_order_panics() {
        let low = Mutex::new(&LOW, 1);
        let high = Mutex::new(&HIGH, 2);
        let msg = panic_message(|| {
            let _h = high.lock();
            let _l = low.lock();
        });
        assert!(
            msg.contains("lock-order violation") && msg.contains("increasing rank order"),
            "unexpected panic message: {msg}"
        );
        assert!(
            msg.contains("detector.low") && msg.contains("detector.high"),
            "message should name both classes: {msg}"
        );
    }

    #[test]
    fn equal_rank_nesting_panics() {
        let a = Mutex::new(&PEER_A, ());
        let b = Mutex::new(&PEER_B, ());
        let msg = panic_message(|| {
            let _a = a.lock();
            let _b = b.lock();
        });
        assert!(
            msg.contains("equal-rank"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn same_class_two_locks_panics() {
        let first = Mutex::new(&RECURSIVE, ());
        let second = Mutex::new(&RECURSIVE, ());
        let msg = panic_message(|| {
            let _a = first.lock();
            let _b = second.lock();
        });
        assert!(
            msg.contains("recursive acquisition"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn self_deadlock_panics_instead_of_hanging() {
        // Re-locking the same mutex would deadlock forever with raw locks;
        // the check runs before blocking, so it panics instead.
        let m = Mutex::new(&RECURSIVE, ());
        let msg = panic_message(|| {
            let _a = m.lock();
            let _b = m.lock();
        });
        assert!(msg.contains("recursive acquisition"), "{msg}");
    }

    #[test]
    fn rwlock_read_then_read_same_class_panics() {
        let l = RwLock::new(&RECURSIVE, 0u8);
        let msg = panic_message(|| {
            let _a = l.read();
            let _b = l.read();
        });
        assert!(msg.contains("recursive acquisition"), "{msg}");
    }

    #[test]
    fn release_then_reacquire_is_fine() {
        let low = Mutex::new(&LOW, ());
        let high = Mutex::new(&HIGH, ());
        // Sequential (non-nested) acquisitions in any order are legal.
        drop(high.lock());
        drop(low.lock());
        drop(high.lock());
    }

    #[test]
    fn condvar_wait_while_releases_class_during_wait() {
        use ecpipe_sync::Condvar;
        use std::sync::Arc;
        use std::time::Duration;

        let pair = Arc::new((Mutex::new(&LOW, false), Condvar::new()));
        let waiter = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*waiter;
            let guard = m.lock();
            let guard = cv.wait_while(guard, |ready| !*ready);
            assert!(*guard);
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}

mod proptests {
    use super::*;
    use ecpipe_sync::LockClass;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random acyclic acquisition sequences never trip the detector:
        /// acquiring fresh classes in increasing-rank order (the legal
        /// discipline) must not false-positive, whatever the ranks and
        /// nesting depth.
        #[test]
        fn acyclic_sequences_never_false_positive(
            ranks in proptest::collection::vec(1u32..1_000_000, 1..8),
            reps in 1usize..4,
        ) {
            let mut ranks = ranks.clone();
            ranks.sort_unstable();
            ranks.dedup();
            let classes: Vec<&'static LockClass> = ranks
                .iter()
                .map(|r| {
                    let name: &'static str =
                        Box::leak(format!("proptest.rank_{r}_{reps}").into_boxed_str());
                    &*Box::leak(Box::new(LockClass::new(name, *r)))
                })
                .collect();
            let mutexes: Vec<Mutex<u32>> =
                classes.iter().map(|c| Mutex::new(c, c.rank())).collect();
            for _ in 0..reps {
                let guards: Vec<_> = mutexes.iter().map(|m| m.lock()).collect();
                let sum: u32 = guards.iter().map(|g| **g).sum();
                prop_assert_eq!(sum, ranks.iter().sum::<u32>());
                // Order checking only constrains acquisition, so the
                // outermost-first drop order of the Vec is fine.
            }
        }
    }
}
