//! Static lock classes.
//!
//! Every checked lock in the workspace is tagged with a [`LockClass`]: a
//! `static` carrying a human-readable name and an explicit numeric rank.
//! Ranks define the global acquisition order — a thread may only acquire a
//! lock whose rank is strictly greater than the rank of every lock it
//! already holds. Class identity is the address of the `static`, so two
//! classes with the same name are still distinct (but the workspace lint
//! rejects duplicate names and ranks anyway).

/// A static identity + rank for a family of locks.
///
/// Declare classes with the [`lock_class!`](crate::lock_class) macro rather
/// than constructing this directly, so the workspace lint can audit the rank
/// table.
#[derive(Debug)]
pub struct LockClass {
    name: &'static str,
    rank: u32,
}

impl LockClass {
    /// Creates a class. Prefer [`lock_class!`](crate::lock_class).
    pub const fn new(name: &'static str, rank: u32) -> Self {
        LockClass { name, rank }
    }

    /// Human-readable class name, e.g. `"manager.queue"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquisition rank. Locks must be taken in strictly increasing rank
    /// order within a thread.
    pub fn rank(&self) -> u32 {
        self.rank
    }
}
