//! `ecpipe-sync`: rank-checked synchronization primitives for the
//! repair-pipelining workspace.
//!
//! The runtime's repair manager overlaps many in-flight transfers behind a
//! population of locks; a lock-order inversion or missed wakeup silently
//! serializes or wedges exactly that overlap. This crate makes those bug
//! classes detectable (or unrepresentable) without taxing release builds:
//!
//! * **Release builds** — [`Mutex`], [`RwLock`], [`Condvar`] and
//!   [`OnceFlag`] compile to zero-cost passthroughs over the parking_lot
//!   shim (a size-equality test pins the claim).
//! * **Debug builds and `RUSTFLAGS="--cfg ecpipe_sync_check"`** — every
//!   lock is tagged with a static [`LockClass`] (declared via
//!   [`lock_class!`] with an explicit rank). A thread-local held-set
//!   enforces strictly-increasing rank order and feeds the global
//!   [`OrderGraph`], which panics with the acquisition locations of every
//!   edge on the first cycle: a conflicting order is caught the first time
//!   two classes are ever taken both ways, on any interleaving, whether or
//!   not it deadlocked this run.
//! * **All builds** — [`Condvar`] has no bare `wait()`: the only wait
//!   operations are [`Condvar::wait_while`] and
//!   [`Condvar::wait_while_tick`], so a wait that forgets its predicate
//!   (the missed-wakeup bug class) is a type error.
//!
//! The [`det`] module provides a deterministic-interleaving scheduler for
//! model-testing concurrent algorithms under seeded thread schedules,
//! including injected spurious wakeups and stall (deadlock/missed-wakeup)
//! detection.
//!
//! # Declaring a lock class
//!
//! ```
//! use ecpipe_sync::{lock_class, Mutex};
//!
//! lock_class!(
//!     /// Protects the example's counter.
//!     pub EXAMPLE_COUNTER = ("example.counter", rank = 10)
//! );
//!
//! let m = Mutex::new(&EXAMPLE_COUNTER, 0u64);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
pub mod det;
mod graph;
mod once;

pub use class::LockClass;
pub use graph::{CycleError, OrderEdge, OrderGraph};
pub use once::OnceFlag;

#[cfg(any(debug_assertions, ecpipe_sync_check))]
mod checked;
#[cfg(any(debug_assertions, ecpipe_sync_check))]
mod held;
#[cfg(any(debug_assertions, ecpipe_sync_check))]
pub use checked::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(any(debug_assertions, ecpipe_sync_check)))]
mod passthrough;
#[cfg(not(any(debug_assertions, ecpipe_sync_check)))]
pub use passthrough::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Whether this build validates lock ordering (debug or
/// `--cfg ecpipe_sync_check`). Release builds without the cfg report
/// `false` and use the passthrough wrappers.
pub const CHECKS_ENABLED: bool = cfg!(any(debug_assertions, ecpipe_sync_check));

/// Declares a static [`LockClass`] with an explicit rank.
///
/// Ranks order acquisitions: a thread may only acquire a class whose rank
/// is strictly greater than every class it already holds. The workspace
/// lint (`cargo run -p xtask -- lint`) rejects duplicate ranks and names
/// across the whole tree, so pick the next free rank in the hierarchy table
/// (docs/ARCHITECTURE.md, "Lock hierarchy").
///
/// ```
/// ecpipe_sync::lock_class!(
///     /// Protects the frobnicator table.
///     pub FROB_TABLE = ("example.frob_table", rank = 42)
/// );
/// assert_eq!(FROB_TABLE.rank(), 42);
/// ```
#[macro_export]
macro_rules! lock_class {
    ($(#[$meta:meta])* $vis:vis $name:ident = ($label:expr, rank = $rank:expr)) => {
        $(#[$meta])*
        $vis static $name: $crate::LockClass = $crate::LockClass::new($label, $rank);
    };
}
