//! Per-thread held-lock bookkeeping (checked builds only).
//!
//! Each thread tracks the classes of the locks it currently holds. On every
//! acquisition the set is checked — recursive acquisition of a class,
//! nesting of equal-rank classes, and rank-order violations panic
//! immediately — and every `held → acquiring` pair is fed to the global
//! [`OrderGraph`](crate::OrderGraph), which panics on the first cycle with
//! the acquisition locations of every edge involved.

use std::cell::RefCell;
use std::panic::Location;

use crate::{graph, LockClass};

struct Held {
    class: &'static LockClass,
    at: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Validates acquiring `class` at `at` against this thread's held set and
/// the global order graph, then records it as held.
///
/// Panics on recursive acquisition, equal-rank nesting, decreasing-rank
/// acquisition, or a lock-order cycle. Runs *before* blocking on the
/// underlying lock, so a would-be deadlock panics instead of hanging.
pub(crate) fn on_acquire(class: &'static LockClass, at: &'static Location<'static>) {
    HELD.with(|cell| {
        let mut held = cell.borrow_mut();
        for h in held.iter() {
            if std::ptr::eq(h.class, class) {
                panic!(
                    "lock-order violation: recursive acquisition of lock class `{}` (rank {}) \
                     at {at}; already held since {}",
                    class.name(),
                    class.rank(),
                    h.at,
                );
            }
            if h.class.rank() == class.rank() {
                panic!(
                    "lock-order violation: acquiring `{}` at {at} while holding `{}` \
                     (both rank {}, held since {}); equal-rank classes must never nest",
                    class.name(),
                    h.class.name(),
                    class.rank(),
                    h.at,
                );
            }
            if h.class.rank() > class.rank() {
                panic!(
                    "lock-order violation: acquiring `{}` (rank {}) at {at} while holding `{}` \
                     (rank {}, held since {}); locks must be acquired in increasing rank order",
                    class.name(),
                    class.rank(),
                    h.class.name(),
                    h.class.rank(),
                    h.at,
                );
            }
        }
        for h in held.iter() {
            if let Err(cycle) = graph::OrderGraph::global().record(h.class, class, h.at, at) {
                panic!("{cycle}");
            }
        }
        held.push(Held { class, at });
    });
}

/// Removes `class` from this thread's held set (guard drop or condvar wait).
pub(crate) fn on_release(class: &'static LockClass) {
    HELD.with(|cell| {
        let mut held = cell.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| std::ptr::eq(h.class, class)) {
            held.remove(pos);
        }
    });
}
