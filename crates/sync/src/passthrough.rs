//! Zero-cost release-mode wrappers.
//!
//! In builds without `debug_assertions` or `--cfg ecpipe_sync_check`, the
//! sync wrappers are thin newtypes over the parking_lot shim: the
//! [`LockClass`] argument is dropped at construction, no held-set or graph
//! bookkeeping exists, and every method is an `#[inline]` forward. The
//! `release_wrappers_are_zero_cost` integration test pins the size claim.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

use crate::LockClass;

/// Mutual exclusion; the class tag is compile-time only in this build.
pub struct Mutex<T: ?Sized> {
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex. The class is unused in release builds.
    #[inline]
    pub fn new(_class: &'static LockClass, value: T) -> Self {
        Mutex {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock(),
        }
    }

    /// Mutable access without locking.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock; the class tag is compile-time only in this build.
pub struct RwLock<T: ?Sized> {
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock. The class is unused in release builds.
    #[inline]
    pub fn new(_class: &'static LockClass, value: T) -> Self {
        RwLock {
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read(),
        }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write(),
        }
    }

    /// Mutable access without locking.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable whose only wait operations are predicate-guarded
/// (same API as the checked build; see that doc for rationale).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks while `condition` returns `true`.
    #[inline]
    pub fn wait_while<'a, T, F>(&self, guard: MutexGuard<'a, T>, condition: F) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        MutexGuard {
            inner: self
                .inner
                .wait_while(guard.inner, condition)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Like [`Condvar::wait_while`], but re-checks the condition at least
    /// every `tick` even without a notification.
    #[inline]
    pub fn wait_while_tick<'a, T, F>(
        &self,
        guard: MutexGuard<'a, T>,
        tick: Duration,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        let mut raw = guard.inner;
        loop {
            if !condition(&mut *raw) {
                break;
            }
            let (g, _timed_out) = self
                .inner
                .wait_timeout_while(raw, tick, &mut condition)
                .unwrap_or_else(PoisonError::into_inner);
            raw = g;
        }
        MutexGuard { inner: raw }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
