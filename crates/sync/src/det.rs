//! Deterministic-interleaving scheduler for model tests.
//!
//! [`DetScheduler`] runs a set of *virtual threads* (real OS threads
//! coordinated by a run token) such that exactly one executes at a time and
//! every scheduling decision — who runs next, which waiter a notify picks,
//! whether a spurious wakeup fires — is a pure function of the seed. A model
//! of a concurrent algorithm marks its interesting points with
//! [`SchedHandle::yield_now`] and waits with [`SchedHandle::wait_while`];
//! driving the model through many seeds then explores many interleavings
//! *reproducibly*, so a failing schedule is a failing seed, not a flake.
//!
//! Two bug classes surface as first-class outcomes rather than hangs:
//!
//! * **Stalls** — if every unfinished virtual thread is blocked in a wait,
//!   [`DetScheduler::run`] returns a [`StallError`] naming the blocked
//!   threads (a deadlock or missed wakeup, caught deterministically).
//! * **Spurious wakeups** — [`DetScheduler::with_spurious_wakeups`] injects
//!   seeded wakeups, so a wait that doesn't re-check its predicate
//!   ([`SchedHandle::wait`] without a loop) is flushed out by the harness.
//!
//! Model state shared between virtual threads lives in [`DetCell`]s; because
//! only one virtual thread runs at a time the cell is never contended, it
//! just satisfies `Send`/`Sync`.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Identifier for a virtual condition variable; allocate with
/// [`DetScheduler::condvar`] before [`DetScheduler::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvId(usize);

/// A virtual-thread body: runs under the scheduler via the handle it is
/// given.
pub type VThread<'env> = Box<dyn FnOnce(&SchedHandle) + Send + 'env>;

/// Every unfinished virtual thread is blocked: a deadlock or missed wakeup.
#[derive(Debug, Clone)]
pub struct StallError {
    /// `(thread index, condvar id)` for each blocked thread.
    pub blocked: Vec<(usize, usize)>,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler stall: all unfinished virtual threads are blocked:"
        )?;
        for (tid, cv) in &self.blocked {
            write!(f, " thread {tid} on condvar {cv};")?;
        }
        Ok(())
    }
}

impl std::error::Error for StallError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    RoundRobin,
    Random,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStatus {
    Ready,
    Running,
    Blocked(usize),
    Done,
}

/// Marker payload used to unwind virtual threads out of a run that is
/// aborting (stall detected or another thread panicked). Swallowed by the
/// scheduler; never escapes to the caller.
struct Aborted;

struct SchedState {
    status: Vec<VStatus>,
    current: Option<usize>,
    rng: u64,
    policy: Policy,
    spurious: bool,
    rr_next: usize,
    aborting: bool,
    stalled: Option<StallError>,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

struct SchedShared {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Picks the next virtual thread to run; detects stalls; optionally injects
/// a spurious wakeup first. Called whenever the running thread relinquishes.
fn schedule_next(st: &mut SchedState) {
    if st.spurious {
        let blocked: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, VStatus::Blocked(_)))
            .map(|(t, _)| t)
            .collect();
        if !blocked.is_empty() && next_rand(&mut st.rng).is_multiple_of(4) {
            let pick = blocked[(next_rand(&mut st.rng) as usize) % blocked.len()];
            st.status[pick] = VStatus::Ready;
        }
    }
    let ready: Vec<usize> = st
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, VStatus::Ready))
        .map(|(t, _)| t)
        .collect();
    if ready.is_empty() {
        st.current = None;
        let blocked: Vec<(usize, usize)> = st
            .status
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match s {
                VStatus::Blocked(cv) => Some((t, *cv)),
                _ => None,
            })
            .collect();
        if !blocked.is_empty() {
            st.stalled = Some(StallError { blocked });
            st.aborting = true;
        }
        return;
    }
    let pick = match st.policy {
        Policy::RoundRobin => *ready
            .iter()
            .find(|&&t| t >= st.rr_next)
            .unwrap_or(&ready[0]),
        Policy::Random => ready[(next_rand(&mut st.rng) as usize) % ready.len()],
    };
    st.rr_next = pick + 1;
    st.current = Some(pick);
}

/// Parks the calling OS thread until its virtual thread is granted the run
/// token. Panics with the `Aborted` marker if the run is tearing down.
fn wait_for_turn(shared: &SchedShared, tid: usize) {
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let abort = loop {
        if st.aborting {
            break true;
        }
        if st.current == Some(tid) {
            st.status[tid] = VStatus::Running;
            break false;
        }
        st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    };
    drop(st);
    if abort {
        panic::panic_any(Aborted);
    }
}

/// Handle a virtual thread uses to mark yield points, wait, and notify.
pub struct SchedHandle {
    shared: Arc<SchedShared>,
    tid: usize,
}

impl SchedHandle {
    /// Index of this virtual thread in the `run` vector.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// A scheduling point: the scheduler may switch to any ready thread
    /// (including staying on this one).
    pub fn yield_now(&self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.status[self.tid] = VStatus::Ready;
            schedule_next(&mut st);
        }
        self.shared.cv.notify_all();
        wait_for_turn(&self.shared, self.tid);
    }

    /// Blocks on `cv` until notified (or spuriously woken, if injection is
    /// enabled). Prefer [`SchedHandle::wait_while`]: a bare wait that
    /// doesn't re-check its predicate is exactly the missed-wakeup bug this
    /// harness exists to catch.
    pub fn wait(&self, cv: CvId) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.status[self.tid] = VStatus::Blocked(cv.0);
            schedule_next(&mut st);
        }
        self.shared.cv.notify_all();
        wait_for_turn(&self.shared, self.tid);
    }

    /// Blocks on `cv` while `pred` returns `true`. The predicate check and
    /// the transition to blocked are atomic with respect to virtual-thread
    /// scheduling (no yield point between them), mirroring a real
    /// condition-variable wait under its mutex.
    pub fn wait_while(&self, cv: CvId, mut pred: impl FnMut() -> bool) {
        while pred() {
            self.wait(cv);
        }
    }

    /// Wakes one thread blocked on `cv` (seed-chosen under the random
    /// policy; lowest index under round-robin). The woken thread runs when
    /// next scheduled; the notifier keeps the token.
    pub fn notify_one(&self, cv: CvId) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let blocked: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == VStatus::Blocked(cv.0))
            .map(|(t, _)| t)
            .collect();
        if !blocked.is_empty() {
            let pick = match st.policy {
                Policy::RoundRobin => blocked[0],
                Policy::Random => blocked[(next_rand(&mut st.rng) as usize) % blocked.len()],
            };
            st.status[pick] = VStatus::Ready;
        }
    }

    /// Wakes every thread blocked on `cv`.
    pub fn notify_all(&self, cv: CvId) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for s in st.status.iter_mut() {
            if *s == VStatus::Blocked(cv.0) {
                *s = VStatus::Ready;
            }
        }
    }
}

/// Seeded scheduler over virtual threads. See the [module docs](self).
#[derive(Debug)]
pub struct DetScheduler {
    policy: Policy,
    seed: u64,
    spurious: bool,
    next_cv: usize,
}

impl DetScheduler {
    /// Round-robin policy: always picks the next ready thread in index
    /// order. One canonical interleaving, useful as a smoke schedule.
    pub fn round_robin() -> Self {
        DetScheduler {
            policy: Policy::RoundRobin,
            seed: 0,
            spurious: false,
            next_cv: 0,
        }
    }

    /// Randomized policy: scheduling decisions are drawn from a splitmix64
    /// stream seeded with `seed`. Same seed, same interleaving.
    pub fn seeded(seed: u64) -> Self {
        DetScheduler {
            policy: Policy::Random,
            seed,
            spurious: false,
            next_cv: 0,
        }
    }

    /// Enables seeded spurious wakeups: at each scheduling point one
    /// blocked thread may be woken without a notify.
    pub fn with_spurious_wakeups(mut self) -> Self {
        self.spurious = true;
        self
    }

    /// Allocates a virtual condition variable.
    pub fn condvar(&mut self) -> CvId {
        let id = self.next_cv;
        self.next_cv += 1;
        CvId(id)
    }

    /// Runs the virtual threads to completion.
    ///
    /// Returns [`StallError`] if the run reached a state where every
    /// unfinished thread was blocked. A panic inside a virtual thread
    /// (e.g. a model assertion failure) aborts the run and resumes on the
    /// caller.
    pub fn run(self, threads: Vec<VThread<'_>>) -> Result<(), StallError> {
        let n = threads.len();
        let shared = Arc::new(SchedShared {
            state: StdMutex::new(SchedState {
                status: vec![VStatus::Ready; n],
                current: None,
                rng: self.seed,
                policy: self.policy,
                spurious: self.spurious,
                rr_next: 0,
                aborting: false,
                stalled: None,
                panic_payload: None,
            }),
            cv: StdCondvar::new(),
        });
        {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            schedule_next(&mut st);
        }
        std::thread::scope(|scope| {
            for (tid, f) in threads.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                scope.spawn(move || vthread_main(shared, tid, f));
            }
        });
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(payload) = st.panic_payload.take() {
            drop(st);
            panic::resume_unwind(payload);
        }
        match st.stalled.take() {
            Some(stall) => Err(stall),
            None => Ok(()),
        }
    }
}

fn vthread_main(shared: Arc<SchedShared>, tid: usize, f: VThread<'_>) {
    let handle = SchedHandle {
        shared: Arc::clone(&shared),
        tid,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(move || {
        wait_for_turn(&handle.shared, tid);
        f(&handle);
    }));
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    st.status[tid] = VStatus::Done;
    match result {
        Ok(()) => {}
        Err(payload) if payload.is::<Aborted>() => {}
        Err(payload) => {
            if st.panic_payload.is_none() {
                st.panic_payload = Some(payload);
            }
            st.aborting = true;
        }
    }
    if !st.aborting {
        schedule_next(&mut st);
    }
    drop(st);
    shared.cv.notify_all();
}

/// Shared mutable model state for virtual threads.
///
/// Internally a mutex, but never contended: the scheduler guarantees one
/// virtual thread runs at a time, so `with` is effectively a plain borrow.
pub struct DetCell<T> {
    inner: Arc<StdMutex<T>>,
}

impl<T> DetCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        DetCell {
            inner: Arc::new(StdMutex::new(value)),
        }
    }

    /// Runs `f` with exclusive access to the value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Clones the current value out.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.with(|v| v.clone())
    }

    /// Replaces the value.
    pub fn set(&self, value: T) {
        self.with(|v| *v = value);
    }
}

impl<T> Clone for DetCell<T> {
    fn clone(&self) -> Self {
        DetCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for DetCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with(|v| f.debug_tuple("DetCell").field(v).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order_is_deterministic() {
        for _ in 0..3 {
            let trace = DetCell::new(Vec::new());
            let sched = DetScheduler::round_robin();
            let mk = |tag: u32| {
                let trace = trace.clone();
                Box::new(move |h: &SchedHandle| {
                    trace.with(|t| t.push((tag, 0)));
                    h.yield_now();
                    trace.with(|t| t.push((tag, 1)));
                }) as VThread<'_>
            };
            sched.run(vec![mk(0), mk(1), mk(2)]).unwrap();
            assert_eq!(
                trace.get(),
                vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
            );
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let run_once = |seed: u64| {
            let trace = DetCell::new(Vec::new());
            let sched = DetScheduler::seeded(seed);
            let mk = |tag: u32| {
                let trace = trace.clone();
                Box::new(move |h: &SchedHandle| {
                    for step in 0..3 {
                        trace.with(|t| t.push((tag, step)));
                        h.yield_now();
                    }
                }) as VThread<'_>
            };
            sched.run(vec![mk(0), mk(1), mk(2)]).unwrap();
            trace.get()
        };
        assert_eq!(run_once(7), run_once(7));
        // At least one other seed produces a different interleaving.
        let base = run_once(7);
        assert!((0..32u64).any(|s| run_once(s) != base));
    }

    #[test]
    fn never_notified_wait_is_a_stall() {
        let mut sched = DetScheduler::round_robin();
        let cv = sched.condvar();
        let err = sched
            .run(vec![Box::new(move |h: &SchedHandle| h.wait(cv))])
            .unwrap_err();
        assert_eq!(err.blocked, vec![(0, 0)]);
    }

    #[test]
    fn notify_before_wait_is_lost_and_stalls() {
        // The classic missed wakeup: the notification fires before the
        // waiter blocks, so the waiter sleeps forever.
        let mut sched = DetScheduler::round_robin();
        let cv = sched.condvar();
        let err = sched
            .run(vec![
                Box::new(move |h: &SchedHandle| h.notify_one(cv)) as VThread<'_>,
                Box::new(move |h: &SchedHandle| {
                    h.yield_now(); // let the notifier go first
                    h.wait(cv);
                }),
            ])
            .unwrap_err();
        assert_eq!(err.blocked, vec![(1, 0)]);
    }

    #[test]
    fn wait_while_survives_spurious_wakeups() {
        for seed in 0..16 {
            let mut sched = DetScheduler::seeded(seed).with_spurious_wakeups();
            let cv = sched.condvar();
            let flag = DetCell::new(false);
            let waiter_flag = flag.clone();
            let setter_flag = flag.clone();
            sched
                .run(vec![
                    Box::new(move |h: &SchedHandle| {
                        h.wait_while(cv, || !waiter_flag.get());
                        assert!(waiter_flag.get(), "woke with predicate still false");
                    }) as VThread<'_>,
                    Box::new(move |h: &SchedHandle| {
                        for _ in 0..4 {
                            h.yield_now();
                        }
                        setter_flag.set(true);
                        h.notify_all(cv);
                    }),
                ])
                .unwrap();
        }
    }

    #[test]
    fn vthread_panic_propagates_to_caller() {
        let sched = DetScheduler::round_robin();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            sched.run(vec![
                Box::new(|_h: &SchedHandle| panic!("model assertion")) as VThread<'_>
            ])
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "model assertion");
    }
}
