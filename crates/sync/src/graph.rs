//! Global lock-order graph.
//!
//! Checked locks record every `held → acquiring` class pair here. The graph
//! accumulates edges across the whole process, so a conflicting order is
//! caught the *first* time two classes are ever taken both ways — even if the
//! two acquisitions happen on different threads, minutes apart, and never
//! actually deadlock in this run. [`OrderGraph::record`] returns a
//! [`CycleError`] carrying the acquisition locations of every edge on the
//! cycle; the checked lock wrappers turn that into a panic.

use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::{Mutex, OnceLock};

use crate::LockClass;

/// One recorded `from → to` ordering with the source locations that first
/// established it.
#[derive(Debug, Clone)]
pub struct OrderEdge {
    /// Class that was already held.
    pub from: &'static LockClass,
    /// Class that was acquired while `from` was held.
    pub to: &'static LockClass,
    /// Where `from` was acquired when the edge was first recorded.
    pub held_at: String,
    /// Where `to` was acquired when the edge was first recorded.
    pub acquired_at: String,
}

/// A lock-order cycle: the new edge that would close it plus the existing
/// path back from `to` to `from`.
#[derive(Debug, Clone)]
pub struct CycleError {
    /// The edge whose insertion closed the cycle.
    pub new_edge: OrderEdge,
    /// Previously recorded edges forming a path `new_edge.to → … →
    /// new_edge.from`. Empty for a self-cycle.
    pub path: Vec<OrderEdge>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lock-order cycle detected:")?;
        writeln!(
            f,
            "  `{}` -> `{}`: `{}` held at {}, `{}` acquired at {} (new)",
            self.new_edge.from.name(),
            self.new_edge.to.name(),
            self.new_edge.from.name(),
            self.new_edge.held_at,
            self.new_edge.to.name(),
            self.new_edge.acquired_at,
        )?;
        for e in &self.path {
            writeln!(
                f,
                "  `{}` -> `{}`: `{}` held at {}, `{}` acquired at {}",
                e.from.name(),
                e.to.name(),
                e.from.name(),
                e.held_at,
                e.to.name(),
                e.acquired_at,
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for CycleError {}

/// Class identity is the address of its `static`.
fn id(class: &'static LockClass) -> usize {
    class as *const LockClass as usize
}

#[derive(Default)]
struct Inner {
    /// Adjacency: `from` class id → (`to` class id → edge info).
    edges: HashMap<usize, HashMap<usize, OrderEdge>>,
}

/// A directed graph of observed lock-class orderings with cycle detection.
#[derive(Default)]
pub struct OrderGraph {
    inner: Mutex<Inner>,
}

impl OrderGraph {
    /// Creates an empty graph. Tests use fresh graphs; runtime checking uses
    /// [`OrderGraph::global`].
    pub fn new() -> Self {
        OrderGraph::default()
    }

    /// The process-wide graph that checked locks record into.
    pub fn global() -> &'static OrderGraph {
        static GLOBAL: OnceLock<OrderGraph> = OnceLock::new();
        GLOBAL.get_or_init(OrderGraph::new)
    }

    /// Records that `to` was acquired while `from` was held.
    ///
    /// Returns `Err` if the edge closes a cycle (including `from == to`).
    /// Duplicate edges are cheap no-ops.
    pub fn record(
        &self,
        from: &'static LockClass,
        to: &'static LockClass,
        held_at: &Location<'_>,
        acquired_at: &Location<'_>,
    ) -> Result<(), CycleError> {
        let new_edge = OrderEdge {
            from,
            to,
            held_at: held_at.to_string(),
            acquired_at: acquired_at.to_string(),
        };
        if id(from) == id(to) {
            return Err(CycleError {
                new_edge,
                path: Vec::new(),
            });
        }
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(out) = g.edges.get(&id(from)) {
            if out.contains_key(&id(to)) {
                return Ok(());
            }
        }
        if let Some(path) = reach_path(&g, id(to), id(from)) {
            return Err(CycleError { new_edge, path });
        }
        g.edges
            .entry(id(from))
            .or_default()
            .insert(id(to), new_edge);
        Ok(())
    }

    /// Number of distinct edges recorded so far.
    pub fn edge_count(&self) -> usize {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.edges.values().map(HashMap::len).sum()
    }
}

/// BFS from `start` to `goal` over recorded edges; returns the edge path if
/// `goal` is reachable.
fn reach_path(g: &Inner, start: usize, goal: usize) -> Option<Vec<OrderEdge>> {
    let mut prev: HashMap<usize, OrderEdge> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        if node == goal {
            // Walk predecessors back to `start`.
            let mut path = Vec::new();
            let mut cur = goal;
            while cur != start {
                let edge = prev.get(&cur).expect("predecessor recorded").clone();
                cur = id(edge.from);
                path.push(edge);
            }
            path.reverse();
            return Some(path);
        }
        if let Some(out) = g.edges.get(&node) {
            for (next, edge) in out {
                if *next != start && !prev.contains_key(next) {
                    prev.insert(*next, edge.clone());
                    queue.push_back(*next);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    static A: LockClass = LockClass::new("test.a", 1);
    static B: LockClass = LockClass::new("test.b", 2);
    static C: LockClass = LockClass::new("test.c", 3);

    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn two_cycle_detected() {
        let g = OrderGraph::new();
        g.record(&A, &B, here(), here()).unwrap();
        let err = g.record(&B, &A, here(), here()).unwrap_err();
        assert_eq!(err.new_edge.from.name(), "test.b");
        assert_eq!(err.path.len(), 1);
        let msg = err.to_string();
        assert!(msg.contains("test.a") && msg.contains("test.b"), "{msg}");
    }

    #[test]
    fn three_cycle_detected() {
        let g = OrderGraph::new();
        g.record(&A, &B, here(), here()).unwrap();
        g.record(&B, &C, here(), here()).unwrap();
        let err = g.record(&C, &A, here(), here()).unwrap_err();
        assert_eq!(err.path.len(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_cycle_detected() {
        let g = OrderGraph::new();
        let err = g.record(&A, &A, here(), here()).unwrap_err();
        assert!(err.path.is_empty());
    }

    #[test]
    fn diamond_is_not_a_cycle() {
        let g = OrderGraph::new();
        g.record(&A, &B, here(), here()).unwrap();
        g.record(&A, &C, here(), here()).unwrap();
        g.record(&B, &C, here(), here()).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let g = OrderGraph::new();
        g.record(&A, &B, here(), here()).unwrap();
        g.record(&A, &B, here(), here()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
