//! One-way boolean flags.

use std::sync::atomic::{AtomicBool, Ordering};

/// A set-once flag for shutdown/abort signalling.
///
/// Unlike a bare `AtomicBool`, the API admits only the transition
/// `unset → set`, so "who clears this and when" is not a question reviewers
/// have to answer. Identical in all build modes (atomics need no ordering
/// checks).
#[derive(Debug, Default)]
pub struct OnceFlag {
    set: AtomicBool,
}

impl OnceFlag {
    /// Creates an unset flag.
    pub const fn new() -> Self {
        OnceFlag {
            set: AtomicBool::new(false),
        }
    }

    /// Sets the flag. Returns `true` if this call performed the transition
    /// (i.e. the flag was previously unset).
    pub fn set(&self) -> bool {
        !self.set.swap(true, Ordering::AcqRel)
    }

    /// Whether the flag has been set.
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_transitions_once() {
        let f = OnceFlag::new();
        assert!(!f.is_set());
        assert!(f.set());
        assert!(f.is_set());
        assert!(!f.set(), "second set reports no transition");
        assert!(f.is_set());
    }
}
