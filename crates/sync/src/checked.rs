//! Rank-checked lock wrappers (debug / `--cfg ecpipe_sync_check` builds).
//!
//! Same API as [`passthrough`](../passthrough.rs), but every acquisition is
//! validated against the acquiring thread's held set and the global
//! lock-order graph (see [`held`](crate::held)). Guards pop the held set on
//! drop; [`Condvar::wait_while`] releases the class for the duration of the
//! wait and re-checks on reacquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::PoisonError;
use std::time::Duration;

use crate::{held, LockClass};

/// Mutual exclusion tagged with a [`LockClass`]; acquisition order is
/// checked in this build.
pub struct Mutex<T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex belonging to `class`.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        Mutex {
            class,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. Panics on a lock-order violation *before*
    /// blocking, so ordering bugs surface as panics rather than deadlocks.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        held::on_acquire(self.class, Location::caller());
        MutexGuard {
            class: self.class,
            inner: Some(self.inner.lock()),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases the held-set entry on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    // `None` only transiently inside `Condvar` wait paths, which take the
    // raw guard out and defuse this guard's bookkeeping.
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            held::on_release(self.class);
        }
    }
}

/// Reader-writer lock tagged with a [`LockClass`]; acquisition order is
/// checked in this build (read and write acquisitions are both ranked; a
/// thread may not hold two guards of the same class, even two readers,
/// because a writer queued between them still deadlocks).
pub struct RwLock<T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock belonging to `class`.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        RwLock {
            class,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access with order checking.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        held::on_acquire(self.class, Location::caller());
        RwLockReadGuard {
            class: self.class,
            inner: self.inner.read(),
        }
    }

    /// Acquires exclusive write access with order checking.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        held::on_acquire(self.class, Location::caller());
        RwLockWriteGuard {
            class: self.class,
            inner: self.inner.write(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        held::on_release(self.class);
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        held::on_release(self.class);
    }
}

/// Condition variable whose only wait operations are predicate-guarded.
///
/// There is deliberately no bare `wait()`: every wait states the condition
/// it is waiting *out of*, so a missed wakeup or spurious wakeup can at
/// worst delay a waiter, never derail it — the missed-wakeup bug class is a
/// type error with this API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks while `condition` returns `true`, releasing the lock class
    /// for the duration of the wait and re-checking order on reacquisition.
    #[track_caller]
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        let class = guard.class;
        let at = Location::caller();
        let raw = guard.inner.take().expect("guard taken by condvar wait");
        held::on_release(class);
        let raw = self
            .inner
            .wait_while(raw, condition)
            .unwrap_or_else(PoisonError::into_inner);
        held::on_acquire(class, at);
        MutexGuard {
            class,
            inner: Some(raw),
        }
    }

    /// Like [`Condvar::wait_while`], but re-checks the condition at least
    /// every `tick` even without a notification. Use where a notification
    /// can race with state observed outside this lock (e.g. peer-closed
    /// flags) and a bounded poll is the liveness backstop.
    #[track_caller]
    pub fn wait_while_tick<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        tick: Duration,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        let class = guard.class;
        let at = Location::caller();
        let mut raw = guard.inner.take().expect("guard taken by condvar wait");
        held::on_release(class);
        loop {
            if !condition(&mut *raw) {
                break;
            }
            let (g, _timed_out) = self
                .inner
                .wait_timeout_while(raw, tick, &mut condition)
                .unwrap_or_else(PoisonError::into_inner);
            raw = g;
        }
        held::on_acquire(class, at);
        MutexGuard {
            class,
            inner: Some(raw),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
