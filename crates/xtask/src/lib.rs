//! Lock-discipline static analysis for the workspace.
//!
//! `cargo run -p xtask -- lint` walks every `.rs` file in the tree and
//! enforces the concurrency conventions that `ecpipe-sync` exists to
//! provide (and that the compiler cannot check on its own):
//!
//! * **raw-sync** — no raw `std::sync::{Mutex, RwLock, Condvar}` or
//!   `parking_lot` primitives outside `crates/sync`, the dependency shims
//!   and this crate. Runtime code must go through `ecpipe-sync`, where every
//!   lock carries a [`lock class`](../ecpipe_sync/struct.LockClass.html)
//!   and checked builds enforce the acquisition order.
//! * **lock-unwrap** — no `.unwrap()` / `.expect(...)` on lock or channel
//!   operations in non-test library code. `ecpipe-sync` locks are
//!   infallible, so an unwrap on a lock result means a raw primitive
//!   sneaked back in; channel-op unwraps turn a disconnected peer into a
//!   panic instead of an error the caller can act on.
//! * **rank-collisions** — `lock_class!` declarations must not reuse a rank
//!   or a label anywhere in the tree: ranks form one global total order and
//!   a collision silently weakens the checked-build ordering guarantee.
//! * **lock-field-docs** — every struct field holding a `Mutex`/`RwLock`
//!   must carry a `/// Lock class:` doc line naming its class, so the
//!   hierarchy in `docs/ARCHITECTURE.md` stays discoverable from the code.
//! * **unsafe-code** — no `unsafe` outside the designated gf256 SIMD
//!   kernel modules (`crates/gf256/src/simd`) and the reactor's raw epoll
//!   shim (`crates/reactor/src/sys`), and inside them every `unsafe` item
//!   or block must carry a `// SAFETY:` comment justifying the invariant it
//!   relies on. The rest of the workspace stays safe Rust; vectorized field
//!   arithmetic and the event-loop syscall layer are the sanctioned
//!   exceptions.
//!
//! A finding can be suppressed on its line (or the line above) with an
//! inline marker carrying a reason:
//!
//! ```text
//! let raw = std::sync::Mutex::new(0); // xtask:allow(raw-sync): FFI fixture
//! ```
//!
//! The lint is deliberately line-based and dependency-free: it does not
//! parse Rust, it enforces house style over a tree whose idioms it owns.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) whose files are exempt from every rule:
/// the sync crate itself, the offline dependency shims, and this crate
/// (whose sources and fixtures mention the forbidden patterns by name).
const EXEMPT_DIRS: &[&str] = &["crates/sync", "crates/shims", "crates/xtask"];

/// Directories (workspace-relative) where `unsafe` is sanctioned: the
/// runtime-dispatched SIMD kernels and the reactor's raw epoll/eventfd
/// syscall shim, neither of which has safe wrappers available offline.
/// Files here still owe a `// SAFETY:` comment per `unsafe` occurrence.
const UNSAFE_ALLOWED_DIRS: &[&str] = &["crates/gf256/src/simd", "crates/reactor/src/sys"];

/// Directory names never walked.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`raw-sync`, `lock-unwrap`, `rank-collisions`,
    /// `lock-field-docs`, `unsafe-code`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A `lock_class!` declaration found in the tree.
#[derive(Debug, Clone)]
struct ClassDecl {
    path: PathBuf,
    line: usize,
    name: String,
    label: String,
    rank: u64,
}

/// Lints every `.rs` file under each root. Returns all findings, sorted by
/// path and line.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut classes: Vec<ClassDecl> = Vec::new();
    for root in roots {
        let mut files = Vec::new();
        collect_rs_files(root, root, &mut files)?;
        files.sort();
        for (path, rel) in files {
            let text = std::fs::read_to_string(&path)?;
            let exempt = EXEMPT_DIRS.iter().any(|d| rel.starts_with(Path::new(d)));
            if exempt {
                continue;
            }
            lint_file(&path, &rel, &text, &mut findings);
            collect_classes(&path, &text, &mut classes);
        }
    }
    findings.extend(rank_collision_findings(&classes));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Convenience wrapper: lints the workspace the binary was built from.
pub fn lint_workspace() -> std::io::Result<Vec<Finding>> {
    lint_paths(&[workspace_root()])
}

/// The workspace root, derived from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(PathBuf, PathBuf)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((path, rel));
        }
    }
    Ok(())
}

/// True if `line` (or the previous line) carries an
/// `xtask:allow(<rule>): <reason>` marker for the rule.
fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("xtask:allow({rule}):");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

/// True if the file is test/bench/example code, where unwraps and ad-hoc
/// primitives are accepted style.
fn is_test_path(rel: &Path) -> bool {
    rel.components().any(|c| {
        matches!(
            c.as_os_str().to_string_lossy().as_ref(),
            "tests" | "benches" | "examples"
        )
    })
}

fn lint_file(path: &Path, rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_file = is_test_path(rel);
    let in_test_mod = test_module_lines(&lines);
    let unsafe_allowed = UNSAFE_ALLOWED_DIRS
        .iter()
        .any(|d| rel.starts_with(Path::new(d)));

    for (idx, raw_line) in lines.iter().enumerate() {
        let line = strip_line_comment(raw_line);
        let lineno = idx + 1;

        // raw-sync: applies everywhere, including tests — test code
        // deadlocks too, and the detector only sees ecpipe-sync locks.
        if let Some(what) = raw_sync_use(line) {
            if !allowed(&lines, idx, "raw-sync") {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "raw-sync",
                    message: format!(
                        "{what} used directly; go through `ecpipe_sync` so the lock \
                         carries a class and checked builds can order it"
                    ),
                });
            }
        }

        // lock-unwrap: non-test library code only.
        if !test_file && !in_test_mod[idx] {
            if let Some(what) = lock_unwrap_use(line) {
                if !allowed(&lines, idx, "lock-unwrap") {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "lock-unwrap",
                        message: format!(
                            "{what} in library code; propagate an `EcPipeError` (or add \
                             `xtask:allow(lock-unwrap): <reason>` if panicking is the contract)"
                        ),
                    });
                }
            }
        }

        // unsafe-code: applies everywhere, tests included — the keyword is
        // either confined to the sanctioned SIMD modules (where each use
        // owes a `// SAFETY:` justification) or absent.
        if unsafe_token(line) {
            if unsafe_allowed {
                if !has_safety_comment(&lines, idx) && !allowed(&lines, idx, "unsafe-code") {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "unsafe-code",
                        message: "`unsafe` without a `// SAFETY:` comment; state the \
                                  invariant it relies on directly above the unsafe item"
                            .to_string(),
                    });
                }
            } else if !allowed(&lines, idx, "unsafe-code") {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "unsafe-code",
                    message: "`unsafe` outside the sanctioned modules \
                              (crates/gf256/src/simd, crates/reactor/src/sys); keep \
                              the workspace safe Rust or move the code there"
                        .to_string(),
                });
            }
        }

        // lock-field-docs: a struct field of lock type must carry a
        // `/// Lock class:` doc line.
        if lock_field(line) && !test_file && !in_test_mod[idx] {
            let documented = lines[..idx]
                .iter()
                .rev()
                .take_while(|l| {
                    let t = l.trim_start();
                    t.starts_with("///") || t.starts_with("#[")
                })
                .any(|l| l.contains("Lock class:"));
            if !documented && !allowed(&lines, idx, "lock-field-docs") {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "lock-field-docs",
                    message: "lock-holding field lacks a `/// Lock class:` doc line naming \
                              its `lock_order` class"
                        .to_string(),
                });
            }
        }
    }
}

/// Drops a trailing `// ...` comment (but keeps `xtask:allow` markers
/// visible to [`allowed`], which inspects the raw line).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) if !line[..pos].contains('"') => &line[..pos],
        _ => line,
    }
}

/// Which lines sit inside a `#[cfg(test)] mod ... { ... }` block.
fn test_module_lines(lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the module opener, then track brace depth to its close.
            let mut j = i;
            while j < lines.len() && !lines[j].contains('{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < lines.len() {
                for ch in lines[j].chars() {
                    match ch {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                flags[j] = true;
                if depth <= 0 {
                    break;
                }
                j += 1;
            }
            for flag in flags.iter_mut().take(j + 1).skip(i) {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Returns a description of the raw primitive a line reaches for, if any.
fn raw_sync_use(line: &str) -> Option<&'static str> {
    if line.contains("use parking_lot")
        || line.contains("parking_lot::Mutex")
        || line.contains("parking_lot::RwLock")
        || line.contains("parking_lot::Condvar")
    {
        return Some("`parking_lot` primitive");
    }
    for prim in ["Mutex", "RwLock", "Condvar"] {
        if line.contains(&format!("std::sync::{prim}")) {
            return Some("raw `std::sync` lock");
        }
    }
    // Braced imports: `use std::sync::{Arc, Condvar, Mutex};`
    if let Some(rest) = line.trim_start().strip_prefix("use std::sync::{") {
        if ["Mutex", "RwLock", "Condvar"]
            .iter()
            .any(|p| rest.split(['}', ',']).any(|item| item.trim() == *p))
        {
            return Some("raw `std::sync` lock");
        }
    }
    None
}

/// Returns a description of an unwrapped lock/channel result, if any.
fn lock_unwrap_use(line: &str) -> Option<&'static str> {
    const LOCK_OPS: &[(&str, &str)] = &[
        (".lock()", "`.unwrap()`/`.expect()` on a lock result"),
        (".read()", "`.unwrap()`/`.expect()` on a lock result"),
        (".write()", "`.unwrap()`/`.expect()` on a lock result"),
        (".recv()", "`.unwrap()`/`.expect()` on a channel receive"),
        (
            ".recv_timeout(",
            "`.unwrap()`/`.expect()` on a channel receive",
        ),
    ];
    for (op, what) in LOCK_OPS {
        for sink in [".unwrap()", ".expect("] {
            let needle = format!("{op}{sink}");
            // `.recv_timeout(` spans the call's open paren; match loosely.
            if op.ends_with('(') {
                if line.contains(op) && line.contains(sink) {
                    return Some(what);
                }
            } else if line.contains(&needle) {
                return Some(what);
            }
        }
    }
    if line.contains(".send(") && (line.contains(").unwrap()") || line.contains(").expect(")) {
        return Some("`.unwrap()`/`.expect()` on a channel send");
    }
    None
}

/// True if the (comment-stripped) line contains the `unsafe` keyword as a
/// standalone token. Word-boundary matching keeps attribute text like
/// `deny(unsafe_code)` and lint names like `unsafe_op_in_unsafe_fn` from
/// counting.
fn unsafe_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let boundary = |b: u8| !(b as char).is_alphanumeric() && b != b'_';
        if (start == 0 || boundary(bytes[start - 1]))
            && (end == bytes.len() || boundary(bytes[end]))
        {
            return true;
        }
        from = end;
    }
    false
}

/// True if the line carries (or is preceded by) a `// SAFETY:` comment. The
/// scan walks up through contiguous comment and attribute lines, so the
/// justification may sit above a `#[target_feature]`-decorated `unsafe fn`
/// or span several comment lines.
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if !(t.starts_with("//") || t.starts_with("#[")) {
            return false;
        }
        if t.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// True for a struct-field line of lock type (4-space indent, `name: Type`).
fn lock_field(line: &str) -> bool {
    let Some(field) = line.strip_prefix("    ") else {
        return false;
    };
    if field.starts_with(' ') || field.trim_start().starts_with("//") {
        return false; // deeper indent: local, match arm or nested literal
    }
    let field = field.strip_prefix("pub ").unwrap_or(field);
    let Some((name, ty)) = field.split_once(':') else {
        return false;
    };
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return false;
    }
    let ty = ty.trim_start();
    [
        "Mutex<",
        "RwLock<",
        "ecpipe_sync::Mutex<",
        "ecpipe_sync::RwLock<",
    ]
    .iter()
    .any(|p| ty.starts_with(p))
}

/// Extracts `lock_class!` declarations (`NAME = ("label", rank = N)`).
fn collect_classes(path: &Path, text: &str, out: &mut Vec<ClassDecl>) {
    let mut search = text;
    let mut offset = 0usize;
    while let Some(pos) = search.find("lock_class!") {
        let body_start = offset + pos;
        let body = &text[body_start..];
        // The declaration always fits well within the next 2 KiB.
        let window = &body[..body.len().min(2048)];
        if let Some((name, label, rank)) = parse_class_decl(window) {
            let line = text[..body_start].lines().count();
            out.push(ClassDecl {
                path: path.to_path_buf(),
                line: line.max(1),
                name,
                label,
                rank,
            });
        }
        offset = body_start + "lock_class!".len();
        search = &text[offset..];
    }
}

/// Parses `NAME = ("label", rank = N)` out of a `lock_class!` invocation.
fn parse_class_decl(window: &str) -> Option<(String, String, u64)> {
    let eq = window.find("= (")?;
    let name = window[..eq]
        .split_whitespace()
        .last()?
        .trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
        .to_string();
    let rest = &window[eq + 3..];
    let label_start = rest.find('"')? + 1;
    let label_end = label_start + rest[label_start..].find('"')?;
    let label = rest[label_start..label_end].to_string();
    let rank_kw = rest[label_end..].find("rank")? + label_end;
    let after = rest[rank_kw..].find('=')? + rank_kw + 1;
    let digits: String = rest[after..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    let rank: u64 = digits.replace('_', "").parse().ok()?;
    Some((name, label, rank))
}

fn rank_collision_findings(classes: &[ClassDecl]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut by_rank: HashMap<u64, &ClassDecl> = HashMap::new();
    let mut by_label: HashMap<&str, &ClassDecl> = HashMap::new();
    for decl in classes {
        if let Some(prev) = by_rank.get(&decl.rank) {
            findings.push(Finding {
                path: decl.path.clone(),
                line: decl.line,
                rule: "rank-collisions",
                message: format!(
                    "lock class `{}` reuses rank {} already taken by `{}` ({}:{})",
                    decl.name,
                    decl.rank,
                    prev.name,
                    prev.path.display(),
                    prev.line
                ),
            });
        } else {
            by_rank.insert(decl.rank, decl);
        }
        if let Some(prev) = by_label.get(decl.label.as_str()) {
            findings.push(Finding {
                path: decl.path.clone(),
                line: decl.line,
                rule: "rank-collisions",
                message: format!(
                    "lock class label `{}` already declared by `{}` ({}:{})",
                    decl.label,
                    prev.name,
                    prev.path.display(),
                    prev.line
                ),
            });
        } else {
            by_label.insert(decl.label.as_str(), decl);
        }
    }
    findings
}
