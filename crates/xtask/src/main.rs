//! `cargo run -p xtask -- lint [ROOT...]`
//!
//! Runs the lock-discipline lint (see the library crate docs for the rules)
//! over the workspace, or over explicit roots when given — the latter is
//! how the lint's own tests point it at planted-violation fixtures.
//! Exits 0 when clean, 1 with findings on stderr, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [ROOT...]   (got {:?})",
                other.unwrap_or("nothing")
            );
            return ExitCode::from(2);
        }
    }
    let roots: Vec<PathBuf> = args.map(PathBuf::from).collect();
    let result = if roots.is_empty() {
        xtask::lint_workspace()
    } else {
        xtask::lint_paths(&roots)
    };
    match result {
        Ok(findings) if findings.is_empty() => {
            eprintln!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                eprintln!("{finding}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
