//! The lint must pass the real workspace and fail planted violations.
//!
//! Fixtures are written to a per-test temp directory; each plants exactly
//! one violation so the assertions can name the rule they expect.

use std::path::PathBuf;

use xtask::{lint_paths, lint_workspace};

/// A throwaway directory under the target dir (kept out of the lint's own
/// walk because `target/` is always skipped), removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
            .join("lint-fixtures")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, contents).unwrap();
    }

    fn findings(&self) -> Vec<xtask::Finding> {
        lint_paths(std::slice::from_ref(&self.root)).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn the_workspace_is_clean() {
    let findings = lint_workspace().unwrap();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn planted_std_mutex_is_flagged() {
    let fx = Fixture::new("raw-std");
    fx.write(
        "src/lib.rs",
        "use std::sync::Mutex;\npub struct S { m: Mutex<u32> }\n",
    );
    let findings = fx.findings();
    assert!(
        findings.iter().any(|f| f.rule == "raw-sync"),
        "expected a raw-sync finding, got: {findings:?}"
    );
}

#[test]
fn planted_braced_std_import_is_flagged() {
    let fx = Fixture::new("raw-braced");
    fx.write(
        "src/lib.rs",
        "use std::sync::{Arc, Condvar, Mutex};\npub fn f() {}\n",
    );
    assert!(fx.findings().iter().any(|f| f.rule == "raw-sync"));
}

#[test]
fn planted_parking_lot_is_flagged() {
    let fx = Fixture::new("raw-pl");
    fx.write(
        "src/lib.rs",
        "pub fn f() { let _m = parking_lot::Mutex::new(0); }\n",
    );
    assert!(fx.findings().iter().any(|f| f.rule == "raw-sync"));
}

#[test]
fn planted_raw_sync_under_crates_meta_is_flagged() {
    // The metadata plane is NOT on the exempt list: its shard and router
    // locks must come from crates/sync like everyone else's, so a raw
    // primitive planted under a crates/meta path must fail the lint.
    let fx = Fixture::new("raw-meta");
    fx.write(
        "crates/meta/src/shard.rs",
        "use std::sync::Mutex;\npub struct Shard { state: Mutex<u32> }\n",
    );
    let findings = fx.findings();
    assert!(
        findings.iter().any(|f| f.rule == "raw-sync"),
        "crates/meta must be covered by the raw-sync rule, got: {findings:?}"
    );
}

#[test]
fn arc_and_atomics_are_not_raw_sync() {
    let fx = Fixture::new("raw-ok");
    fx.write(
        "src/lib.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};\nuse std::sync::Arc;\npub fn f() {}\n",
    );
    assert!(fx.findings().is_empty());
}

#[test]
fn lock_unwrap_in_lib_code_is_flagged() {
    let fx = Fixture::new("unwrap-lib");
    fx.write(
        "src/lib.rs",
        "pub fn f(m: &M) { let _g = m.lock().unwrap(); }\n",
    );
    let findings = fx.findings();
    assert!(findings.iter().any(|f| f.rule == "lock-unwrap"));
}

#[test]
fn channel_unwraps_are_flagged() {
    let fx = Fixture::new("unwrap-chan");
    fx.write(
        "src/lib.rs",
        "pub fn f(tx: &T, rx: &R) {\n    tx.send(1).unwrap();\n    let _v = rx.recv().unwrap();\n}\n",
    );
    let findings = fx.findings();
    assert_eq!(
        findings.iter().filter(|f| f.rule == "lock-unwrap").count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn unwraps_in_test_modules_and_test_dirs_are_exempt() {
    let fx = Fixture::new("unwrap-test");
    fx.write(
        "src/lib.rs",
        "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn g(m: &M) { let _x = m.lock().unwrap(); }\n}\n",
    );
    fx.write(
        "tests/it.rs",
        "fn g(m: &M) { let _x = m.lock().unwrap(); }\n",
    );
    fx.write("benches/b.rs", "fn g(r: &R) { r.recv().unwrap(); }\n");
    assert!(fx.findings().is_empty(), "{:?}", fx.findings());
}

#[test]
fn allow_marker_suppresses_a_finding() {
    let fx = Fixture::new("allow");
    fx.write(
        "src/lib.rs",
        "pub fn f(m: &M) {\n    // xtask:allow(lock-unwrap): poisoning is fatal here by design\n    let _g = m.lock().unwrap();\n}\n",
    );
    assert!(fx.findings().is_empty());
}

#[test]
fn rank_collisions_are_flagged() {
    let fx = Fixture::new("ranks");
    fx.write(
        "src/a.rs",
        "lock_class!(\n    /// A.\n    pub A = (\"mod.a\", rank = 10)\n);\n",
    );
    fx.write(
        "src/b.rs",
        "lock_class!(\n    /// B.\n    pub B = (\"mod.b\", rank = 10)\n);\nlock_class!(\n    /// C.\n    pub C = (\"mod.b\", rank = 11)\n);\n",
    );
    let findings = fx.findings();
    // One rank collision (10 vs 10) and one label collision ("mod.b").
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "rank-collisions")
            .count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn undocumented_lock_field_is_flagged() {
    let fx = Fixture::new("docs");
    fx.write("src/lib.rs", "pub struct S {\n    inner: Mutex<u32>,\n}\n");
    let findings = fx.findings();
    assert!(findings.iter().any(|f| f.rule == "lock-field-docs"));
}

#[test]
fn documented_lock_field_is_clean() {
    let fx = Fixture::new("docs-ok");
    fx.write(
        "src/lib.rs",
        "pub struct S {\n    /// Lock class: `mod.inner` ([`lock_order::INNER`]).\n    inner: Mutex<u32>,\n}\n",
    );
    assert!(fx.findings().is_empty(), "{:?}", fx.findings());
}

#[test]
fn unsafe_outside_the_simd_modules_is_flagged() {
    let fx = Fixture::new("unsafe-out");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    // Tests are not exempt: the keyword is banned tree-wide.
    fx.write(
        "crates/core/tests/it.rs",
        "fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let findings = fx.findings();
    assert_eq!(
        findings.iter().filter(|f| f.rule == "unsafe-code").count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn unsafe_in_the_simd_modules_needs_a_safety_comment() {
    let fx = Fixture::new("unsafe-simd");
    fx.write(
        "crates/gf256/src/simd/x86.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let findings = fx.findings();
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "unsafe-code" && f.message.contains("SAFETY")),
        "{findings:?}"
    );
}

#[test]
fn safety_commented_unsafe_in_the_simd_modules_is_clean() {
    let fx = Fixture::new("unsafe-ok");
    // Both shapes the kernels use: a comment directly above an `unsafe`
    // block, and a comment above a `#[target_feature]`-decorated fn.
    fx.write(
        "crates/gf256/src/simd/x86.rs",
        concat!(
            "fn f(p: *const u8) -> u8 {\n",
            "    // SAFETY: caller guarantees `p` is valid for reads.\n",
            "    unsafe { *p }\n",
            "}\n",
            "\n",
            "// SAFETY: only called after runtime feature detection.\n",
            "#[target_feature(enable = \"avx2\")]\n",
            "unsafe fn g() {}\n",
        ),
    );
    assert!(fx.findings().is_empty(), "{:?}", fx.findings());
}

#[test]
fn unsafe_mentions_in_comments_and_attributes_do_not_count() {
    let fx = Fixture::new("unsafe-words");
    fx.write(
        "crates/core/src/lib.rs",
        concat!(
            "//! No `unsafe` lives here.\n",
            "#![deny(unsafe_code)]\n",
            "#![warn(unsafe_op_in_unsafe_fn)]\n",
            "pub fn f() {} // not unsafe at all\n",
        ),
    );
    assert!(fx.findings().is_empty(), "{:?}", fx.findings());
}

#[test]
fn allow_marker_suppresses_an_unsafe_finding() {
    let fx = Fixture::new("unsafe-allow");
    fx.write(
        "crates/core/src/lib.rs",
        concat!(
            "pub fn f(p: *const u8) -> u8 {\n",
            "    // xtask:allow(unsafe-code): FFI boundary audited in review\n",
            "    unsafe { *p }\n",
            "}\n",
        ),
    );
    assert!(fx.findings().is_empty(), "{:?}", fx.findings());
}

#[test]
fn the_lint_binary_exits_nonzero_on_a_dirty_tree() {
    let fx = Fixture::new("binary");
    fx.write("src/lib.rs", "use std::sync::Mutex;\n");
    let exe = env!("CARGO_BIN_EXE_xtask");
    let dirty = std::process::Command::new(exe)
        .args(["lint", fx.root.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let stderr = String::from_utf8_lossy(&dirty.stderr);
    assert!(stderr.contains("raw-sync"), "{stderr}");

    let clean = std::process::Command::new(exe)
        .args(["lint"])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
}
