//! `ecpipe-reactor` — an epoll-backed event loop on a **fixed** thread
//! budget.
//!
//! The crate exists so transports can multiplex hundreds of nonblocking
//! connections over a handful of threads instead of parking one blocking
//! thread per listener/connection (the `TcpTransport` model, which is fine
//! at 14 nodes and wrong at thousands). The API is deliberately tiny:
//!
//! * [`Reactor::new(threads)`](Reactor::new) spawns the pool; each thread
//!   owns one epoll instance plus an eventfd waker.
//! * [`Reactor::register`] attaches a file descriptor with an [`Interest`]
//!   and an `Arc<dyn `[`Source`]`>` callback; descriptors are spread over
//!   the pool round-robin and stay pinned to their thread.
//! * The poll thread invokes [`Source::on_ready`] with the decoded
//!   [`Readiness`] every time the descriptor is ready (level-triggered:
//!   the callback re-fires until the condition is cleared).
//! * [`Registration::set_interest`] re-arms the watched event set (e.g.
//!   enable `EPOLLOUT` only while an outbound buffer is non-empty);
//!   dropping the [`Registration`] deregisters.
//!
//! ### Callback contract
//!
//! `on_ready` runs on the reactor thread with **no reactor locks held**, so
//! it may call [`Registration::set_interest`] or drop registrations freely.
//! It must not block for long — every descriptor pinned to that thread
//! stalls while it runs. Because deregistration races in-flight readiness
//! dispatch, a source may observe one spurious `on_ready` after its
//! registration is dropped; handlers must tolerate that.
//!
//! All `unsafe` (raw epoll/eventfd syscalls) lives in [`sys`], each block
//! `// SAFETY:`-annotated, mirroring `crates/gf256/src/simd`. Everything
//! here locks through `ecpipe-sync`, so lock-rank checking and the xtask
//! lint cover the crate.

#[cfg(not(target_os = "linux"))]
compile_error!("ecpipe-reactor requires Linux (epoll + eventfd)");

pub mod sys;

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ecpipe_sync::{lock_class, Mutex, OnceFlag};

lock_class! {
    /// Per-poll-thread token → source dispatch table.
    pub REACTOR_SOURCES = ("reactor.sources", rank = 55)
}

/// Which readiness conditions a registration watches. Peer hangup/error is
/// always watched and reported via [`Readiness::closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Fire when the descriptor becomes readable.
    pub readable: bool,
    /// Fire when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Watch readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Watch writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Watch both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// The readiness state delivered to [`Source::on_ready`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// Data (or EOF/error state, which a read will surface) is available.
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// The peer hung up or the descriptor errored.
    pub closed: bool,
}

/// A readiness callback. Implementations are shared (`Arc`) between the
/// caller and the poll thread and invoked without any reactor lock held.
pub trait Source: Send + Sync {
    /// Called on the owning reactor thread each time the registered
    /// descriptor polls ready. Level-triggered: keeps firing until the
    /// implementation clears the condition (reads the data, flushes the
    /// buffer, or narrows the interest).
    fn on_ready(&self, readiness: Readiness);
}

/// Token 0 is reserved for each thread's eventfd waker.
const WAKER_TOKEN: u64 = 0;

/// One poll thread's state: its epoll instance, its waker and the dispatch
/// table from token to source.
struct Poller {
    epoll: sys::Epoll,
    waker: sys::EventFd,
    /// Lock class: [`REACTOR_SOURCES`]. Leaf lock — held only to
    /// insert/remove/clone an `Arc`, never across a callback or a syscall
    /// that can block.
    sources: Mutex<HashMap<u64, Arc<dyn Source>>>,
}

struct Shared {
    pollers: Vec<Arc<Poller>>,
    next_token: AtomicU64,
    next_poller: AtomicUsize,
    shutdown: OnceFlag,
}

/// A fixed-size pool of epoll threads with a registration API.
///
/// Dropping the reactor shuts the pool down: every poll thread is woken and
/// joined. Registrations may outlive the reactor object itself (they hold
/// their poller's state), but no further callbacks fire after shutdown.
pub struct Reactor {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns a reactor with `threads` poll threads (clamped to at least
    /// one). The thread count is fixed for the reactor's lifetime — load is
    /// distributed by spreading registrations, never by spawning.
    pub fn new(threads: usize) -> io::Result<Reactor> {
        let threads = threads.max(1);
        let mut pollers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let epoll = sys::Epoll::new()?;
            let waker = sys::EventFd::new()?;
            epoll.add(waker.raw_fd(), WAKER_TOKEN, true, false)?;
            pollers.push(Arc::new(Poller {
                epoll,
                waker,
                sources: Mutex::new(&REACTOR_SOURCES, HashMap::new()),
            }));
        }
        let shared = Arc::new(Shared {
            pollers,
            next_token: AtomicU64::new(WAKER_TOKEN + 1),
            next_poller: AtomicUsize::new(0),
            shutdown: OnceFlag::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let thread_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("ecpipe-reactor-{i}"))
                .spawn(move || poll_loop(&thread_shared, i));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the partially-spawned pool before bailing out.
                    shared.shutdown.set();
                    for p in &shared.pollers {
                        p.waker.signal();
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Reactor {
            shared,
            threads: handles,
        })
    }

    /// The fixed number of poll threads.
    pub fn thread_count(&self) -> usize {
        self.shared.pollers.len()
    }

    /// Registers `fd` with the pool. The descriptor should be in
    /// nonblocking mode (the reactor never reads or writes it — the source
    /// does — but a blocking descriptor makes a blocking source, which
    /// stalls every peer on the same thread).
    ///
    /// The caller keeps ownership of the descriptor and must keep it open
    /// for the life of the returned [`Registration`].
    pub fn register(
        &self,
        fd: RawFd,
        interest: Interest,
        source: Arc<dyn Source>,
    ) -> io::Result<Registration> {
        if self.shared.shutdown.is_set() {
            return Err(io::Error::other("reactor is shut down"));
        }
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        let idx =
            self.shared.next_poller.fetch_add(1, Ordering::Relaxed) % self.shared.pollers.len();
        let poller = Arc::clone(&self.shared.pollers[idx]);
        poller.sources.lock().insert(token, source);
        if let Err(e) = poller
            .epoll
            .add(fd, token, interest.readable, interest.writable)
        {
            poller.sources.lock().remove(&token);
            return Err(e);
        }
        Ok(Registration { poller, token, fd })
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shared.shutdown.set();
        for poller in &self.shared.pollers {
            poller.waker.signal();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A live registration. Dropping it detaches the descriptor from the pool.
pub struct Registration {
    poller: Arc<Poller>,
    token: u64,
    fd: RawFd,
}

impl Registration {
    /// Replaces the watched event set. Typical use: arm `writable` only
    /// while an outbound buffer has pending bytes, so an idle connection
    /// does not spin on a permanently-writable socket.
    pub fn set_interest(&self, interest: Interest) -> io::Result<()> {
        self.poller
            .epoll
            .modify(self.fd, self.token, interest.readable, interest.writable)
    }

    /// Wakes the owning poll thread even if no descriptor is ready. Used by
    /// shutdown paths that need the thread to re-check external state.
    pub fn wake_owner(&self) {
        self.poller.waker.signal();
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        let _ = self.poller.epoll.delete(self.fd);
        self.poller.sources.lock().remove(&self.token);
    }
}

fn poll_loop(shared: &Shared, index: usize) {
    let poller = &shared.pollers[index];
    let mut events = Vec::new();
    loop {
        if shared.shutdown.is_set() {
            return;
        }
        let n = match poller.epoll.wait(&mut events, -1) {
            Ok(n) => n,
            // A wait error is unrecoverable for this thread (EINTR is
            // already retried in sys); parking here would hang peers, so
            // exit and let shutdown join us.
            Err(_) => return,
        };
        for event in events.iter().copied().take(n) {
            if event.token == WAKER_TOKEN {
                poller.waker.drain();
                continue;
            }
            // Clone the source out and drop the table lock before the
            // callback: handlers may (de)register freely.
            let source = poller.sources.lock().get(&event.token).cloned();
            if let Some(source) = source {
                source.on_ready(Readiness {
                    readable: event.readable,
                    writable: event.writable,
                    closed: event.closed,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    /// Spin (with sleeps) until `cond` holds or two seconds pass.
    fn await_true(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    struct CountingSource {
        ready: AtomicUsize,
        closed: AtomicUsize,
        drain: TcpStream,
    }

    impl Source for CountingSource {
        fn on_ready(&self, readiness: Readiness) {
            if readiness.closed {
                self.closed.fetch_add(1, Ordering::SeqCst);
            }
            if readiness.readable {
                // Drain so the level-triggered event clears.
                let mut buf = [0u8; 256];
                let mut stream = &self.drain;
                while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
                self.ready.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    #[test]
    fn readable_data_dispatches_to_source() {
        let reactor = Reactor::new(2).unwrap();
        let (client, mut server) = pair();
        client.set_nonblocking(true).unwrap();
        let source = Arc::new(CountingSource {
            ready: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            drain: client.try_clone().unwrap(),
        });
        let reg = reactor
            .register(
                client.as_raw_fd(),
                Interest::READABLE,
                Arc::clone(&source) as _,
            )
            .unwrap();
        server.write_all(b"hello").unwrap();
        assert!(await_true(|| source.ready.load(Ordering::SeqCst) >= 1));
        drop(server);
        assert!(await_true(|| source.closed.load(Ordering::SeqCst) >= 1));
        drop(reg);
    }

    #[test]
    fn many_registrations_on_fixed_pool() {
        let reactor = Reactor::new(2).unwrap();
        assert_eq!(reactor.thread_count(), 2);
        let mut keep = Vec::new();
        let mut sources = Vec::new();
        for _ in 0..16 {
            let (client, server) = pair();
            client.set_nonblocking(true).unwrap();
            let source = Arc::new(CountingSource {
                ready: AtomicUsize::new(0),
                closed: AtomicUsize::new(0),
                drain: client.try_clone().unwrap(),
            });
            let reg = reactor
                .register(
                    client.as_raw_fd(),
                    Interest::READABLE,
                    Arc::clone(&source) as _,
                )
                .unwrap();
            keep.push((client, server, reg));
            sources.push(source);
        }
        for (_, server, _) in &mut keep {
            server.write_all(b"ping").unwrap();
        }
        assert!(await_true(|| sources
            .iter()
            .all(|s| s.ready.load(Ordering::SeqCst) >= 1)));
    }

    #[test]
    fn set_interest_rearms_writable() {
        struct WritableOnce {
            hits: AtomicUsize,
        }
        impl Source for WritableOnce {
            fn on_ready(&self, readiness: Readiness) {
                if readiness.writable {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let reactor = Reactor::new(1).unwrap();
        let (client, _server) = pair();
        client.set_nonblocking(true).unwrap();
        let source = Arc::new(WritableOnce {
            hits: AtomicUsize::new(0),
        });
        // Start with read-only interest: no writable callbacks.
        let reg = reactor
            .register(
                client.as_raw_fd(),
                Interest::READABLE,
                Arc::clone(&source) as _,
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(source.hits.load(Ordering::SeqCst), 0);
        // Arm writable: an idle socket is immediately writable.
        reg.set_interest(Interest::BOTH).unwrap();
        assert!(await_true(|| source.hits.load(Ordering::SeqCst) >= 1));
        // Disarm again: the level-triggered storm stops.
        reg.set_interest(Interest::READABLE).unwrap();
        let settled = source.hits.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(20));
        assert!(source.hits.load(Ordering::SeqCst) <= settled + 1);
    }

    #[test]
    fn dropping_registration_stops_dispatch() {
        let reactor = Reactor::new(1).unwrap();
        let (client, mut server) = pair();
        client.set_nonblocking(true).unwrap();
        let source = Arc::new(CountingSource {
            ready: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            drain: client.try_clone().unwrap(),
        });
        let reg = reactor
            .register(
                client.as_raw_fd(),
                Interest::READABLE,
                Arc::clone(&source) as _,
            )
            .unwrap();
        server.write_all(b"one").unwrap();
        assert!(await_true(|| source.ready.load(Ordering::SeqCst) >= 1));
        drop(reg);
        // A spurious in-flight dispatch is tolerated; after it settles no
        // further traffic reaches the source.
        std::thread::sleep(Duration::from_millis(10));
        let settled = source.ready.load(Ordering::SeqCst);
        server.write_all(b"two").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(source.ready.load(Ordering::SeqCst) <= settled + 1);
    }

    #[test]
    fn shutdown_joins_promptly() {
        let reactor = Reactor::new(3).unwrap();
        let started = Instant::now();
        drop(reactor);
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn register_after_shutdown_fails() {
        let reactor = Reactor::new(1).unwrap();
        reactor.shared.shutdown.set();
        let (client, _server) = pair();
        struct Nop;
        impl Source for Nop {
            fn on_ready(&self, _: Readiness) {}
        }
        assert!(reactor
            .register(client.as_raw_fd(), Interest::READABLE, Arc::new(Nop))
            .is_err());
    }
}
