//! Raw epoll/eventfd syscall bindings — the one `unsafe` island of the
//! reactor, mirroring the `crates/gf256/src/simd` convention: every
//! `unsafe` block carries a `// SAFETY:` comment and nothing outside this
//! directory touches a raw pointer or a foreign function. The rest of the
//! crate (and the transport built on it) consumes only the safe wrappers
//! exported here: [`Epoll`], [`Event`] and [`EventFd`].
//!
//! The bindings are declared `extern "C"` against the C library the Rust
//! standard library already links (there is no `libc` crate in the offline
//! workspace), using the glibc symbol names and the kernel ABI structs.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;

// Kernel event-mask bits (uapi/linux/eventpoll.h).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (glibc's
/// `__EPOLL_PACKED`); naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// SAFETY: these are the glibc prototypes for the epoll/eventfd family and
// the POSIX fd primitives, with types matching the C declarations
// (`int` -> i32, `uint32_t` -> u32, `void *` -> raw pointer). The symbols
// are provided by the C library std already links on Linux.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One decoded readiness event, as returned by [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (or has pending error/hangup state, which
    /// a read will surface).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer closed or the descriptor errored (`EPOLLERR`/`EPOLLHUP`/
    /// `EPOLLRDHUP`).
    pub closed: bool,
}

/// A safe wrapper over one epoll instance.
///
/// All methods take `&self`: the kernel serializes `epoll_ctl` against
/// `epoll_wait` internally, so registration changes may race an in-flight
/// wait from another thread — the wait simply observes the updated interest
/// list.
pub struct Epoll {
    fd: RawFd,
}

// How many events one `wait` call decodes at most; more simply arrive on
// the next call (epoll is level-triggered here, nothing is lost).
const WAIT_BATCH: usize = 64;

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // mapped to an error, otherwise the fd is owned by the new wrapper.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLRDHUP
                | if readable { EPOLLIN } else { 0 }
                | if writable { EPOLLOUT } else { 0 },
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid-out epoll_event for the
        // duration of the call; the kernel copies it before returning. For
        // EPOLL_CTL_DEL the kernel ignores the pointer (pre-2.6.9 quirks
        // aside), but a valid one is passed regardless.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest; readiness is reported with
    /// `token`. Peer-hangup is always watched.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Replaces the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Removes `fd` from the interest list. Harmless if the fd was already
    /// closed (the kernel auto-removes closed descriptors).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Waits up to `timeout_ms` (-1 = forever) for readiness, appending
    /// decoded events to `out` (which is cleared first). Returns the number
    /// of events. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let mut raw = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        let cap = WAIT_BATCH as i32;
        let n = loop {
            // SAFETY: `raw` is a stack array of WAIT_BATCH properly-sized
            // epoll_event structs; the kernel writes at most `cap` entries
            // and returns how many are valid.
            let ret = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), cap, timeout_ms) };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before taking refs.
            let (events, data) = (ev.events, ev.data);
            out.push(Event {
                token: data,
                readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the wrapper owns the fd and this is its last use.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: the cross-thread wakeup primitive that interrupts
/// a blocked [`Epoll::wait`].
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; a negative return is mapped to
        // an error, otherwise the fd is owned by the wrapper.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for registering with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable, waking any epoll watching it. Lossy by
    /// design: failures (e.g. a full counter, which is itself a pending
    /// wakeup) are ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly the 8 bytes of a live u64, as the eventfd
        // contract requires.
        unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consumes pending wakeups so the eventfd stops polling readable.
    /// Nonblocking: returns immediately if there is nothing to drain.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live 8-byte buffer; EAGAIN
        // (nothing pending) is the expected no-op outcome and is ignored.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: the wrapper owns the fd and this is its last use.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn eventfd_wakes_epoll() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait sees nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Drained, the level-triggered readiness goes away.
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_hangup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let epoll = Epoll::new().unwrap();
        use std::os::fd::AsRawFd;
        epoll.add(client.as_raw_fd(), 1, true, false).unwrap();
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no data yet");
        server.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].readable && !events[0].closed);
        drop(server);
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].closed, "peer close must surface as closed");
    }

    #[test]
    fn modify_switches_interest() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        use std::os::fd::AsRawFd;
        let epoll = Epoll::new().unwrap();
        // Writable interest on an idle socket fires immediately.
        epoll.add(client.as_raw_fd(), 2, false, true).unwrap();
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].writable);
        // Switch to read-only interest: no more writable events.
        epoll.modify(client.as_raw_fd(), 2, true, false).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.delete(client.as_raw_fd()).unwrap();
    }
}
