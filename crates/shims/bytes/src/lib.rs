//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a tiny local implementation of the subset of the `bytes` API that the
//! runtime uses: an immutable, cheaply cloneable byte buffer backed by an
//! `Arc<[u8]>`. Swap this path dependency for the real crate when a registry
//! is available; no call sites need to change.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice (allocates here, unlike the real
    /// crate, which is zero-copy; the semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a slice of self for the provided range (allocates a new
    /// buffer; the real crate shares the allocation).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.data.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        drop(b);
        assert_eq!(c.slice(1..), Bytes::from(vec![2u8, 3]));
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
