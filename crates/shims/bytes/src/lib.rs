//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a tiny local implementation of the subset of the `bytes` API that the
//! runtime uses: an immutable, cheaply cloneable byte buffer. Like the real
//! crate, a `Bytes` is a reference-counted view (owner + offset + length),
//! so [`Bytes::clone`], [`Bytes::slice`] and [`From<Vec<u8>>`] share one
//! allocation instead of copying. Swap this path dependency for the real
//! crate when a registry is available; the only shim-specific surface is
//! [`shim_metrics`], which exists so tests can pin that hot paths stay
//! zero-copy.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Copy instrumentation for the shim, used by zero-copy regression tests.
pub mod shim_metrics {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static DEEP_COPY_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Total bytes deep-copied by [`crate::Bytes::copy_from_slice`] and
    /// [`crate::Bytes::to_vec`] since process start. Slicing, cloning and
    /// `From<Vec<u8>>` never contribute — they share the allocation. Tests
    /// snapshot this before and after a flow to assert it stayed
    /// zero-copy; the counter is monotonic, so concurrent tests only ever
    /// inflate deltas (a zero delta is trustworthy).
    pub fn deep_copy_bytes() -> u64 {
        DEEP_COPY_BYTES.load(Ordering::Relaxed)
    }

    pub(crate) fn record_copy(len: usize) {
        DEEP_COPY_BYTES.fetch_add(len as u64, Ordering::Relaxed);
    }
}

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    /// The owning allocation; `start`/`len` select this view's window.
    owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Creates `Bytes` from a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            len: bytes.len(),
            owner: Arc::new(bytes),
            start: 0,
        }
    }

    /// Wraps any owned byte container without copying; the `Bytes` (and
    /// every clone/slice of it) keeps `owner` alive and drops it with the
    /// last reference. This is how pooled buffers re-enter their pool: the
    /// owner's `Drop` runs when the final view goes away.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes {
            owner: Arc::new(owner),
            start: 0,
            len,
        }
    }

    /// Copies `data` into a new `Bytes`. This is the deliberate deep-copy
    /// entry point (counted by [`shim_metrics`]); prefer `From<Vec<u8>>` or
    /// [`Bytes::from_owner`] when the caller already owns the bytes.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        shim_metrics::record_copy(data.len());
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            owner: Arc::new(v),
            start: 0,
            len,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of self for the provided range, sharing the backing
    /// allocation with self (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            owner: Arc::clone(&self.owner),
            start: self.start + start,
            len: end - start,
        }
    }

    /// Copies the contents into a `Vec<u8>` (counted by [`shim_metrics`]).
    pub fn to_vec(&self) -> Vec<u8> {
        shim_metrics::record_copy(self.len);
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &(*self.owner).as_ref()[self.start..self.start + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_vec(v.into_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

// Equality, ordering and hashing are all over the viewed contents, so two
// views of different allocations with equal bytes compare equal and hash
// identically (matching the `Borrow<[u8]>` contract).

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        drop(b);
        assert_eq!(c.slice(1..), Bytes::from(vec![2u8, 3]));
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let before = shim_metrics::deep_copy_bytes();
        let b = Bytes::from(vec![7u8; 4096]);
        let s = b.slice(100..200);
        let s2 = s.slice(10..20);
        let c = s2.clone();
        assert_eq!(c.len(), 10);
        assert_eq!(&c[..], &[7u8; 10][..]);
        assert_eq!(
            shim_metrics::deep_copy_bytes(),
            before,
            "slice/clone/from-vec must not deep-copy"
        );
    }

    #[test]
    fn nested_slices_index_from_the_view_start() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..50);
        assert_eq!(s[0], 10);
        let s2 = s.slice(5..=6);
        assert_eq!(&s2[..], &[15, 16]);
        assert_eq!(b.slice(..).len(), 100);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_the_view_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn from_owner_drops_with_the_last_view() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        struct Owner(Vec<u8>, Arc<AtomicBool>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Owner {
            fn drop(&mut self) {
                self.1.store(true, Ordering::SeqCst);
            }
        }

        let dropped = Arc::new(AtomicBool::new(false));
        let b = Bytes::from_owner(Owner(vec![1, 2, 3], Arc::clone(&dropped)));
        let s = b.slice(1..);
        drop(b);
        assert!(!dropped.load(Ordering::SeqCst), "view still alive");
        assert_eq!(&s[..], &[2, 3]);
        drop(s);
        assert!(dropped.load(Ordering::SeqCst), "last view drops the owner");
    }

    #[test]
    fn copies_are_counted() {
        let before = shim_metrics::deep_copy_bytes();
        let b = Bytes::copy_from_slice(&[0u8; 100]);
        let _v = b.to_vec();
        assert_eq!(shim_metrics::deep_copy_bytes() - before, 200);
    }

    #[test]
    fn content_equality_across_allocations() {
        use std::collections::hash_map::DefaultHasher;
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![0u8, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
        let hash = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let c = Bytes::from(vec![1u8, 2, 4]);
        assert!(a < c);
    }
}
