//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! just enough of the proptest surface for the workspace's property tests:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`), `any`,
//! integer-range and `collection::vec` strategies, and the `prop_assert*`
//! macros. Inputs are sampled from a deterministic splitmix64 stream seeded
//! by the test name, so failures reproduce run-to-run. There is **no
//! shrinking**: a failing case reports the assertion as-is. Swap the path
//! dependency for the real crate when a registry is available.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to sample strategy inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name so every test gets a distinct but
    /// stable sequence.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of values for one test-case input.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 uniform mantissa bits in [0, 1), scaled to the range
                    // (real proptest also samples uniformly for float ranges).
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*
    };
}

impl_float_range_strategy!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a strategy producing vectors whose length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-block configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples its inputs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual `proptest::prelude` re-exports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(1..=255u8), &mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_vary() {
        let mut rng = TestRng::from_name("floats");
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let v = Strategy::sample(&(0.001..100.0f64), &mut rng);
            assert!((0.001..100.0).contains(&v));
            distinct.insert(v.to_bits());
            let w = Strategy::sample(&(-2.0..2.0f32), &mut rng);
            assert!((-2.0..2.0).contains(&w));
        }
        assert!(distinct.len() > 400, "samples should not collapse");
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::from_name("vec");
        let strat = crate::collection::vec(any::<u8>(), 1..16);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..16).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_samples_inputs(x in any::<u8>(), n in 1usize..4) {
            prop_assert!((1..4).contains(&n));
            let _ = x;
        }
    }
}
