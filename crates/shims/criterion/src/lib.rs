//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotations and `Bencher::iter` — with a plain wall-clock measurement
//! loop and text output (median of the sample means, plus GiB/s when a
//! byte throughput is set). No statistical analysis, HTML reports or
//! comparison against saved baselines. Swap the path dependency for the
//! real crate when a registry is available.
//!
//! Two environment variables drive the CI benchmark pipeline:
//!
//! * `BENCH_SMOKE=1` — smoke mode: at most 3 samples and a ~60 ms
//!   measurement window per benchmark, for a quick went-it-run gate rather
//!   than a statistically sound measurement.
//! * `BENCH_RESULTS_LOG=<path>` — append one tab-separated record per
//!   benchmark: `name`, `ns_per_iter`, `bytes_per_sec` (or `-`),
//!   `elements_per_sec` (or `-`). The `bench_json` tool in `crates/bench`
//!   turns the log into the `BENCH_results.json` artifact CI uploads.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            self.sample_size,
            self.measurement_time,
            None,
            &id.label,
            |b| f(b),
        );
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.throughput,
            &label,
            |b| f(b),
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.throughput,
            &label,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Whether `BENCH_SMOKE` asks for quick, statistically weak runs.
fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Appends one record to the `BENCH_RESULTS_LOG` file, if configured.
fn log_result(label: &str, median_secs: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("BENCH_RESULTS_LOG") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    append_record(std::path::Path::new(&path), label, median_secs, throughput);
}

/// Appends one tab-separated benchmark record to `path`.
fn append_record(
    path: &std::path::Path,
    label: &str,
    median_secs: f64,
    throughput: Option<Throughput>,
) {
    let bytes_per_sec = match throughput {
        Some(Throughput::Bytes(b)) => format!("{:.3}", b as f64 / median_secs),
        _ => "-".to_string(),
    };
    let elements_per_sec = match throughput {
        Some(Throughput::Elements(n)) => format!("{:.3}", n as f64 / median_secs),
        _ => "-".to_string(),
    };
    let record = format!(
        "{label}\t{:.3}\t{bytes_per_sec}\t{elements_per_sec}\n",
        median_secs * 1e9
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = written {
        // The CI pipeline fails on a missing/empty log, so surface the
        // reason rather than dying mid-bench.
        eprintln!(
            "warning: could not append to BENCH_RESULTS_LOG {}: {e}",
            path.display()
        );
    }
}

fn run_bench(
    mut sample_size: usize,
    mut measurement_time: Duration,
    throughput: Option<Throughput>,
    label: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    if smoke_mode() {
        sample_size = sample_size.min(3);
        measurement_time = measurement_time.min(Duration::from_millis(60));
    }
    // Calibration pass: one iteration, to size the real runs.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.max(Duration::from_millis(1)) / sample_size as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut means: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    means.sort_by(|a, b| a.total_cmp(b));
    let median = means[means.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!("  {:.3} GiB/s", bytes as f64 / median / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Melem/s", n as f64 / median / 1e6)
        }
        None => String::new(),
    };
    eprintln!("  {label}: {}{rate}", format_time(median));
    log_result(label, median, throughput);
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 1024), &1024usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    // Calls append_record directly rather than mutating BENCH_RESULTS_LOG:
    // set_var racing getenv from concurrently running tests is UB on glibc.
    #[test]
    fn results_log_records_are_well_formed() {
        let path = std::env::temp_dir().join(format!("bench_log_{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_record(
            &path,
            "logged/work",
            0.000125,
            Some(Throughput::Bytes(4096)),
        );
        append_record(&path, "logged/untimed", 0.25, None);

        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.starts_with("logged/work\t"))
            .expect("record for logged/work");
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[1], "125000.000");
        assert_eq!(fields[2], "32768000.000");
        assert_eq!(fields[3], "-");
        assert!(text.contains("logged/untimed\t250000000.000\t-\t-\n"));
    }
}
