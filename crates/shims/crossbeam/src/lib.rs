//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` MPMC channels built on
//! `Mutex` + `Condvar`. Semantics match crossbeam where the workspace relies
//! on them: blocking `send` on a full buffer, blocking `recv` on an empty
//! one, and disconnection errors once the opposite side is fully dropped.
//! Throughput is far below real crossbeam; swap the path dependency for the
//! real crate when a registry is available.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        shared: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel buffering at most `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the buffer is full. Fails once every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut shared = self.inner.shared.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = shared
                    .capacity
                    .is_some_and(|cap| shared.queue.len() >= cap.max(1));
                if !full {
                    shared.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                shared = self.inner.not_full.wait(shared).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.shared.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.shared.lock().unwrap();
            shared.senders -= 1;
            if shared.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty.
        /// Fails once every sender has been dropped and the buffer drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut shared = self.inner.shared.lock().unwrap();
            loop {
                if let Some(value) = shared.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self.inner.not_empty.wait(shared).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.inner.shared.lock().unwrap();
            match shared.queue.pop_front() {
                Some(value) => {
                    self.inner.not_full.notify_one();
                    Ok(value)
                }
                None if shared.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drains remaining messages without blocking (iterator form).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.shared.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.shared.lock().unwrap();
            shared.receivers -= 1;
            if shared.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sender = thread::spawn(move || {
            for i in 1..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_clone_both_ends() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut all = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
