//! Offline stand-in for `serde`.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros (see the
//! sibling `serde_derive` shim) plus empty marker traits of the same names,
//! so both `#[derive(Serialize)]` and `T: Serialize` bounds compile. Nothing
//! in this workspace serializes through serde at runtime; swap the path
//! dependency for the real crate when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// does not implement it — use the real crate for actual serialization).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait DeserializeMarker<'de> {}
