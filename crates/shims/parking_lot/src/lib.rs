//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives and strips lock poisoning so the API matches
//! `parking_lot`'s infallible `lock()` / `read()` / `write()`. Performance is
//! whatever `std` provides — fine for this workspace. Swap the path
//! dependency for the real crate when a registry is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
