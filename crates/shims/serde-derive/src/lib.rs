//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain-old-data types; nothing actually serializes through serde at
//! runtime. With no registry access, these derives expand to empty token
//! streams so the annotations compile. Swap the `serde` path dependency for
//! the real crate to restore real impls; no call sites change.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
