//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! implements the small slice of the `rand` 0.8 API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::shuffle` and the free `random::<T>()` function. The
//! generator is splitmix64 — statistically fine for tests and benchmarks,
//! not cryptographic. Swap the path dependency for the real crate when a
//! registry is available.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core random number source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable RNGs.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard (here: splitmix64) RNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Values samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience methods on any RNG.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Shuffling support for slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

static GLOBAL_STATE: AtomicU64 = AtomicU64::new(0x853c_49e6_748f_ea9b);

/// A process-global RNG handle (deterministic per process, unlike real
/// `thread_rng`, which seeds from the OS).
#[derive(Debug, Default, Clone)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        let mut s = GLOBAL_STATE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        splitmix64(&mut s)
    }
}

/// Returns the process-global RNG handle.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// Draws one value from the standard distribution using the global RNG.
pub fn random<T: Standard>() -> T {
    T::sample_standard(&mut ThreadRng)
}

/// The usual `rand::prelude` re-exports.
pub mod prelude {
    pub use crate::{
        random, thread_rng, Rng, RngCore, SeedableRng, SliceRandom, StdRng, ThreadRng,
    };
}

/// `rand::rngs` module shape for `rand::rngs::StdRng` paths.
pub mod rngs {
    pub use crate::{StdRng, ThreadRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let b: u8 = rng.gen_range(1..=255u8);
            assert!(b >= 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
