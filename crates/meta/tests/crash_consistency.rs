//! Crash-consistency torture tests for the durable metadata plane.
//!
//! Each case drives a randomized operation script against a durable
//! [`MetaRouter`], closes it, then mutilates one shard's WAL — truncating it
//! at an arbitrary byte offset, or flipping a bit in its tail — and reopens.
//! The recovered namespace must be a *prefix* of the committed history:
//!
//! * reopening never fails and never panics — a torn or corrupt tail is
//!   detected by the CRC framing and dropped whole;
//! * no record is ever partially applied: every recovered stripe equals one
//!   of the exact versions that stripe passed through, every recovered
//!   object is exactly what was registered, every recovered pending repair
//!   was journaled with exactly those fields;
//! * recovery truncates the torn tail, so a second reopen is byte-exact and
//!   reports nothing dropped;
//! * with no mutilation at all, reopen is byte-exact, snapshots included.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ecc::stripe::StripeId;
use ecpipe_meta::{
    shard_dir, MetaBackend, MetaConfig, MetaRouter, ObjectRecord, RelocateOutcome, RepairRecord,
    StripeRecord,
};
use proptest::prelude::*;

const NODES: usize = 8;
const N: usize = 4;
const SHARDS: usize = 4;

fn fresh_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ecpipe-meta-torture-{tag}-{case}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(root: &Path) -> MetaConfig {
    // A small snapshot cadence makes many cases exercise the
    // snapshot + WAL-suffix recovery path, not just pure WAL replay.
    MetaConfig::new(MetaBackend::durable(root))
        .with_shards(SHARDS)
        .with_snapshot_every(8)
}

/// Every state the committed history passed through, per key. "Recovery is a
/// prefix" means every recovered record must appear verbatim in here.
#[derive(Default)]
struct History {
    /// Objects are registered at most once per name, so one version each.
    objects: HashMap<String, ObjectRecord>,
    /// Every placement version each stripe passed through, in order.
    stripes: HashMap<u64, Vec<StripeRecord>>,
    /// Every repair directive ever journaled.
    journaled: Vec<RepairRecord>,
}

/// Applies a scripted operation decoded from one random word. Registrations
/// and accepted relocations append the resulting version to the history.
fn apply_op(meta: &MetaRouter, history: &mut History, word: u64, stripes: &mut Vec<StripeId>) {
    let pick = |seed: u64, len: usize| (seed as usize) % len.max(1);
    match word % 8 {
        // Register a stripe (and an object naming it).
        0 | 1 => {
            let id = meta.allocate_stripe_id();
            let locations: Vec<usize> = (0..N).map(|i| (i + word as usize) % NODES).collect();
            let epoch = meta.register_stripe(id, locations.clone()).unwrap();
            history.stripes.entry(id.0).or_default().push(StripeRecord {
                id,
                locations,
                epoch,
            });
            stripes.push(id);
            let name = format!("/torture/{}", id.0);
            let record = ObjectRecord {
                name: name.clone(),
                size: (word % 100_000) as usize,
                stripes: vec![id],
            };
            meta.register_object(record.clone()).unwrap();
            history.objects.insert(name, record);
        }
        // Relocate a block of an existing stripe.
        2..=4 => {
            if stripes.is_empty() {
                return;
            }
            let id = stripes[pick(word >> 8, stripes.len())];
            let index = pick(word >> 24, N);
            let node = pick(word >> 32, NODES);
            match meta.relocate(id, index, node, None).unwrap() {
                RelocateOutcome::Moved { .. } => {
                    let versions = history.stripes.get_mut(&id.0).unwrap();
                    let mut next = versions.last().unwrap().clone();
                    next.locations[index] = node;
                    next.epoch += 1;
                    versions.push(next);
                }
                RelocateOutcome::Refused => {}
            }
        }
        // Journal a repair directive at the stripe's current epoch.
        5 | 6 => {
            if stripes.is_empty() {
                return;
            }
            let id = stripes[pick(word >> 8, stripes.len())];
            let record = RepairRecord {
                stripe: id,
                index: pick(word >> 24, N),
                requestor: pick(word >> 32, NODES),
                priority: (word >> 40) as u8 % 3,
                epoch: meta.epoch_of(id).unwrap(),
            };
            meta.record_repair(record.clone()).unwrap();
            history.journaled.push(record);
        }
        // Resolve a (possibly absent) repair directive.
        _ => {
            if stripes.is_empty() {
                return;
            }
            let id = stripes[pick(word >> 8, stripes.len())];
            meta.resolve_repair(id, pick(word >> 24, N)).unwrap();
        }
    }
}

#[derive(Debug, PartialEq)]
struct Namespace {
    objects: Vec<ObjectRecord>,
    stripes: Vec<StripeRecord>,
    pending: Vec<RepairRecord>,
}

fn namespace(meta: &MetaRouter) -> Namespace {
    let mut objects = Vec::new();
    meta.for_each_object(|o| objects.push(o.clone()));
    objects.sort_by(|a, b| a.name.cmp(&b.name));
    let mut stripes = Vec::new();
    meta.for_each_stripe(|s| stripes.push(s.clone()));
    stripes.sort_by_key(|s| s.id);
    Namespace {
        objects,
        stripes,
        pending: meta.pending_repairs(),
    }
}

/// The prefix property: everything the recovered router serves must be an
/// exact version from the committed history — nothing invented, nothing
/// half-applied.
fn assert_prefix_of_history(recovered: &Namespace, history: &History) {
    for object in &recovered.objects {
        assert_eq!(
            Some(object),
            history.objects.get(&object.name),
            "recovered object must be exactly what was registered"
        );
    }
    for stripe in &recovered.stripes {
        let versions = history
            .stripes
            .get(&stripe.id.0)
            .expect("recovered stripe was never registered");
        assert!(
            versions.contains(stripe),
            "recovered stripe {:?} matches no committed version of {:?}",
            stripe,
            stripe.id
        );
    }
    for pending in &recovered.pending {
        assert!(
            history.journaled.contains(pending),
            "recovered pending repair {pending:?} was never journaled"
        );
    }
}

/// Runs `ops` against a fresh durable router, closes it, and returns the
/// final committed namespace plus the history of every version.
fn run_script(root: &Path, ops: &[u64]) -> (Namespace, History) {
    let meta = MetaRouter::open(config(root)).unwrap();
    let mut history = History::default();
    let mut stripes = Vec::new();
    for &word in ops {
        apply_op(&meta, &mut history, word, &mut stripes);
    }
    let full = namespace(&meta);
    (full, history)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncated_wal_recovers_a_prefix_never_a_partial_record(
        ops in proptest::collection::vec(any::<u64>(), 24..64),
        shard_pick in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let root = fresh_dir("trunc", ops.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ shard_pick);
        let (full, history) = run_script(&root, &ops);

        // Truncate one shard's WAL at an arbitrary byte offset — including
        // mid-frame, mid-header and zero.
        let wal = shard_dir(&root, (shard_pick as usize) % SHARDS).join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = cut_pick % (len + 1);
        OpenOptions::new().write(true).open(&wal).unwrap().set_len(cut).unwrap();

        let reopened = MetaRouter::open(config(&root)).unwrap();
        let recovered = namespace(&reopened);
        assert_prefix_of_history(&recovered, &history);
        if cut == len {
            prop_assert_eq!(&recovered, &full, "a full-length cut loses nothing");
        }
        let dropped = reopened.dropped_tail_records();
        drop(reopened);

        // Recovery truncated the torn tail off the file, so a second reopen
        // is byte-exact and clean.
        let again = MetaRouter::open(config(&root)).unwrap();
        prop_assert_eq!(again.dropped_tail_records(), 0, "first recovery dropped {} and truncated", dropped);
        prop_assert_eq!(namespace(&again), recovered);
        drop(again);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_wal_byte_is_caught_by_crc_and_dropped(
        ops in proptest::collection::vec(any::<u64>(), 24..64),
        shard_pick in any::<u64>(),
        pos_pick in any::<u64>(),
        xor in 1..=255u8,
    ) {
        let root = fresh_dir("flip", ops.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ pos_pick);
        let (_full, history) = run_script(&root, &ops);

        let wal = shard_dir(&root, (shard_pick as usize) % SHARDS).join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        if len > 0 {
            // Flip one byte anywhere in the log. Every frame from the
            // damaged one onward is dropped (decode stops at the first bad
            // CRC) — the surviving prefix must still be pure history.
            let pos = pos_pick % len;
            let mut file = OpenOptions::new().read(true).write(true).open(&wal).unwrap();
            let mut byte = [0u8; 1];
            file.seek(SeekFrom::Start(pos)).unwrap();
            file.read_exact(&mut byte).unwrap();
            byte[0] ^= xor;
            file.seek(SeekFrom::Start(pos)).unwrap();
            file.write_all(&byte).unwrap();
        }

        let reopened = MetaRouter::open(config(&root)).unwrap();
        assert_prefix_of_history(&namespace(&reopened), &history);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn untouched_directory_reopens_byte_exactly(
        ops in proptest::collection::vec(any::<u64>(), 24..64),
    ) {
        let root = fresh_dir("clean", ops.iter().fold(0u64, |a, &b| a.wrapping_add(b)));
        let (full, _history) = run_script(&root, &ops);
        let reopened = MetaRouter::open(config(&root)).unwrap();
        prop_assert_eq!(reopened.dropped_tail_records(), 0);
        prop_assert_eq!(namespace(&reopened), full);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&root);
    }
}
