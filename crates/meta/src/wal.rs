//! WAL record framing: length-prefixed, CRC-checked, torn-tail tolerant.
//!
//! Every durable metadata mutation is one framed record:
//!
//! ```text
//! +----------------+----------------+======================+
//! | payload length | CRC-32(payload)|  payload (tag+fields)|
//! |   u32 LE       |    u32 LE      |  `length` bytes      |
//! +----------------+----------------+======================+
//! ```
//!
//! The same framing discipline the TCP transport uses for wire frames and
//! the integrity sidecars use for checksum files: a reader can always tell
//! a complete record from a torn one. [`decode_log`] walks a byte buffer
//! record by record and stops at the first frame whose length runs past the
//! end of the buffer or whose CRC does not match — the crash-truncated tail
//! of a write-ahead log. The torn tail is *dropped whole*: a record is
//! either applied in full or not at all, never partially.
//!
//! Payloads are a one-byte tag followed by little-endian fields; all
//! integers are fixed width, strings and vectors are length-prefixed. Every
//! record is an idempotent upsert carrying absolute values (e.g. a
//! relocation stores the *new epoch*, not an increment), so replaying a
//! record twice — possible when a crash lands between a snapshot rename and
//! the WAL truncation — converges to the same state.

use ecc::stripe::StripeId;
use simnet::NodeId;

use crate::{ObjectRecord, RepairRecord, StripeRecord};

/// Bytes of framing overhead per record (length prefix + CRC).
pub const FRAME_HEADER: usize = 8;

// CRC-32 (IEEE, reflected 0xEDB88320) over a const table — the same
// polynomial and table construction as `ecpipe`'s integrity sidecars, so
// the two planes share one checksum dialect.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One metadata mutation (or, in a snapshot, one fact of the full state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Upsert a named object.
    PutObject(ObjectRecord),
    /// Remove a named object.
    DeleteObject {
        /// The object's name.
        name: String,
    },
    /// Upsert a stripe with its full placement and absolute epoch.
    PutStripe(StripeRecord),
    /// Drop a stripe's metadata.
    ForgetStripe {
        /// The stripe to forget.
        stripe: StripeId,
    },
    /// Move one block of a stripe; `epoch` is the stripe's *new* epoch.
    Relocate {
        /// The stripe whose block moved.
        stripe: StripeId,
        /// The block index that moved.
        index: usize,
        /// The node now holding the block.
        node: NodeId,
        /// The stripe's epoch after the move (absolute, for idempotent
        /// replay).
        epoch: u64,
    },
    /// Upsert an in-flight repair directive.
    PutRepair(RepairRecord),
    /// Resolve (complete or cancel) an in-flight repair directive.
    ResolveRepair {
        /// The stripe whose repair resolved.
        stripe: StripeId,
        /// The block index whose repair resolved.
        index: usize,
    },
}

const TAG_PUT_OBJECT: u8 = 1;
const TAG_DELETE_OBJECT: u8 = 2;
const TAG_PUT_STRIPE: u8 = 3;
const TAG_FORGET_STRIPE: u8 = 4;
const TAG_RELOCATE: u8 = 5;
const TAG_PUT_REPAIR: u8 = 6;
const TAG_RESOLVE_REPAIR: u8 = 7;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over a payload slice. Every
/// accessor returns `None` past the end, so a malformed payload decodes to
/// `None` rather than panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn node_vec(&mut self) -> Option<Vec<NodeId>> {
        let len = self.u32()? as usize;
        // A length prefix beyond the remaining payload is malformed; the
        // division bounds the pre-allocation against garbage prefixes.
        if len > self.bytes.len().saturating_sub(self.pos) / 8 {
            return None;
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u64()? as NodeId);
        }
        Some(v)
    }

    fn stripe_vec(&mut self) -> Option<Vec<StripeId>> {
        let len = self.u32()? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) / 8 {
            return None;
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(StripeId(self.u64()?));
        }
        Some(v)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl Record {
    /// Encodes the payload (tag + fields, without framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Record::PutObject(o) => {
                buf.push(TAG_PUT_OBJECT);
                put_str(&mut buf, &o.name);
                put_u64(&mut buf, o.size as u64);
                put_u32(&mut buf, o.stripes.len() as u32);
                for s in &o.stripes {
                    put_u64(&mut buf, s.0);
                }
            }
            Record::DeleteObject { name } => {
                buf.push(TAG_DELETE_OBJECT);
                put_str(&mut buf, name);
            }
            Record::PutStripe(s) => {
                buf.push(TAG_PUT_STRIPE);
                put_u64(&mut buf, s.id.0);
                put_u64(&mut buf, s.epoch);
                put_u32(&mut buf, s.locations.len() as u32);
                for &n in &s.locations {
                    put_u64(&mut buf, n as u64);
                }
            }
            Record::ForgetStripe { stripe } => {
                buf.push(TAG_FORGET_STRIPE);
                put_u64(&mut buf, stripe.0);
            }
            Record::Relocate {
                stripe,
                index,
                node,
                epoch,
            } => {
                buf.push(TAG_RELOCATE);
                put_u64(&mut buf, stripe.0);
                put_u32(&mut buf, *index as u32);
                put_u64(&mut buf, *node as u64);
                put_u64(&mut buf, *epoch);
            }
            Record::PutRepair(r) => {
                buf.push(TAG_PUT_REPAIR);
                put_u64(&mut buf, r.stripe.0);
                put_u32(&mut buf, r.index as u32);
                put_u64(&mut buf, r.requestor as u64);
                buf.push(r.priority);
                put_u64(&mut buf, r.epoch);
            }
            Record::ResolveRepair { stripe, index } => {
                buf.push(TAG_RESOLVE_REPAIR);
                put_u64(&mut buf, stripe.0);
                put_u32(&mut buf, *index as u32);
            }
        }
        buf
    }

    /// Decodes a payload. `None` means the payload is malformed — treated
    /// by log replay exactly like a CRC mismatch (the record is dropped
    /// and replay stops).
    pub fn decode_payload(payload: &[u8]) -> Option<Record> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_PUT_OBJECT => {
                let name = r.string()?;
                let size = r.u64()? as usize;
                let stripes = r.stripe_vec()?;
                Record::PutObject(ObjectRecord {
                    name,
                    size,
                    stripes,
                })
            }
            TAG_DELETE_OBJECT => Record::DeleteObject { name: r.string()? },
            TAG_PUT_STRIPE => {
                let id = StripeId(r.u64()?);
                let epoch = r.u64()?;
                let locations = r.node_vec()?;
                Record::PutStripe(StripeRecord {
                    id,
                    locations,
                    epoch,
                })
            }
            TAG_FORGET_STRIPE => Record::ForgetStripe {
                stripe: StripeId(r.u64()?),
            },
            TAG_RELOCATE => Record::Relocate {
                stripe: StripeId(r.u64()?),
                index: r.u32()? as usize,
                node: r.u64()? as NodeId,
                epoch: r.u64()?,
            },
            TAG_PUT_REPAIR => Record::PutRepair(RepairRecord {
                stripe: StripeId(r.u64()?),
                index: r.u32()? as usize,
                requestor: r.u64()? as NodeId,
                priority: r.u8()?,
                epoch: r.u64()?,
            }),
            TAG_RESOLVE_REPAIR => Record::ResolveRepair {
                stripe: StripeId(r.u64()?),
                index: r.u32()? as usize,
            },
            _ => return None,
        };
        // Trailing garbage means the frame length lied about the payload.
        r.done().then_some(record)
    }

    /// Encodes the record as one framed WAL entry.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

/// The result of replaying a log buffer.
#[derive(Debug)]
pub struct DecodedLog {
    /// Every fully-framed, CRC-valid record, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix; the file should be truncated here
    /// before appending, so new records never land behind a torn tail.
    pub valid_len: u64,
    /// Whether bytes past the valid prefix were dropped (a torn tail).
    pub dropped_tail: bool,
}

/// Replays a log buffer: decodes records until the first incomplete frame,
/// CRC mismatch or malformed payload, and reports where the valid prefix
/// ends. A crash mid-append can only tear the *tail*, so everything before
/// the first bad frame is trustworthy and everything after it is dropped.
pub fn decode_log(bytes: &[u8]) -> DecodedLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return DecodedLog {
                records,
                valid_len: pos as u64,
                dropped_tail: false,
            };
        }
        if remaining < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if remaining - FRAME_HEADER < len {
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = Record::decode_payload(payload) else {
            break;
        };
        records.push(record);
        pos += FRAME_HEADER + len;
    }
    DecodedLog {
        records,
        valid_len: pos as u64,
        dropped_tail: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::PutObject(ObjectRecord {
                name: "/a/b".to_string(),
                size: 12345,
                stripes: vec![StripeId(1), StripeId(2)],
            }),
            Record::PutStripe(StripeRecord {
                id: StripeId(7),
                locations: vec![0, 1, 2, 3, 4, 5],
                epoch: 3,
            }),
            Record::Relocate {
                stripe: StripeId(7),
                index: 2,
                node: 9,
                epoch: 4,
            },
            Record::PutRepair(RepairRecord {
                stripe: StripeId(7),
                index: 2,
                requestor: 8,
                priority: 1,
                epoch: 4,
            }),
            Record::ResolveRepair {
                stripe: StripeId(7),
                index: 2,
            },
            Record::DeleteObject {
                name: "/a/b".to_string(),
            },
            Record::ForgetStripe {
                stripe: StripeId(7),
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = sample_records();
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode_frame());
        }
        let decoded = decode_log(&log);
        assert_eq!(decoded.records, records);
        assert_eq!(decoded.valid_len, log.len() as u64);
        assert!(!decoded.dropped_tail);
    }

    #[test]
    fn truncation_at_every_offset_yields_a_whole_record_prefix() {
        let records = sample_records();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            log.extend_from_slice(&r.encode_frame());
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let decoded = decode_log(&log[..cut]);
            // The valid prefix ends exactly at the last whole frame.
            let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.records.len(), expected, "cut at {cut}");
            assert_eq!(decoded.records[..], records[..expected]);
            assert_eq!(decoded.valid_len as usize, boundaries[expected]);
            assert_eq!(decoded.dropped_tail, cut != boundaries[expected]);
        }
    }

    #[test]
    fn a_corrupt_tail_byte_drops_the_record() {
        let records = sample_records();
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode_frame());
        }
        let last_frame = records.last().unwrap().encode_frame();
        let flip = log.len() - last_frame.len() + FRAME_HEADER; // first payload byte
        log[flip] ^= 0xFF;
        let decoded = decode_log(&log);
        assert_eq!(decoded.records[..], records[..records.len() - 1]);
        assert!(decoded.dropped_tail);
    }

    #[test]
    fn crc_matches_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
