//! [`MetaRouter`]: the consistent-hash front door of the metadata plane.
//!
//! The router owns the shard set and a vnode ring. Object names and stripe
//! ids hash onto the ring; each operation locks exactly the one shard its
//! key routes to. Durable routers also own a `manifest.bin` recording the
//! shard count and vnode fan-out the directory was created with — reopening
//! uses the manifest's values so keys keep routing to the shard whose WAL
//! logged them, even if the caller's configuration drifted.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ecc::stripe::StripeId;
use simnet::NodeId;

use crate::shard::Shard;
use crate::wal::{crc32, Record};
use crate::{MetaBackend, MetaConfig, MetaError, ObjectRecord, RepairRecord, Result, StripeRecord};

/// Magic + version header of `manifest.bin`.
const MANIFEST_MAGIC: &[u8; 4] = b"ECM\x02";

/// Ring points per shard. More vnodes spread keys more evenly; 32 keeps the
/// ring at a few hundred entries for the default shard count.
const VNODES_PER_SHARD: u32 = 32;

/// The directory holding shard `index` of a durable router rooted at
/// `root`. Exposed so tests and tooling can reach into a specific shard's
/// `wal.log`/`snapshot.bin` (e.g. to torture-truncate it).
pub fn shard_dir(root: &Path, index: usize) -> PathBuf {
    root.join(format!("shard-{index:03}"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of a relocation request that passed its epoch check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocateOutcome {
    /// The block moved (or was re-pinned to the same node); the placement
    /// now carries this epoch.
    Moved {
        /// The stripe's new epoch.
        epoch: u64,
    },
    /// The destination already stores another block of the same stripe;
    /// moving would break the erasure code's one-block-per-node invariant.
    /// Nothing changed and no WAL record was written.
    Refused,
}

/// A sharded, WAL-durable metadata store. See the crate docs for the
/// design; every method locks at most one shard, and never holds one shard
/// while locking another.
pub struct MetaRouter {
    shards: Vec<Shard>,
    /// Sorted `(ring point, shard index)` pairs.
    ring: Vec<(u64, u32)>,
    next_stripe: AtomicU64,
    dropped_tail: AtomicU64,
    backend: MetaBackend,
}

impl MetaRouter {
    /// Opens (creating or recovering) a router per `config`.
    pub fn open(config: MetaConfig) -> Result<MetaRouter> {
        let (shard_count, vnodes, root) = match &config.backend {
            MetaBackend::Ephemeral => (config.shards.max(1), VNODES_PER_SHARD, None),
            MetaBackend::Durable(root) => {
                std::fs::create_dir_all(root)?;
                let manifest = root.join("manifest.bin");
                if manifest.exists() {
                    let (shards, vnodes) = read_manifest(&manifest)?;
                    (shards, vnodes, Some(root.clone()))
                } else {
                    let shards = config.shards.max(1);
                    write_manifest(&manifest, shards, VNODES_PER_SHARD)?;
                    (shards, VNODES_PER_SHARD, Some(root.clone()))
                }
            }
        };

        let mut shards = Vec::with_capacity(shard_count);
        let mut max_stripe = None;
        let mut dropped = 0u64;
        for i in 0..shard_count {
            let dir = root.as_deref().map(|r| shard_dir(r, i));
            let rec = Shard::open(dir.as_deref(), config.snapshot_every)?;
            shards.push(rec.shard);
            max_stripe = max_stripe.max(rec.max_stripe);
            dropped += u64::from(rec.dropped_tail);
        }

        let mut ring = Vec::with_capacity(shard_count * vnodes as usize);
        for (i, _) in shards.iter().enumerate() {
            for v in 0..vnodes {
                let mut key = [0u8; 12];
                key[..8].copy_from_slice(&(i as u64).to_le_bytes());
                key[8..].copy_from_slice(&v.to_le_bytes());
                ring.push((fnv1a(&key), i as u32));
            }
        }
        ring.sort_unstable();

        Ok(MetaRouter {
            shards,
            ring,
            next_stripe: AtomicU64::new(max_stripe.map_or(0, |m| m + 1)),
            dropped_tail: AtomicU64::new(dropped),
            backend: config.backend,
        })
    }

    /// The shard a hashed key routes to: first ring point at or after the
    /// key's hash, wrapping to the first point.
    fn shard_for_hash(&self, h: u64) -> &Shard {
        let idx = self.ring.partition_point(|&(point, _)| point < h);
        let (_, shard) = self.ring[if idx == self.ring.len() { 0 } else { idx }];
        &self.shards[shard as usize]
    }

    fn shard_for_object(&self, name: &str) -> &Shard {
        self.shard_for_hash(fnv1a(name.as_bytes()))
    }

    fn shard_for_stripe(&self, id: StripeId) -> &Shard {
        self.shard_for_hash(fnv1a(&id.0.to_le_bytes()))
    }

    /// The backend this router was opened with.
    pub fn backend(&self) -> &MetaBackend {
        &self.backend
    }

    /// Number of shards (the manifest's count for reopened durable roots).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many torn WAL tail records recovery dropped across all shards.
    pub fn dropped_tail_records(&self) -> u64 {
        self.dropped_tail.load(Ordering::Relaxed)
    }

    /// Forces every shard to snapshot and truncate its WAL.
    pub fn snapshot_now(&self) -> Result<()> {
        for shard in &self.shards {
            shard.snapshot_now()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Registers (or overwrites) an object.
    pub fn register_object(&self, record: ObjectRecord) -> Result<()> {
        self.shard_for_object(&record.name)
            .commit(Record::PutObject(record))
    }

    /// Looks up an object by name.
    pub fn object(&self, name: &str) -> Option<ObjectRecord> {
        self.shard_for_object(name)
            .with(|s| s.object(name).cloned())
    }

    /// Whether an object with this name exists.
    pub fn has_object(&self, name: &str) -> bool {
        self.shard_for_object(name)
            .with(|s| s.object(name).is_some())
    }

    /// Removes an object, returning its record if it existed.
    pub fn remove_object(&self, name: &str) -> Result<Option<ObjectRecord>> {
        let shard = self.shard_for_object(name);
        let existing = shard.with(|s| s.object(name).cloned());
        if existing.is_some() {
            shard.commit(Record::DeleteObject {
                name: name.to_string(),
            })?;
        }
        Ok(existing)
    }

    /// Visits every object, shard by shard. Each shard's lock is released
    /// before the next is taken; `f` must not call back into this router.
    pub fn for_each_object(&self, mut f: impl FnMut(&ObjectRecord)) {
        for shard in &self.shards {
            shard.with(|s| {
                for o in s.objects() {
                    f(o);
                }
            });
        }
    }

    /// Total number of objects.
    pub fn object_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with(|st| st.object_count()))
            .sum()
    }

    // ------------------------------------------------------------------
    // Stripes
    // ------------------------------------------------------------------

    /// Allocates a fresh stripe id (monotonic across the router's life,
    /// resuming past the highest recovered id on reopen).
    pub fn allocate_stripe_id(&self) -> StripeId {
        StripeId(self.next_stripe.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers a stripe's placement and returns its epoch: 0 for a new
    /// stripe, previous + 1 when re-registering (a placement rewrite is a
    /// placement change, so it versions like one).
    pub fn register_stripe(&self, id: StripeId, locations: Vec<NodeId>) -> Result<u64> {
        // Keep the allocator ahead of externally-chosen ids.
        self.next_stripe.fetch_max(id.0 + 1, Ordering::Relaxed);
        let shard = self.shard_for_stripe(id);
        let epoch = shard.with(|s| s.stripe(id).map_or(0, |r| r.epoch + 1));
        shard.commit(Record::PutStripe(StripeRecord {
            id,
            locations,
            epoch,
        }))?;
        Ok(epoch)
    }

    /// Looks up a stripe.
    pub fn stripe(&self, id: StripeId) -> Option<StripeRecord> {
        self.shard_for_stripe(id).with(|s| s.stripe(id).cloned())
    }

    /// The current placement epoch of a stripe.
    pub fn epoch_of(&self, id: StripeId) -> Result<u64> {
        self.shard_for_stripe(id)
            .with(|s| s.stripe(id).map(|r| r.epoch))
            .ok_or(MetaError::UnknownStripe { stripe: id.0 })
    }

    /// Forgets a stripe. Returns whether it existed.
    pub fn forget_stripe(&self, id: StripeId) -> Result<bool> {
        let shard = self.shard_for_stripe(id);
        let existed = shard.with(|s| s.stripe(id).is_some());
        if existed {
            shard.commit(Record::ForgetStripe { stripe: id })?;
        }
        Ok(existed)
    }

    /// Visits every stripe, shard by shard (same locking contract as
    /// [`MetaRouter::for_each_object`]).
    pub fn for_each_stripe(&self, mut f: impl FnMut(&StripeRecord)) {
        for shard in &self.shards {
            shard.with(|s| {
                for r in s.stripes() {
                    f(r);
                }
            });
        }
    }

    /// Total number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with(|st| st.stripe_count()))
            .sum()
    }

    /// Every `(stripe, block index)` placed on `node`, sorted by stripe id.
    /// Scans all shards; the allocation is bounded by the number of
    /// matches, not the namespace size.
    pub fn stripes_on_node(&self, node: NodeId) -> Vec<(StripeId, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.with(|s| s.stripes_on_node(node, &mut out));
        }
        out.sort_unstable_by_key(|&(id, _)| id.0);
        out
    }

    /// Moves block `index` of `stripe` to `node`, bumping the epoch.
    ///
    /// When `expected_epoch` is `Some(e)`, the move only happens if the
    /// stripe is still at epoch `e` — the optimistic-concurrency check that
    /// rejects a repair completion for a block that already relocated
    /// ([`MetaError::StaleEpoch`]). Moving onto a node that already stores
    /// a *different* block of the stripe is refused without an epoch bump
    /// ([`RelocateOutcome::Refused`]); re-pinning to the same node is a
    /// legitimate move (the repair rewrote the block in place) and bumps
    /// the epoch like any other.
    pub fn relocate(
        &self,
        stripe: StripeId,
        index: usize,
        node: NodeId,
        expected_epoch: Option<u64>,
    ) -> Result<RelocateOutcome> {
        let shard = self.shard_for_stripe(stripe);
        // Decide under the shard lock, write the WAL record after: the
        // coordinator lock above us serializes metadata writers, so the
        // decision cannot go stale between the two steps.
        let decision = shard.with(|s| {
            let Some(rec) = s.stripe(stripe) else {
                return Err(MetaError::UnknownStripe { stripe: stripe.0 });
            };
            if index >= rec.locations.len() {
                return Err(MetaError::InvalidRequest {
                    reason: format!(
                        "block index {index} out of range for stripe {} ({} blocks)",
                        stripe.0,
                        rec.locations.len()
                    ),
                });
            }
            if let Some(expected) = expected_epoch {
                if rec.epoch != expected {
                    return Err(MetaError::StaleEpoch {
                        stripe: stripe.0,
                        index,
                        expected,
                        actual: rec.epoch,
                    });
                }
            }
            let colocated = rec
                .locations
                .iter()
                .enumerate()
                .any(|(i, &n)| i != index && n == node);
            if colocated {
                return Ok(None);
            }
            Ok(Some(rec.epoch + 1))
        })?;
        match decision {
            None => Ok(RelocateOutcome::Refused),
            Some(epoch) => {
                shard.commit(Record::Relocate {
                    stripe,
                    index,
                    node,
                    epoch,
                })?;
                Ok(RelocateOutcome::Moved { epoch })
            }
        }
    }

    // ------------------------------------------------------------------
    // Pending repairs
    // ------------------------------------------------------------------

    /// Journals an in-flight repair directive. Returns `false` (writing
    /// nothing) when an identical record is already pending — recovery
    /// re-enqueues pending repairs, and re-journaling them must not grow
    /// the WAL.
    pub fn record_repair(&self, record: RepairRecord) -> Result<bool> {
        let shard = self.shard_for_stripe(record.stripe);
        let duplicate =
            shard.with(|s| s.pending_repair(record.stripe, record.index) == Some(&record));
        if duplicate {
            return Ok(false);
        }
        shard.commit(Record::PutRepair(record))?;
        Ok(true)
    }

    /// Marks a pending repair resolved (completed, failed terminally, or
    /// rejected as stale). Returns whether a record was pending.
    pub fn resolve_repair(&self, stripe: StripeId, index: usize) -> Result<bool> {
        let shard = self.shard_for_stripe(stripe);
        let pending = shard.with(|s| s.pending_repair(stripe, index).is_some());
        if !pending {
            return Ok(false);
        }
        shard.commit(Record::ResolveRepair { stripe, index })?;
        Ok(true)
    }

    /// Every pending repair directive, sorted by `(stripe, block index)`.
    pub fn pending_repairs(&self) -> Vec<RepairRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.with(|s| out.extend(s.pending_repairs().cloned()));
        }
        out.sort_unstable_by_key(|r| (r.stripe.0, r.index));
        out
    }
}

fn write_manifest(path: &Path, shards: usize, vnodes: u32) -> Result<()> {
    let mut body = Vec::with_capacity(12);
    body.extend_from_slice(&(shards as u64).to_le_bytes());
    body.extend_from_slice(&vnodes.to_le_bytes());
    let mut bytes = Vec::with_capacity(4 + body.len() + 4);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    std::fs::write(path, bytes)?;
    Ok(())
}

fn read_manifest(path: &Path) -> Result<(usize, u32)> {
    let bytes = std::fs::read(path)?;
    let corrupt = |reason: &str| MetaError::Corrupt {
        path: path.to_path_buf(),
        reason: reason.to_string(),
    };
    if bytes.len() != 20 || &bytes[..4] != MANIFEST_MAGIC {
        return Err(corrupt("bad manifest magic or length"));
    }
    let body = &bytes[4..16];
    let stored = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if crc32(body) != stored {
        return Err(corrupt("manifest CRC mismatch"));
    }
    let shards = u64::from_le_bytes(body[..8].try_into().unwrap());
    let vnodes = u32::from_le_bytes(body[8..12].try_into().unwrap());
    if shards == 0 || shards > 4096 || vnodes == 0 {
        return Err(corrupt("manifest shard/vnode count out of range"));
    }
    Ok((shards as usize, vnodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ecpipe-meta-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn nodes(ids: &[u64]) -> Vec<NodeId> {
        ids.iter().map(|&i| i as usize).collect()
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let router = MetaRouter::open(MetaConfig::ephemeral().with_shards(8)).unwrap();
        for i in 0..64u64 {
            router
                .register_stripe(StripeId(i), nodes(&[1, 2, 3]))
                .unwrap();
        }
        assert_eq!(router.stripe_count(), 64);
        // Every key resolves, and repeated lookups agree.
        for i in 0..64u64 {
            assert_eq!(router.stripe(StripeId(i)).unwrap().id, StripeId(i));
        }
        // With 8 shards and 64 keys the ring should use more than one shard.
        let per_shard: Vec<usize> = router
            .shards
            .iter()
            .map(|s| s.with(|st| st.stripe_count()))
            .collect();
        assert!(per_shard.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn epochs_bump_and_stale_checks_fire() {
        let router = MetaRouter::open(MetaConfig::ephemeral()).unwrap();
        let id = StripeId(7);
        assert_eq!(router.register_stripe(id, nodes(&[0, 1, 2])).unwrap(), 0);
        let moved = router.relocate(id, 0, 9, Some(0)).unwrap();
        assert_eq!(moved, RelocateOutcome::Moved { epoch: 1 });
        assert_eq!(router.epoch_of(id).unwrap(), 1);
        // A second mover still planning against epoch 0 is stale.
        match router.relocate(id, 0, 4, Some(0)) {
            Err(MetaError::StaleEpoch {
                expected: 0,
                actual: 1,
                ..
            }) => {}
            other => panic!("expected StaleEpoch, got {other:?}"),
        }
        // Co-location is refused without an epoch bump.
        assert_eq!(
            router.relocate(id, 0, 2, None).unwrap(),
            RelocateOutcome::Refused
        );
        assert_eq!(router.epoch_of(id).unwrap(), 1);
        // Re-registration is a placement rewrite: epoch keeps rising.
        assert_eq!(router.register_stripe(id, nodes(&[5, 6, 7])).unwrap(), 2);
    }

    #[test]
    fn durable_reopen_recovers_everything_byte_exactly() {
        let root = temp_root("reopen");
        let config = MetaConfig::new(MetaBackend::durable(&root)).with_shards(4);
        let mut expected_stripes = Vec::new();
        {
            let router = MetaRouter::open(config.clone()).unwrap();
            for i in 0..40u64 {
                router
                    .register_stripe(StripeId(i), nodes(&[i, i + 1, i + 2]))
                    .unwrap();
            }
            router.relocate(StripeId(3), 1, 99, None).unwrap();
            router
                .register_object(ObjectRecord {
                    name: "alpha".into(),
                    size: 12345,
                    stripes: vec![StripeId(0), StripeId(1)],
                })
                .unwrap();
            router
                .record_repair(RepairRecord {
                    stripe: StripeId(3),
                    index: 1,
                    requestor: 99,
                    priority: 2,
                    epoch: 1,
                })
                .unwrap();
            router.for_each_stripe(|s| expected_stripes.push(s.clone()));
            expected_stripes.sort_by_key(|s| s.id.0);
        }
        // Reopen with a *different* shard count: the manifest must win.
        let reopened =
            MetaRouter::open(MetaConfig::new(MetaBackend::durable(&root)).with_shards(16)).unwrap();
        assert_eq!(reopened.shard_count(), 4);
        let mut actual = Vec::new();
        reopened.for_each_stripe(|s| actual.push(s.clone()));
        actual.sort_by_key(|s| s.id.0);
        assert_eq!(actual, expected_stripes);
        assert_eq!(reopened.object("alpha").unwrap().size, 12345);
        assert_eq!(reopened.epoch_of(StripeId(3)).unwrap(), 1);
        let pending = reopened.pending_repairs();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].epoch, 1);
        // Fresh ids resume past everything recovered.
        assert!(reopened.allocate_stripe_id().0 >= 40);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn record_repair_dedupes_identical_records() {
        let root = temp_root("dedupe");
        let router = MetaRouter::open(MetaConfig::new(MetaBackend::durable(&root))).unwrap();
        router
            .register_stripe(StripeId(1), nodes(&[0, 1, 2]))
            .unwrap();
        let rec = RepairRecord {
            stripe: StripeId(1),
            index: 2,
            requestor: 5,
            priority: 0,
            epoch: 0,
        };
        assert!(router.record_repair(rec.clone()).unwrap());
        assert!(!router.record_repair(rec.clone()).unwrap());
        // A *different* record for the same block replaces the pending one.
        let rec2 = RepairRecord { priority: 1, ..rec };
        assert!(router.record_repair(rec2.clone()).unwrap());
        assert_eq!(router.pending_repairs(), vec![rec2]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshots_truncate_the_wal_and_survive_reopen() {
        let root = temp_root("snap");
        let config = MetaConfig::new(MetaBackend::durable(&root))
            .with_shards(2)
            .with_snapshot_every(8);
        {
            let router = MetaRouter::open(config.clone()).unwrap();
            for i in 0..100u64 {
                router
                    .register_stripe(StripeId(i), nodes(&[i, i + 1, i + 2]))
                    .unwrap();
            }
            router.snapshot_now().unwrap();
            for i in 0..2 {
                let wal = shard_dir(&root, i).join("wal.log");
                assert_eq!(std::fs::metadata(wal).unwrap().len(), 0);
            }
        }
        let reopened = MetaRouter::open(config).unwrap();
        assert_eq!(reopened.stripe_count(), 100);
        assert_eq!(reopened.dropped_tail_records(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
