//! Lock classes of the metadata plane.
//!
//! These slot into the workspace-wide hierarchy maintained in
//! `crates/core/src/lock_order.rs` (and mirrored in docs/ARCHITECTURE.md):
//! ranks are globally unique — `cargo run -p xtask -- lint` rejects
//! collisions across crates — and this crate's locks sit between the
//! coordinator lock (rank 10), under which planning closures consult the
//! shards, and everything the repair engine takes afterwards.

use ecpipe_sync::lock_class;

lock_class!(
    /// One metadata shard: its object/stripe maps, pending repair
    /// directives and WAL appender. All shards share this class, so a
    /// thread may hold at most one shard at a time — cross-shard iteration
    /// visits shards sequentially, releasing each before locking the next.
    /// Taken under the coordinator lock (rank 10) by planning and publish
    /// paths; never held while acquiring anything else.
    pub META_SHARD = ("meta.shard", rank = 12)
);
