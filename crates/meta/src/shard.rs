//! One metadata shard: its in-memory maps, WAL appender and snapshots.
//!
//! A shard is the unit of locking and of durability. Mutations go through
//! [`Shard::commit`]: the record is appended to the WAL *first* (WAL-then-
//! apply — an append failure leaves memory untouched), then applied to the
//! maps; after [`snapshot_every`](crate::MetaConfig::snapshot_every)
//! appends the shard serializes its full state to `snapshot.tmp`, renames
//! it over `snapshot.bin` (atomic on POSIX) and truncates the WAL. Reopen
//! loads the snapshot, replays the WAL's valid prefix on top, and truncates
//! any torn tail off the file before appending again.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ecc::stripe::StripeId;
use ecpipe_sync::Mutex;
use simnet::NodeId;

use crate::lock_order;
use crate::wal::{decode_log, Record};
use crate::{MetaError, ObjectRecord, RepairRecord, Result, StripeRecord};

/// Magic + version header of a snapshot file.
const SNAPSHOT_MAGIC: &[u8; 4] = b"ECM\x01";

/// The WAL appender of a durable shard.
struct ShardWal {
    dir: PathBuf,
    file: File,
    appended_since_snapshot: usize,
    snapshot_every: usize,
}

/// Everything a shard owns, behind its lock.
pub(crate) struct ShardState {
    objects: HashMap<String, ObjectRecord>,
    stripes: HashMap<u64, StripeRecord>,
    pending: HashMap<(u64, usize), RepairRecord>,
    /// `None` for ephemeral backends.
    wal: Option<ShardWal>,
}

/// One shard: state behind the `meta.shard` lock class.
pub(crate) struct Shard {
    /// Lock class: `meta.shard` ([`lock_order::META_SHARD`]). One class for
    /// all shards; never held while acquiring another lock.
    state: Mutex<ShardState>,
}

/// What [`Shard::open`] recovered, for the router's counters.
pub(crate) struct Recovered {
    pub(crate) shard: Shard,
    /// Highest stripe id seen (for the id allocator), if any.
    pub(crate) max_stripe: Option<u64>,
    /// Whether a torn WAL tail was dropped during replay.
    pub(crate) dropped_tail: bool,
}

impl Shard {
    /// Opens a shard: ephemeral when `dir` is `None`, otherwise durable
    /// under `dir` (created if missing), recovering snapshot + WAL.
    pub(crate) fn open(dir: Option<&Path>, snapshot_every: usize) -> Result<Recovered> {
        let mut state = ShardState {
            objects: HashMap::new(),
            stripes: HashMap::new(),
            pending: HashMap::new(),
            wal: None,
        };
        let mut dropped_tail = false;
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
            let snapshot_path = dir.join("snapshot.bin");
            if snapshot_path.exists() {
                let bytes = std::fs::read(&snapshot_path)?;
                if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..4] != SNAPSHOT_MAGIC {
                    return Err(MetaError::Corrupt {
                        path: snapshot_path,
                        reason: "bad snapshot magic".to_string(),
                    });
                }
                // Snapshots are written to a temp file and renamed into
                // place, so a decodable prefix is the whole snapshot.
                for record in decode_log(&bytes[4..]).records {
                    state.apply(&record);
                }
            }
            let wal_path = dir.join("wal.log");
            let mut valid_len = 0u64;
            if wal_path.exists() {
                let bytes = std::fs::read(&wal_path)?;
                let decoded = decode_log(&bytes);
                for record in &decoded.records {
                    state.apply(record);
                }
                valid_len = decoded.valid_len;
                dropped_tail = decoded.dropped_tail;
            }
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(false)
                .open(&wal_path)?;
            // Drop the torn tail (if any) so appended records never sit
            // behind undecodable bytes.
            file.set_len(valid_len)?;
            file.seek(SeekFrom::Start(valid_len))?;
            state.wal = Some(ShardWal {
                dir: dir.to_path_buf(),
                file,
                appended_since_snapshot: 0,
                snapshot_every: snapshot_every.max(1),
            });
        }
        let max_stripe = state.stripes.keys().copied().max();
        Ok(Recovered {
            shard: Shard {
                state: Mutex::new(&lock_order::META_SHARD, state),
            },
            max_stripe,
            dropped_tail,
        })
    }

    /// Appends `record` to the WAL (durable shards), applies it, and
    /// snapshots when the cadence says so.
    pub(crate) fn commit(&self, record: Record) -> Result<()> {
        let mut state = self.state.lock();
        state.append(&record)?;
        state.apply(&record);
        state.maybe_snapshot()
    }

    /// Runs `f` over the shard's state under its lock.
    pub(crate) fn with<R>(&self, f: impl FnOnce(&ShardState) -> R) -> R {
        f(&self.state.lock())
    }

    /// Forces a snapshot + WAL truncation now (durable shards; a no-op on
    /// ephemeral ones).
    pub(crate) fn snapshot_now(&self) -> Result<()> {
        self.state.lock().snapshot()
    }
}

impl ShardState {
    fn append(&mut self, record: &Record) -> Result<()> {
        if let Some(wal) = &mut self.wal {
            wal.file.write_all(&record.encode_frame())?;
            wal.appended_since_snapshot += 1;
        }
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> Result<()> {
        let due = self
            .wal
            .as_ref()
            .is_some_and(|w| w.appended_since_snapshot >= w.snapshot_every);
        if due {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Applies one record to the in-memory maps. Records carry absolute
    /// values, so applying is idempotent.
    fn apply(&mut self, record: &Record) {
        match record {
            Record::PutObject(o) => {
                self.objects.insert(o.name.clone(), o.clone());
            }
            Record::DeleteObject { name } => {
                self.objects.remove(name);
            }
            Record::PutStripe(s) => {
                self.stripes.insert(s.id.0, s.clone());
            }
            Record::ForgetStripe { stripe } => {
                self.stripes.remove(&stripe.0);
            }
            Record::Relocate {
                stripe,
                index,
                node,
                epoch,
            } => {
                if let Some(s) = self.stripes.get_mut(&stripe.0) {
                    if *index < s.locations.len() {
                        s.locations[*index] = *node;
                    }
                    s.epoch = *epoch;
                }
            }
            Record::PutRepair(r) => {
                self.pending.insert((r.stripe.0, r.index), r.clone());
            }
            Record::ResolveRepair { stripe, index } => {
                self.pending.remove(&(stripe.0, *index));
            }
        }
    }

    /// Serializes the full state to `snapshot.tmp`, renames it into place
    /// and truncates the WAL.
    fn snapshot(&mut self) -> Result<()> {
        let Some(wal) = &mut self.wal else {
            return Ok(());
        };
        let mut buf = Vec::with_capacity(4 + 64 * (self.objects.len() + self.stripes.len()));
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        // Deterministic order keeps snapshots byte-comparable across runs
        // of the same state (handy for tests; replay does not need it).
        let mut names: Vec<&String> = self.objects.keys().collect();
        names.sort();
        for name in names {
            buf.extend_from_slice(&Record::PutObject(self.objects[name].clone()).encode_frame());
        }
        let mut ids: Vec<u64> = self.stripes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            buf.extend_from_slice(&Record::PutStripe(self.stripes[&id].clone()).encode_frame());
        }
        let mut keys: Vec<(u64, usize)> = self.pending.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            buf.extend_from_slice(&Record::PutRepair(self.pending[&key].clone()).encode_frame());
        }
        let tmp = wal.dir.join("snapshot.tmp");
        let final_path = wal.dir.join("snapshot.bin");
        let mut tmp_file = File::create(&tmp)?;
        tmp_file.write_all(&buf)?;
        tmp_file.sync_all()?;
        drop(tmp_file);
        std::fs::rename(&tmp, &final_path)?;
        // A crash here replays the old WAL over the new snapshot: safe,
        // because records are idempotent upserts.
        wal.file.set_len(0)?;
        wal.file.seek(SeekFrom::Start(0))?;
        wal.appended_since_snapshot = 0;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read accessors (used by the router under the shard lock).
    // ------------------------------------------------------------------

    pub(crate) fn object(&self, name: &str) -> Option<&ObjectRecord> {
        self.objects.get(name)
    }

    pub(crate) fn objects(&self) -> impl Iterator<Item = &ObjectRecord> {
        self.objects.values()
    }

    pub(crate) fn object_count(&self) -> usize {
        self.objects.len()
    }

    pub(crate) fn stripe(&self, id: StripeId) -> Option<&StripeRecord> {
        self.stripes.get(&id.0)
    }

    pub(crate) fn stripes(&self) -> impl Iterator<Item = &StripeRecord> {
        self.stripes.values()
    }

    pub(crate) fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    pub(crate) fn stripes_on_node(&self, node: NodeId, out: &mut Vec<(StripeId, usize)>) {
        for s in self.stripes.values() {
            if let Some(idx) = s.locations.iter().position(|&n| n == node) {
                out.push((s.id, idx));
            }
        }
    }

    pub(crate) fn pending_repair(&self, stripe: StripeId, index: usize) -> Option<&RepairRecord> {
        self.pending.get(&(stripe.0, index))
    }

    pub(crate) fn pending_repairs(&self) -> impl Iterator<Item = &RepairRecord> {
        self.pending.values()
    }
}
