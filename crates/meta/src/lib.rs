//! The ECPipe metadata plane: a sharded, WAL-durable object/stripe
//! namespace with epoch-versioned placements.
//!
//! The runtime's `Coordinator` used to keep every object→stripe→placement
//! fact in one in-memory map: a serialization bottleneck at scale and a
//! single point of total metadata loss on restart. This crate is the
//! subsystem underneath it:
//!
//! * [`MetaRouter`] — a thin router over `shards` independent shards. Keys
//!   (object names, stripe ids) are placed on a consistent-hash ring, so
//!   every operation locks exactly one shard and per-op latency stays flat
//!   as the namespace grows (the `meta_ops` bench registers a million
//!   objects to pin this).
//! * Each shard owns a **write-ahead log** plus a periodic **snapshot**
//!   (length-prefixed, CRC-framed records — the same framing idiom the TCP
//!   transport and the integrity sidecars use), so a killed process
//!   recovers every object, placement and in-flight repair directive
//!   byte-exactly on reopen. A torn tail record is detected by its CRC and
//!   dropped whole — never partially applied.
//! * Every stripe placement carries a **monotonic epoch**: relocating a
//!   block (which is how a repair completion publishes its result) bumps
//!   it, and a caller may pass the epoch it planned against to have a stale
//!   relocation rejected with [`MetaError::StaleEpoch`] instead of silently
//!   double-healing a block that already moved.
//!
//! Durability is opt-in per deployment: [`MetaBackend::Ephemeral`] keeps
//! everything in memory (the historical behavior), while
//! [`MetaBackend::Durable`] writes the WAL/snapshot files under a root
//! directory.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use ecc::stripe::StripeId;
use simnet::NodeId;

pub mod lock_order;
mod router;
mod shard;
pub mod wal;

pub use router::{shard_dir, MetaRouter, RelocateOutcome};

/// Result alias for metadata operations.
pub type Result<T> = std::result::Result<T, MetaError>;

/// Where the metadata plane keeps its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaBackend {
    /// In-memory only: nothing survives the handle. The historical
    /// coordinator behavior, and the right choice for tests and benches.
    Ephemeral,
    /// WAL + snapshot files under this root directory; a reopened router
    /// recovers the namespace byte-exactly.
    Durable(PathBuf),
}

impl MetaBackend {
    /// Shorthand for [`MetaBackend::Durable`].
    pub fn durable(root: impl Into<PathBuf>) -> Self {
        MetaBackend::Durable(root.into())
    }
}

/// Configuration for [`MetaRouter::open`].
#[derive(Debug, Clone)]
pub struct MetaConfig {
    /// Storage backend.
    pub backend: MetaBackend,
    /// Number of shards. A durable directory remembers the shard count it
    /// was created with (in its manifest) and reopening uses that count —
    /// the ring must keep routing keys to the shard that logged them.
    pub shards: usize,
    /// A shard rewrites its snapshot and truncates its WAL after this many
    /// appended records. Replay after a crash between the snapshot rename
    /// and the WAL truncation is safe because every record is an
    /// idempotent upsert carrying absolute values.
    pub snapshot_every: usize,
}

impl MetaConfig {
    /// Default shard count: enough to keep shard locks uncontended without
    /// a directory full of near-empty WALs.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Default snapshot cadence, in WAL records per shard.
    pub const DEFAULT_SNAPSHOT_EVERY: usize = 4096;

    /// A configuration with the default shard count and snapshot cadence.
    pub fn new(backend: MetaBackend) -> Self {
        MetaConfig {
            backend,
            shards: Self::DEFAULT_SHARDS,
            snapshot_every: Self::DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// An ephemeral configuration (the default backend).
    pub fn ephemeral() -> Self {
        MetaConfig::new(MetaBackend::Ephemeral)
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the snapshot cadence (clamped to at least 1).
    pub fn with_snapshot_every(mut self, records: usize) -> Self {
        self.snapshot_every = records.max(1);
        self
    }
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig::ephemeral()
    }
}

/// One named object: its true byte length and the stripes storing its
/// (zero-padded) blocks, in offset order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Object name (the routing key).
    pub name: String,
    /// Original size in bytes, before padding to whole blocks.
    pub size: usize,
    /// The stripes storing the object, in offset order.
    pub stripes: Vec<StripeId>,
}

/// One stripe: where each of its `n` blocks lives, and the placement epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeRecord {
    /// The stripe id (the routing key).
    pub id: StripeId,
    /// `locations[i]` is the node storing block `i`.
    pub locations: Vec<NodeId>,
    /// Monotonic placement version: starts at 0 on registration, bumped by
    /// every accepted relocation (and by re-registration). A repair
    /// directive planned at epoch `e` is stale once the stripe moved past
    /// `e`.
    pub epoch: u64,
}

impl StripeRecord {
    /// The node storing block `index`.
    pub fn node_of(&self, index: usize) -> NodeId {
        self.locations[index]
    }
}

/// One in-flight repair directive, persisted so a crashed manager's queue
/// can be re-enqueued on reopen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairRecord {
    /// The stripe being repaired.
    pub stripe: StripeId,
    /// Index of the block being reconstructed.
    pub index: usize,
    /// Node that receives the reconstructed block.
    pub requestor: NodeId,
    /// Opaque priority tag (the manager's priority class, encoded by the
    /// caller; this crate only stores it).
    pub priority: u8,
    /// The stripe's placement epoch when the repair was enqueued. On
    /// reopen, a record whose epoch trails the stripe's current epoch is a
    /// stale directive: the block already moved, re-running the repair
    /// would double-heal.
    pub epoch: u64,
}

/// Errors from the metadata plane.
#[derive(Debug)]
#[non_exhaustive]
pub enum MetaError {
    /// The stripe is not registered.
    UnknownStripe {
        /// The raw stripe id.
        stripe: u64,
    },
    /// A placement-versioned operation lost its race: the stripe's epoch
    /// moved past the one the caller planned against.
    StaleEpoch {
        /// The raw stripe id.
        stripe: u64,
        /// The block index involved.
        index: usize,
        /// The epoch the caller planned against.
        expected: u64,
        /// The stripe's current epoch.
        actual: u64,
    },
    /// The request is malformed (out-of-range index, bad configuration).
    InvalidRequest {
        /// Why the request was rejected.
        reason: String,
    },
    /// A durable file failed structural validation (bad magic or manifest;
    /// a torn WAL *tail* is not corruption — it is dropped silently and
    /// counted).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        reason: String,
    },
    /// An underlying filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::UnknownStripe { stripe } => write!(f, "unknown stripe {stripe}"),
            MetaError::StaleEpoch {
                stripe,
                index,
                expected,
                actual,
            } => write!(
                f,
                "stale epoch for block {index} of stripe {stripe}: \
                 planned at {expected}, placement is at {actual}"
            ),
            MetaError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            MetaError::Corrupt { path, reason } => {
                write!(f, "corrupt metadata file {}: {reason}", path.display())
            }
            MetaError::Io(e) => write!(f, "metadata I/O error: {e}"),
        }
    }
}

impl std::error::Error for MetaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MetaError {
    fn from(e: std::io::Error) -> Self {
        MetaError::Io(e)
    }
}
