//! Closed-form timeslot analysis from the paper.
//!
//! A *timeslot* is the time to transmit one block over one network link. The
//! formulas below are the ones derived in §2.2, §3.2, §4.1 and §4.4 and are
//! used by the test suite as oracles for the simulator, and by
//! `EXPERIMENTS.md` to sanity-check measured shapes.

/// Timeslots for a conventional single-block repair: `k` (§2.2).
pub fn conventional_single(k: usize) -> f64 {
    k as f64
}

/// Timeslots for a conventional multi-block repair of `f` failures:
/// `k + f - 1` (§2.2).
pub fn conventional_multi(k: usize, f: usize) -> f64 {
    (k + f - 1) as f64
}

/// Timeslots for a PPR single-block repair: `ceil(log2(k + 1))` (§2.2).
pub fn ppr_single(k: usize) -> f64 {
    ((k + 1) as f64).log2().ceil()
}

/// Timeslots for repair pipelining of a single block with `s` slices:
/// `1 + (k - 1) / s` (§3.2).
pub fn rp_single(k: usize, s: usize) -> f64 {
    1.0 + (k - 1) as f64 / s as f64
}

/// Timeslots for the cyclic version of repair pipelining (§4.1). Identical to
/// the basic version in homogeneous networks: `1 + (k - 1) / s`.
pub fn rp_cyclic_single(k: usize, s: usize) -> f64 {
    rp_single(k, s)
}

/// Timeslots for the block-level pipelining baseline (`Pipe-B`, the naive
/// approach of §3.2): `k`, the same as conventional repair.
pub fn pipe_b_single(k: usize) -> f64 {
    k as f64
}

/// Timeslots for a multi-block repair of `f` failures via repair pipelining:
/// `f * (1 + (k - 1) / s)` (§4.4).
pub fn rp_multi(k: usize, s: usize, f: usize) -> f64 {
    f as f64 * rp_single(k, s)
}

/// Timeslots for the naive block-level multi-block pipelining (§4.4):
/// `f * k`, worse than conventional repair.
pub fn naive_pipeline_multi(k: usize, f: usize) -> f64 {
    (f * k) as f64
}

/// The time (seconds) of one timeslot: transmitting one block of
/// `block_size` bytes over a link of `bandwidth` bytes/second.
pub fn timeslot_seconds(block_size: usize, bandwidth: f64) -> f64 {
    block_size as f64 / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values() {
        // §2.2: conventional repair takes k timeslots, PPR takes
        // ceil(log2(k+1)).
        assert_eq!(conventional_single(4), 4.0);
        assert_eq!(ppr_single(4), 3.0);
        assert_eq!(ppr_single(10), 4.0);
        // §3.2: 64 MiB block with 32 KiB slices gives s = 2048, so the repair
        // time approaches one timeslot.
        let t = rp_single(10, 2048);
        assert!(t > 1.0 && t < 1.005);
    }

    #[test]
    fn rp_beats_ppr_beats_conventional() {
        for k in 2..=20 {
            let s = 2048;
            assert!(rp_single(k, s) <= ppr_single(k));
            assert!(ppr_single(k) <= conventional_single(k));
        }
    }

    #[test]
    fn multi_block_comparison() {
        // §4.4: RP multi-block approaches f timeslots and always beats
        // conventional (k + f - 1); the naive block-level pipeline is worse
        // than conventional.
        let (k, s) = (10, 2048);
        for f in 1..=4 {
            assert!(rp_multi(k, s, f) < conventional_multi(k, f));
            assert!(naive_pipeline_multi(k, f) >= conventional_multi(k, f));
        }
    }

    #[test]
    fn rp_limit_is_one_timeslot() {
        assert!((rp_single(10, 1_000_000) - 1.0).abs() < 1e-4);
        assert_eq!(rp_single(10, 1), 10.0);
    }

    #[test]
    fn timeslot_seconds_at_1gbps() {
        let t = timeslot_seconds(64 * 1024 * 1024, 1e9 / 8.0);
        assert!((t - 0.5369).abs() < 1e-3);
    }
}
