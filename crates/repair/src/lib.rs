//! Repair planning algorithms.
//!
//! This crate implements every repair scheme the paper designs or compares
//! against, as *planners*: given which nodes hold the helper blocks, where
//! the requestor(s) sit, and the slice layout, each scheme produces a
//! [`simnet::Schedule`] — the DAG of slice-level transfers, disk reads and
//! compute steps that the repair performs. The schedule can then be timed on
//! the [`simnet`] simulator or executed for real by the `ecpipe` runtime.
//!
//! Schemes:
//!
//! * [`conventional`] — the requestor fetches `k` whole blocks (§2.2),
//!   `O(k)` timeslots.
//! * [`ppr`] — partial-parallel repair \[Mitra et al., EuroSys'16\]: a binary
//!   aggregation tree, `ceil(log2(k+1))` timeslots (§2.2).
//! * [`rp`] — repair pipelining over a linear path of helpers in slices
//!   (§3.2), approaching one timeslot; plus the block-level and unparallelised
//!   baselines of §6.4 (`Pipe-B`, `Pipe-S`).
//! * [`cyclic`] — the cyclic extension for requestors behind a limited edge
//!   link (§4.1).
//! * [`rack_aware`] — Algorithm 1: rack-aware linear path selection (§4.2).
//! * [`weighted_path`] — Algorithm 2: optimal path selection for arbitrary
//!   heterogeneous links (§4.3), plus the brute-force oracle.
//! * [`multiblock`] — multi-block repair of `f` failures in one stripe
//!   (§4.4).
//! * [`fullnode`] — full-node recovery across many stripes with greedy
//!   least-recently-used helper scheduling (§3.3).
//! * [`analysis`] — the paper's closed-form timeslot formulas, used as
//!   oracles in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod conventional;
pub mod cyclic;
pub mod fullnode;
pub mod multiblock;
pub mod ppr;
pub mod rack_aware;
pub mod rp;
pub mod weighted_path;

mod job;

pub use job::{MultiRepairJob, SingleRepairJob};

use simnet::Schedule;

/// The single-block repair schemes compared throughout the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Conventional repair: the requestor reads `k` whole blocks.
    Conventional,
    /// Partial-parallel repair (PPR): binary aggregation tree.
    Ppr,
    /// Repair pipelining over a linear path (the paper's contribution).
    RepairPipelining,
    /// Cyclic repair pipelining (parallel reads at the requestor, §4.1).
    CyclicRepairPipelining,
}

impl Scheme {
    /// A short label matching the paper's figures.
    #[deprecated(since = "0.2.0", note = "use the `Display` impl instead")]
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Conventional => "Conv.",
            Scheme::Ppr => "PPR",
            Scheme::RepairPipelining => "RP",
            Scheme::CyclicRepairPipelining => "RP-cyclic",
        }
    }

    /// Builds the slice-level schedule of this scheme for a single-block
    /// repair job.
    pub fn schedule(&self, job: &SingleRepairJob) -> Schedule {
        match self {
            Scheme::Conventional => conventional::schedule(job),
            Scheme::Ppr => ppr::schedule(job),
            Scheme::RepairPipelining => rp::schedule(job),
            Scheme::CyclicRepairPipelining => cyclic::schedule(job),
        }
    }
}

impl std::fmt::Display for Scheme {
    /// Formats as the short label used in the paper's figures (`Conv.`,
    /// `PPR`, `RP`, `RP-cyclic`), uniform across reports and benches.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One string table: the deprecated alias keeps serving it until it
        // is removed. `pad` honors width/alignment options in table output.
        #[allow(deprecated)]
        f.pad(self.label())
    }
}
