//! Multi-block repair of `f` failed blocks in one stripe (§4.4).
//!
//! All `f` failed blocks are reconstructed from the same `k` helpers, so each
//! helper reads its local block once and, per slice offset, forwards `f`
//! partial slices (one per failed block) down the linear path. The last
//! helper reconstructs the `f` slices and delivers each to its requestor.
//! The repair time approaches `f` timeslots, always better than conventional
//! repair's `k + f - 1`.

use simnet::{Schedule, TaskId};

use crate::MultiRepairJob;

/// Builds the repair-pipelining multi-block schedule (§4.4, Figure 6).
#[allow(clippy::needless_range_loop)] // slice/helper loops index disk[i][j]
pub fn schedule_rp(job: &MultiRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.layout.slice_count();
    let k = job.k();
    let f = job.f();

    // Each helper reads its local block once (slice by slice).
    let disk: Vec<Vec<TaskId>> = job
        .helpers
        .iter()
        .map(|&h| {
            (0..slices)
                .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
                .collect()
        })
        .collect();

    for j in 0..slices {
        let slice_len = job.layout.slice_len(j) as u64;
        // The bundle of f partial slices travelling down the path for this
        // offset.
        let mut incoming: Option<TaskId> = None;
        for i in 0..k {
            let node = job.helpers[i];
            let mut deps = vec![disk[i][j]];
            if let Some(inc) = incoming {
                deps.push(inc);
            }
            // The helper updates all f partial slices from its one local
            // slice.
            let combine = s.compute(node, f as u64 * slice_len, &deps);
            if i + 1 < k {
                let next = job.helpers[i + 1];
                let t = s.transfer(node, next, f as u64 * slice_len, &[combine]);
                incoming = Some(t);
            } else {
                // The last helper delivers each reconstructed slice to its
                // requestor.
                for &r in &job.requestors {
                    s.transfer(node, r, slice_len, &[combine]);
                }
            }
        }
    }
    s
}

/// Builds the conventional multi-block schedule (§2.2): one dedicated
/// requestor reads `k` whole blocks, reconstructs everything, and ships the
/// remaining `f - 1` reconstructed blocks to the other requestors
/// (`k + f - 1` timeslots).
#[allow(clippy::needless_range_loop)] // slice/helper loops index disk[i][j]
pub fn schedule_conventional(job: &MultiRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.layout.slice_count();
    let k = job.k();
    let dedicated = job.requestors[0];

    let disk: Vec<Vec<TaskId>> = job
        .helpers
        .iter()
        .map(|&h| {
            (0..slices)
                .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
                .collect()
        })
        .collect();

    // Phase 1: the dedicated requestor fetches k blocks and decodes.
    let mut decoded: Vec<TaskId> = Vec::with_capacity(slices);
    for j in 0..slices {
        let slice_len = job.layout.slice_len(j) as u64;
        let mut arrivals = Vec::with_capacity(k);
        for (i, &h) in job.helpers.iter().enumerate() {
            arrivals.push(s.transfer(h, dedicated, slice_len, &[disk[i][j]]));
        }
        decoded.push(s.compute(dedicated, slice_len * k as u64, &arrivals));
    }

    // Phase 2: ship the f - 1 other reconstructed blocks to their requestors.
    // The dedicated requestor only starts redistributing once it has decoded
    // the whole stripe (the block-synchronous behaviour the paper's
    // `k + f - 1` timeslot analysis assumes).
    let barrier = s.compute(dedicated, 0, &decoded);
    for &r in &job.requestors[1..] {
        for j in 0..slices {
            let slice_len = job.layout.slice_len(j) as u64;
            s.transfer(dedicated, r, slice_len, &[barrier]);
        }
    }
    s
}

/// Builds the naive block-level multi-block pipeline of §4.4 (no slicing):
/// each helper forwards a bundle of `f` whole partial blocks, taking `f * k`
/// timeslots — worse than conventional repair, kept as the cautionary
/// baseline the paper describes.
pub fn schedule_naive_pipeline(job: &MultiRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let block = job.layout.block_size as u64;
    let k = job.k();
    let f = job.f() as u64;
    let mut incoming: Option<TaskId> = None;
    for i in 0..k {
        let node = job.helpers[i];
        let read = s.disk_read(node, block, &[]);
        let deps: Vec<TaskId> = match incoming {
            Some(t) => vec![t, read],
            None => vec![read],
        };
        let combine = s.compute(node, f * block, &deps);
        if i + 1 < k {
            let t = s.transfer(node, job.helpers[i + 1], f * block, &[combine]);
            incoming = Some(t);
        } else {
            for &r in &job.requestors {
                s.transfer(node, r, block, &[combine]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, Topology, GBIT};

    const MIB: usize = 1024 * 1024;

    fn job(k: usize, f: usize, block: usize, slice: usize) -> MultiRepairJob {
        MultiRepairJob::new(
            (1..=k).collect(),
            (100..100 + f).collect(),
            SliceLayout::new(block, slice),
        )
    }

    fn sim(nodes: usize) -> Simulator {
        Simulator::new(Topology::flat(nodes, GBIT), CostModel::network_only())
    }

    #[test]
    fn rp_multi_approaches_f_timeslots() {
        let block = 32 * MIB;
        for f in 1..=4 {
            let j = job(10, f, block, 32 * 1024);
            let report = sim(110).run(&schedule_rp(&j));
            let timeslot = analysis::timeslot_seconds(block, GBIT);
            let expected = analysis::rp_multi(10, j.layout.slice_count(), f) * timeslot;
            assert!(
                (report.makespan - expected).abs() / expected < 0.03,
                "f={f}: {} vs {}",
                report.makespan,
                expected
            );
        }
    }

    #[test]
    fn conventional_multi_is_k_plus_f_minus_1_timeslots() {
        let block = 32 * MIB;
        for f in 1..=4 {
            let j = job(10, f, block, MIB);
            let report = sim(110).run(&schedule_conventional(&j));
            let timeslot = analysis::timeslot_seconds(block, GBIT);
            let expected = analysis::conventional_multi(10, f) * timeslot;
            assert!(
                (report.makespan - expected).abs() / expected < 0.03,
                "f={f}: {} vs {}",
                report.makespan,
                expected
            );
        }
    }

    #[test]
    fn rp_always_beats_conventional_for_multi_block() {
        let block = 16 * MIB;
        for f in 1..=4 {
            let j = job(10, f, block, 64 * 1024);
            let rp_time = sim(110).run(&schedule_rp(&j)).makespan;
            let conv_time = sim(110).run(&schedule_conventional(&j)).makespan;
            assert!(rp_time < conv_time, "f={f}");
        }
    }

    #[test]
    fn naive_pipeline_is_worse_than_conventional() {
        let block = 16 * MIB;
        let j = job(10, 3, block, 64 * 1024);
        let naive_time = sim(110).run(&schedule_naive_pipeline(&j)).makespan;
        let conv_time = sim(110).run(&schedule_conventional(&j)).makespan;
        assert!(naive_time > conv_time);
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::naive_pipeline_multi(10, 3) * timeslot;
        let measured = sim(110).run(&schedule_naive_pipeline(&j)).makespan;
        assert!((measured - expected).abs() / expected < 0.05);
    }

    #[test]
    fn rp_multi_repair_time_grows_linearly_with_f() {
        let block = 16 * MIB;
        let t1 = sim(110)
            .run(&schedule_rp(&job(10, 1, block, 64 * 1024)))
            .makespan;
        let t4 = sim(110)
            .run(&schedule_rp(&job(10, 4, block, 64 * 1024)))
            .makespan;
        let ratio = t4 / t1;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn each_helper_link_carries_f_blocks() {
        let block = 4 * MIB;
        let j = job(4, 2, block, 256 * 1024);
        let report = sim(110).run(&schedule_rp(&j));
        // Inter-helper links carry f * block bytes; delivery links carry one
        // block each.
        let inter = report.link_bytes.get(&(1, 2)).copied().unwrap_or(0);
        assert_eq!(inter, 2 * block as u64);
        let delivery = report.link_bytes.get(&(4, 100)).copied().unwrap_or(0);
        assert_eq!(delivery, block as u64);
    }
}
