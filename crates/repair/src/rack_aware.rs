//! Rack-aware path selection — Algorithm 1 of the paper (§4.2).
//!
//! In a rack-based data center the cross-rack bandwidth is the scarce
//! resource. Algorithm 1 orders the linear path of helpers so that each rack
//! has at most one incoming and one outgoing transmission and the number of
//! cross-rack transmissions is minimised: helpers co-located with the
//! requestor come last (closest to the requestor), and remote racks are
//! visited one after another in descending order of how many helpers they
//! contribute.

use simnet::{NodeId, Topology};

/// Selects the linear path of `k` helpers for a rack-based topology.
///
/// `candidates` are the nodes holding the `n - 1` available blocks of the
/// stripe; `k` of them are chosen and ordered such that the returned vector
/// is the repair path `path[0] -> path[1] -> ... -> requestor`.
///
/// # Panics
///
/// Panics if fewer than `k` candidates are given or the requestor is listed
/// as a candidate.
pub fn select_path(
    topology: &Topology,
    requestor: NodeId,
    candidates: &[NodeId],
    k: usize,
) -> Vec<NodeId> {
    assert!(candidates.len() >= k, "need at least k candidate helpers");
    assert!(
        !candidates.contains(&requestor),
        "the requestor cannot be a candidate helper"
    );

    let requestor_rack = topology.rack_of(requestor);
    // Group the candidates by rack.
    let mut racks: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for &c in candidates {
        racks.entry(topology.rack_of(c)).or_default().push(c);
    }
    // H0: the requestor's rack. Remote racks sorted by helper count,
    // descending (ties broken by rack id for determinism).
    let local = racks.remove(&requestor_rack).unwrap_or_default();
    let mut remote: Vec<(usize, Vec<NodeId>)> = racks.into_iter().collect();
    remote.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

    // Algorithm 1 prepends helpers to the path (P = N -> P), starting with
    // the requestor's rack, so the local helpers end up adjacent to the
    // requestor and each remote rack is visited contiguously.
    let mut path: Vec<NodeId> = Vec::with_capacity(k);
    let append = |nodes: &[NodeId], path: &mut Vec<NodeId>| {
        for &n in nodes {
            if path.len() == k {
                return;
            }
            // Prepend: the newest helper is farthest from the requestor.
            path.insert(0, n);
        }
    };
    append(&local, &mut path);
    for (_, nodes) in &remote {
        if path.len() == k {
            break;
        }
        append(nodes, &mut path);
    }
    assert_eq!(path.len(), k, "not enough helpers to build the path");
    path
}

/// Counts the cross-rack transmissions of a repair path (the path's hops plus
/// the final hop into the requestor).
pub fn cross_rack_transmissions(topology: &Topology, path: &[NodeId], requestor: NodeId) -> usize {
    let mut count = 0;
    for w in path.windows(2) {
        if topology.rack_of(w[0]) != topology.rack_of(w[1]) {
            count += 1;
        }
    }
    if let Some(&last) = path.last() {
        if topology.rack_of(last) != topology.rack_of(requestor) {
            count += 1;
        }
    }
    count
}

/// The minimum possible number of cross-rack transmissions for a single-block
/// repair that uses one helper path: the number of distinct remote racks that
/// must be visited to gather `k` helpers (CAR-style lower bound).
pub fn minimum_cross_rack_transmissions(
    topology: &Topology,
    requestor: NodeId,
    candidates: &[NodeId],
    k: usize,
) -> usize {
    let requestor_rack = topology.rack_of(requestor);
    let mut per_rack: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &c in candidates {
        *per_rack.entry(topology.rack_of(c)).or_default() += 1;
    }
    let local = per_rack.remove(&requestor_rack).unwrap_or(0);
    if local >= k {
        return 0;
    }
    let mut remaining = k - local;
    let mut counts: Vec<usize> = per_rack.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut racks_needed = 0;
    for c in counts {
        if remaining == 0 {
            break;
        }
        racks_needed += 1;
        remaining = remaining.saturating_sub(c);
    }
    assert_eq!(remaining, 0, "not enough candidate helpers");
    racks_needed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SingleRepairJob;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, GBIT, MBIT};

    const MIB: usize = 1024 * 1024;

    /// Three racks of three nodes, (9,6) RS with three blocks per rack, as in
    /// the paper's rack-awareness experiment (Figure 8(h)).
    fn rack_setup() -> (Topology, NodeId, Vec<NodeId>) {
        let topo = Topology::rack_based(&[3, 3, 3], 10.0 * GBIT, 800.0 * MBIT);
        // The failed block lived on node 0 (rack 0); the requestor is node 1
        // in the same rack; candidates are the other 7 nodes holding blocks.
        let requestor = 1;
        let candidates = vec![2, 3, 4, 5, 6, 7, 8];
        (topo, requestor, candidates)
    }

    #[test]
    fn path_has_one_incoming_transmission_per_rack() {
        let (topo, requestor, candidates) = rack_setup();
        let path = select_path(&topo, requestor, &candidates, 6);
        assert_eq!(path.len(), 6);
        // Count rack changes along the path: each rack should be entered at
        // most once.
        let mut racks_seen = Vec::new();
        for &n in &path {
            let r = topo.rack_of(n);
            if racks_seen.last() != Some(&r) {
                assert!(!racks_seen.contains(&r), "rack {r} entered twice");
                racks_seen.push(r);
            }
        }
    }

    #[test]
    fn local_helpers_sit_next_to_requestor() {
        let (topo, requestor, candidates) = rack_setup();
        let path = select_path(&topo, requestor, &candidates, 6);
        // Node 2 is the only candidate in the requestor's rack, so it must be
        // the last hop before the requestor.
        assert_eq!(*path.last().unwrap(), 2);
    }

    #[test]
    fn cross_rack_transmissions_are_minimised() {
        let (topo, requestor, candidates) = rack_setup();
        let path = select_path(&topo, requestor, &candidates, 6);
        let crossings = cross_rack_transmissions(&topo, &path, requestor);
        let lower_bound = minimum_cross_rack_transmissions(&topo, requestor, &candidates, 6);
        assert_eq!(crossings, lower_bound);
        assert_eq!(crossings, 2);
    }

    #[test]
    fn random_order_crosses_racks_more_often() {
        let (topo, requestor, candidates) = rack_setup();
        // A deliberately bad interleaved order.
        let bad_path = vec![3, 6, 4, 7, 5, 2];
        let bad = cross_rack_transmissions(&topo, &bad_path, requestor);
        let good_path = select_path(&topo, requestor, &candidates, 6);
        let good = cross_rack_transmissions(&topo, &good_path, requestor);
        assert!(bad > good);
        let _ = candidates;
    }

    #[test]
    fn rack_aware_path_reduces_repair_time() {
        // Figure 8(h): with limited cross-rack bandwidth, the rack-aware path
        // beats a rack-oblivious path.
        let (topo, requestor, candidates) = rack_setup();
        let layout = SliceLayout::new(64 * MIB, 32 * 1024);
        let sim = Simulator::new(topo.clone(), CostModel::network_only());

        let aware = select_path(&topo, requestor, &candidates, 6);
        let oblivious = vec![3, 6, 4, 7, 5, 2];

        let t_aware = sim
            .run(&crate::rp::schedule(&SingleRepairJob::new(
                aware, requestor, layout,
            )))
            .makespan;
        let t_oblivious = sim
            .run(&crate::rp::schedule(&SingleRepairJob::new(
                oblivious, requestor, layout,
            )))
            .makespan;
        assert!(
            t_aware < t_oblivious,
            "rack aware {t_aware} vs oblivious {t_oblivious}"
        );
    }

    #[test]
    fn all_local_candidates_need_no_cross_rack_traffic() {
        let topo = Topology::rack_based(&[5, 5], 10.0 * GBIT, GBIT);
        let path = select_path(&topo, 0, &[1, 2, 3, 4], 3);
        assert_eq!(cross_rack_transmissions(&topo, &path, 0), 0);
    }

    #[test]
    #[should_panic(expected = "need at least k candidate helpers")]
    fn too_few_candidates_panics() {
        let topo = Topology::rack_based(&[2, 2], GBIT, GBIT);
        select_path(&topo, 0, &[1, 2], 3);
    }
}
