//! Full-node recovery: a multi-stripe repair with greedy helper scheduling
//! (§3.3).
//!
//! When a storage node fails, every stripe that stored a block on it loses
//! one block. The stripes are independently encoded, so their repairs can run
//! in parallel — but a helper chosen by many stripes becomes the straggler.
//! The paper's greedy scheduler tracks when each node was last selected as a
//! helper and picks, per stripe, the `k` least-recently-selected helpers
//! (found with quickselect in `O(n)` time). The reconstructed blocks are
//! spread over a configurable set of requestors.

use std::fmt;

use simnet::{NodeId, Schedule};

use ecc::slice::SliceLayout;

use crate::SingleRepairJob;

/// Why a full-node recovery could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPlanError {
    /// No requestors were supplied, so the reconstructed blocks have nowhere
    /// to go.
    NoRequestors,
    /// A stripe has fewer candidate helpers (available nodes outside the
    /// requestor chosen for it) than the `k` the code needs.
    TooFewHelpers {
        /// Index of the offending stripe in the input slice.
        stripe: usize,
        /// How many candidate helpers the stripe has.
        available: usize,
        /// How many helpers the repair needs (`k`).
        needed: usize,
    },
}

impl fmt::Display for RecoveryPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPlanError::NoRequestors => {
                write!(f, "at least one requestor is required")
            }
            RecoveryPlanError::TooFewHelpers {
                stripe,
                available,
                needed,
            } => write!(
                f,
                "stripe {stripe} has only {available} candidate helpers, need {needed}"
            ),
        }
    }
}

impl std::error::Error for RecoveryPlanError {}

/// One stripe affected by the node failure: the nodes holding its surviving
/// blocks.
#[derive(Debug, Clone)]
pub struct AffectedStripe {
    /// Nodes holding the stripe's surviving (available) blocks.
    pub available_nodes: Vec<NodeId>,
}

/// How helpers are chosen for each stripe's repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperSelection {
    /// Always use the first `k` available nodes (the `RP` baseline of
    /// Figure 8(e): smallest node index first).
    LowestIndex,
    /// Greedy least-recently-selected scheduling (`RP+scheduling`).
    Greedy,
}

/// Plans one single-block repair job per affected stripe, assigning helpers
/// according to `selection` and spreading the reconstructed blocks evenly
/// over `requestors` (round-robin).
///
/// # Errors
///
/// Returns [`RecoveryPlanError::NoRequestors`] when `requestors` is empty and
/// [`RecoveryPlanError::TooFewHelpers`] when a stripe has fewer than `k`
/// available nodes outside the requestor chosen for it (mirroring how the
/// `ecpipe` recovery path reports invalid requests instead of panicking).
pub fn plan_recovery(
    stripes: &[AffectedStripe],
    k: usize,
    requestors: &[NodeId],
    layout: SliceLayout,
    selection: HelperSelection,
) -> Result<Vec<SingleRepairJob>, RecoveryPlanError> {
    if requestors.is_empty() {
        return Err(RecoveryPlanError::NoRequestors);
    }
    // Logical clock of the last time each node was selected as a helper.
    let mut last_selected: std::collections::HashMap<NodeId, u64> =
        std::collections::HashMap::new();
    let mut clock = 0u64;

    stripes
        .iter()
        .enumerate()
        .map(|(i, stripe)| {
            let requestor = requestors[i % requestors.len()];
            let candidates: Vec<NodeId> = stripe
                .available_nodes
                .iter()
                .copied()
                .filter(|&n| n != requestor)
                .collect();
            if candidates.len() < k {
                return Err(RecoveryPlanError::TooFewHelpers {
                    stripe: i,
                    available: candidates.len(),
                    needed: k,
                });
            }
            let mut helpers = match selection {
                HelperSelection::LowestIndex => {
                    let mut sorted = candidates.clone();
                    sorted.sort_unstable();
                    sorted.truncate(k);
                    sorted
                }
                HelperSelection::Greedy => {
                    let mut keyed: Vec<(u64, NodeId)> = candidates
                        .iter()
                        .map(|&n| (last_selected.get(&n).copied().unwrap_or(0), n))
                        .collect();
                    quickselect_k_smallest(&mut keyed, k);
                    let mut chosen: Vec<NodeId> = keyed[..k].iter().map(|&(_, n)| n).collect();
                    chosen.sort_unstable();
                    chosen
                }
            };
            for &h in &helpers {
                clock += 1;
                last_selected.insert(h, clock);
            }
            // Rotate the path per stripe so that the last hop (the helper
            // that delivers to the requestor) is spread over different nodes
            // instead of always being the highest-index helper.
            helpers.rotate_left(i % k);
            Ok(SingleRepairJob::new(helpers, requestor, layout))
        })
        .collect()
}

/// Partially sorts `items` so that the `k` smallest elements (by the tuple
/// order, i.e. primarily the timestamp) occupy the first `k` positions.
/// This is Hoare's quickselect, the `O(n)` selection the paper cites for the
/// greedy scheduler.
fn quickselect_k_smallest(items: &mut [(u64, NodeId)], k: usize) {
    if k == 0 || k >= items.len() {
        return;
    }
    let mut lo = 0usize;
    let mut hi = items.len() - 1;
    loop {
        if lo >= hi {
            return;
        }
        // Median-of-first pivot is fine for the small n here.
        let pivot = items[(lo + hi) / 2];
        let mut i = lo;
        let mut j = hi;
        while i <= j {
            while items[i] < pivot {
                i += 1;
            }
            while items[j] > pivot {
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if i <= j {
                items.swap(i, j);
                i += 1;
                if j == 0 {
                    break;
                }
                j -= 1;
            }
        }
        if k <= j + 1 {
            hi = j;
        } else if k >= i {
            lo = i;
        } else {
            return;
        }
    }
}

/// Builds the combined schedule of a full-node recovery: one per-stripe
/// schedule produced by `scheme` for every job, interleaved so that all
/// stripe repairs progress concurrently while sharing (and contending for)
/// the same links and nodes.
pub fn build_recovery_schedule<F>(jobs: &[SingleRepairJob], scheme: F) -> Schedule
where
    F: Fn(&SingleRepairJob) -> Schedule,
{
    let per_stripe: Vec<Schedule> = jobs.iter().map(scheme).collect();
    Schedule::interleave(&per_stripe)
}

/// The recovery rate in bytes per second: total repaired data divided by the
/// makespan of the combined schedule.
pub fn recovery_rate(jobs: &[SingleRepairJob], makespan: f64) -> f64 {
    let total: usize = jobs.iter().map(|j| j.layout.block_size).sum();
    total as f64 / makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{CostModel, Simulator, Topology, GBIT};

    const MIB: usize = 1024 * 1024;

    /// 16 storage nodes (ids 0..16); node 0 failed. Each stripe stores its
    /// blocks on a deterministic subset of the other nodes.
    fn affected_stripes(count: usize, n: usize) -> Vec<AffectedStripe> {
        (0..count)
            .map(|i| {
                let available_nodes: Vec<NodeId> =
                    (0..n - 1)
                        .map(|j| 1 + ((i + j * 3) % 15))
                        .fold(Vec::new(), |mut acc, n| {
                            if !acc.contains(&n) {
                                acc.push(n);
                            }
                            acc
                        });
                // Ensure enough distinct nodes by padding from the full set.
                let mut nodes = available_nodes;
                let mut next = 1;
                while nodes.len() < n - 1 {
                    if !nodes.contains(&next) {
                        nodes.push(next);
                    }
                    next += 1;
                }
                AffectedStripe {
                    available_nodes: nodes,
                }
            })
            .collect()
    }

    #[test]
    fn quickselect_finds_k_smallest() {
        let mut items: Vec<(u64, NodeId)> = vec![(5, 0), (1, 1), (9, 2), (3, 3), (7, 4), (2, 5)];
        quickselect_k_smallest(&mut items, 3);
        let mut front: Vec<u64> = items[..3].iter().map(|&(t, _)| t).collect();
        front.sort_unstable();
        assert_eq!(front, vec![1, 2, 3]);
    }

    #[test]
    fn quickselect_handles_edge_cases() {
        let mut empty: Vec<(u64, NodeId)> = vec![];
        quickselect_k_smallest(&mut empty, 0);
        let mut single = vec![(1, 7)];
        quickselect_k_smallest(&mut single, 1);
        assert_eq!(single, vec![(1, 7)]);
        let mut dupes = vec![(2, 0), (2, 1), (2, 2), (1, 3)];
        quickselect_k_smallest(&mut dupes, 2);
        let mut front: Vec<u64> = dupes[..2].iter().map(|&(t, _)| t).collect();
        front.sort_unstable();
        assert_eq!(front, vec![1, 2]);
    }

    #[test]
    fn greedy_spreads_helper_load() {
        let stripes = affected_stripes(64, 14);
        let layout = SliceLayout::new(MIB, 256 * 1024);
        let greedy = plan_recovery(&stripes, 10, &[100], layout, HelperSelection::Greedy).unwrap();
        let naive =
            plan_recovery(&stripes, 10, &[100], layout, HelperSelection::LowestIndex).unwrap();

        let load = |jobs: &[SingleRepairJob]| -> usize {
            let mut counts: std::collections::HashMap<NodeId, usize> = Default::default();
            for j in jobs {
                for &h in &j.helpers {
                    *counts.entry(h).or_default() += 1;
                }
            }
            *counts.values().max().unwrap()
        };
        assert!(load(&greedy) <= load(&naive));
    }

    #[test]
    fn requestors_are_assigned_round_robin() {
        let stripes = affected_stripes(8, 14);
        let layout = SliceLayout::new(MIB, 256 * 1024);
        let jobs =
            plan_recovery(&stripes, 10, &[100, 101], layout, HelperSelection::Greedy).unwrap();
        let to_100 = jobs.iter().filter(|j| j.requestor == 100).count();
        let to_101 = jobs.iter().filter(|j| j.requestor == 101).count();
        assert_eq!(to_100, 4);
        assert_eq!(to_101, 4);
    }

    #[test]
    fn more_requestors_increase_recovery_rate() {
        let stripes = affected_stripes(16, 14);
        let layout = SliceLayout::new(4 * MIB, MIB);
        let sim = Simulator::new(Topology::flat(120, GBIT), CostModel::network_only());

        let rate_for = |requestors: &[NodeId]| {
            let jobs =
                plan_recovery(&stripes, 10, requestors, layout, HelperSelection::Greedy).unwrap();
            let schedule = build_recovery_schedule(&jobs, crate::rp::schedule);
            let report = sim.run(&schedule);
            recovery_rate(&jobs, report.makespan)
        };
        let one = rate_for(&[100]);
        let four = rate_for(&[100, 101, 102, 103]);
        assert!(four > one, "4 requestors {four} vs 1 requestor {one}");
    }

    #[test]
    fn greedy_scheduling_helps_with_many_requestors() {
        let stripes = affected_stripes(64, 14);
        let layout = SliceLayout::new(4 * MIB, MIB);
        let sim = Simulator::new(Topology::flat(120, GBIT), CostModel::network_only());
        let requestors: Vec<NodeId> = (100..116).collect();

        let rate_for = |selection: HelperSelection| {
            let jobs = plan_recovery(&stripes, 10, &requestors, layout, selection).unwrap();
            let schedule = build_recovery_schedule(&jobs, crate::rp::schedule);
            let report = sim.run(&schedule);
            recovery_rate(&jobs, report.makespan)
        };
        let greedy = rate_for(HelperSelection::Greedy);
        let naive = rate_for(HelperSelection::LowestIndex);
        assert!(
            greedy >= naive,
            "greedy {greedy} should be at least naive {naive}"
        );
    }

    #[test]
    fn empty_requestors_is_an_error() {
        let stripes = affected_stripes(1, 14);
        let err = plan_recovery(
            &stripes,
            10,
            &[],
            SliceLayout::new(MIB, MIB),
            HelperSelection::Greedy,
        )
        .unwrap_err();
        assert_eq!(err, RecoveryPlanError::NoRequestors);
        assert!(err.to_string().contains("requestor"));
    }

    #[test]
    fn too_few_helpers_is_an_error() {
        // A stripe whose only available nodes cannot cover k = 10 helpers
        // once the requestor is excluded.
        let stripes = vec![AffectedStripe {
            available_nodes: (1..=10).collect(),
        }];
        let err = plan_recovery(
            &stripes,
            10,
            &[10], // requestor overlaps an available node, leaving 9 < 10
            SliceLayout::new(MIB, MIB),
            HelperSelection::Greedy,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RecoveryPlanError::TooFewHelpers {
                stripe: 0,
                available: 9,
                needed: 10,
            }
        );
        assert!(err.to_string().contains("candidate helpers"));
    }
}
