//! Repair job descriptions shared by all schemes.

use ecc::slice::SliceLayout;
use simnet::NodeId;

/// A single-block repair job: which nodes act as helpers, where the repaired
/// block is delivered, and how the block is sliced.
///
/// The helper order matters for path-based schemes (repair pipelining uses it
/// as the linear path `helpers[0] -> helpers[1] -> ... -> requestor`); the
/// order is irrelevant for conventional repair and PPR.
#[derive(Debug, Clone)]
pub struct SingleRepairJob {
    /// Nodes storing the helper blocks, in path order.
    pub helpers: Vec<NodeId>,
    /// The node that receives the reconstructed block (a degraded-read client
    /// or a replacement node).
    pub requestor: NodeId,
    /// Block and slice sizes.
    pub layout: SliceLayout,
}

impl SingleRepairJob {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if there are no helpers, if the requestor is listed as a
    /// helper, or if a helper appears twice.
    pub fn new(helpers: Vec<NodeId>, requestor: NodeId, layout: SliceLayout) -> Self {
        assert!(!helpers.is_empty(), "at least one helper required");
        assert!(
            !helpers.contains(&requestor),
            "the requestor cannot also be a helper"
        );
        let mut sorted = helpers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), helpers.len(), "duplicate helper node");
        SingleRepairJob {
            helpers,
            requestor,
            layout,
        }
    }

    /// The number of helpers (`k` for MDS codes).
    pub fn k(&self) -> usize {
        self.helpers.len()
    }

    /// The number of slices per block.
    pub fn slice_count(&self) -> usize {
        self.layout.slice_count()
    }

    /// Returns a copy of the job with the helpers reordered.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the current helpers.
    pub fn with_helper_order(&self, order: Vec<NodeId>) -> Self {
        let mut a = self.helpers.clone();
        let mut b = order.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "order must be a permutation of the helpers");
        SingleRepairJob {
            helpers: order,
            requestor: self.requestor,
            layout: self.layout,
        }
    }
}

/// A multi-block repair job (§4.4): `f` failed blocks of one stripe repaired
/// from a shared set of helpers into `f` requestors.
#[derive(Debug, Clone)]
pub struct MultiRepairJob {
    /// Nodes storing the helper blocks, in path order.
    pub helpers: Vec<NodeId>,
    /// One requestor per failed block.
    pub requestors: Vec<NodeId>,
    /// Block and slice sizes.
    pub layout: SliceLayout,
}

impl MultiRepairJob {
    /// Creates a multi-block job.
    ///
    /// # Panics
    ///
    /// Panics if there are no helpers or no requestors, or if a requestor is
    /// also a helper.
    pub fn new(helpers: Vec<NodeId>, requestors: Vec<NodeId>, layout: SliceLayout) -> Self {
        assert!(!helpers.is_empty(), "at least one helper required");
        assert!(!requestors.is_empty(), "at least one requestor required");
        for r in &requestors {
            assert!(
                !helpers.contains(r),
                "requestor {r} cannot also be a helper"
            );
        }
        MultiRepairJob {
            helpers,
            requestors,
            layout,
        }
    }

    /// The number of failed blocks being repaired.
    pub fn f(&self) -> usize {
        self.requestors.len()
    }

    /// The number of helpers.
    pub fn k(&self) -> usize {
        self.helpers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SliceLayout {
        SliceLayout::new(1024, 128)
    }

    #[test]
    fn job_accessors() {
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, layout());
        assert_eq!(job.k(), 4);
        assert_eq!(job.slice_count(), 8);
    }

    #[test]
    #[should_panic(expected = "requestor cannot also be a helper")]
    fn requestor_as_helper_panics() {
        SingleRepairJob::new(vec![0, 1], 0, layout());
    }

    #[test]
    #[should_panic(expected = "duplicate helper node")]
    fn duplicate_helper_panics() {
        SingleRepairJob::new(vec![1, 1, 2], 0, layout());
    }

    #[test]
    fn reorder_helpers() {
        let job = SingleRepairJob::new(vec![1, 2, 3], 0, layout());
        let reordered = job.with_helper_order(vec![3, 1, 2]);
        assert_eq!(reordered.helpers, vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_with_wrong_set_panics() {
        let job = SingleRepairJob::new(vec![1, 2, 3], 0, layout());
        job.with_helper_order(vec![4, 1, 2]);
    }

    #[test]
    fn multi_job_counts() {
        let job = MultiRepairJob::new(vec![1, 2, 3], vec![10, 11], layout());
        assert_eq!(job.k(), 3);
        assert_eq!(job.f(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot also be a helper")]
    fn multi_job_requestor_overlap_panics() {
        MultiRepairJob::new(vec![1, 2, 3], vec![2], layout());
    }
}
