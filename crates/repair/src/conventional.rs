//! Conventional repair (§2.2).
//!
//! The requestor reads all `k` helper blocks over its own downlink and
//! decodes locally. All `k` block transmissions converge on one link, so the
//! repair takes `k` timeslots and the bandwidth usage is highly skewed.

use simnet::{Schedule, TaskId};

use crate::SingleRepairJob;

/// Builds the conventional-repair schedule for a single-block repair.
///
/// For fairness with repair pipelining (as in the paper's evaluation, §6.1),
/// blocks are transmitted in slices, which lets the requestor overlap its
/// decoding computation with the remaining transfers; the repair time is
/// still dominated by the `k` block transmissions over the requestor's
/// downlink.
#[allow(clippy::needless_range_loop)] // slice-major loops index disk[i][j]
pub fn schedule(job: &SingleRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.slice_count();
    let k = job.k();
    // Per-helper disk reads, per slice.
    let mut disk: Vec<Vec<TaskId>> = Vec::with_capacity(k);
    for &h in &job.helpers {
        let reads: Vec<TaskId> = (0..slices)
            .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
            .collect();
        disk.push(reads);
    }
    // Slice-major transfers: for each slice offset, every helper ships its
    // slice to the requestor; the requestor combines the k slices once they
    // have all arrived.
    for j in 0..slices {
        let slice_len = job.layout.slice_len(j) as u64;
        let mut arrivals: Vec<TaskId> = Vec::with_capacity(k);
        for (i, &h) in job.helpers.iter().enumerate() {
            let t = s.transfer(h, job.requestor, slice_len, &[disk[i][j]]);
            arrivals.push(t);
        }
        s.compute(job.requestor, slice_len * k as u64, &arrivals);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, Topology, GBIT};

    const MIB: usize = 1024 * 1024;

    #[test]
    fn takes_k_timeslots_on_homogeneous_network() {
        let block = 64 * MIB;
        let job = SingleRepairJob::new((1..=10).collect(), 0, SliceLayout::new(block, 32 * 1024));
        let sim = Simulator::new(Topology::flat(12, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::conventional_single(10) * timeslot;
        assert!(
            (report.makespan - expected).abs() / expected < 0.02,
            "makespan {} vs expected {}",
            report.makespan,
            expected
        );
    }

    #[test]
    fn repair_traffic_is_k_blocks() {
        let block = 8 * MIB;
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, SliceLayout::new(block, MIB));
        let sim = Simulator::new(Topology::flat(6, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        assert_eq!(report.network_bytes, 4 * block as u64);
    }

    #[test]
    fn requestor_downlink_is_the_bottleneck() {
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, SliceLayout::new(MIB, 64 * 1024));
        let sim = Simulator::new(Topology::flat(6, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        // All traffic flows over the four links into the requestor and every
        // link carries exactly one block.
        assert_eq!(report.links_used(), 4);
        assert_eq!(report.max_link_bytes, MIB as u64);
    }
}
