//! Weighted path selection — Algorithm 2 of the paper (§4.3).
//!
//! In a heterogeneous environment every directed link has a weight (the
//! inverse of its measured bandwidth). Repair pipelining is bottlenecked by
//! the slowest link of the chosen path, so the best path of `k` helpers plus
//! the requestor is the one that minimises the maximum link weight. Algorithm
//! 2 finds the optimum by a pruned depth-first search over path extensions:
//! a link heavier than the best bottleneck found so far can never be part of
//! a better path, so the whole sub-tree behind it is skipped. The brute-force
//! enumeration of all `(n-1)!/(n-1-k)!` permutations is kept as a correctness
//! oracle and as the baseline whose search time the paper compares against
//! (27 s vs 0.9 ms for a (14,10) code).

use simnet::{NodeId, Topology};

/// The result of a path search: the helpers in path order (the path is
/// `helpers[0] -> ... -> helpers[k-1] -> requestor`) and the bottleneck
/// (maximum) link weight along it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSelection {
    /// Helpers in path order.
    pub path: Vec<NodeId>,
    /// Maximum link weight along the path, including the final hop into the
    /// requestor.
    pub bottleneck_weight: f64,
}

/// A link-weight oracle: weight of the directed link from `src` to `dst`.
pub trait LinkWeights {
    /// The weight of the directed link `src -> dst` (higher is slower).
    fn weight(&self, src: NodeId, dst: NodeId) -> f64;
}

impl LinkWeights for Topology {
    fn weight(&self, src: NodeId, dst: NodeId) -> f64 {
        self.link_weight(src, dst)
    }
}

/// Link weights given as an explicit dense matrix (row-major `n x n`).
#[derive(Debug, Clone)]
pub struct WeightMatrix {
    n: usize,
    weights: Vec<f64>,
}

impl WeightMatrix {
    /// Creates a weight matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n * n`.
    pub fn new(n: usize, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n * n, "weight matrix size mismatch");
        WeightMatrix { n, weights }
    }
}

impl LinkWeights for WeightMatrix {
    fn weight(&self, src: NodeId, dst: NodeId) -> f64 {
        self.weights[src * self.n + dst]
    }
}

/// Algorithm 2: finds a path of `k` helpers (chosen from `candidates`) ending
/// at `requestor` that minimises the maximum link weight.
///
/// Returns `None` if fewer than `k` candidates are available.
pub fn optimal_path<W: LinkWeights>(
    weights: &W,
    requestor: NodeId,
    candidates: &[NodeId],
    k: usize,
) -> Option<PathSelection> {
    if candidates.len() < k || k == 0 {
        return None;
    }
    let mut best: Option<Vec<NodeId>> = None;
    let mut best_weight = f64::INFINITY;
    // `path` is built back to front: path[0] is the node adjacent to the
    // requestor, and new nodes are pushed at the end (the beginning of the
    // transmission chain).
    let mut path: Vec<NodeId> = Vec::with_capacity(k);
    let mut used = vec![false; candidates.len()];

    // The recursion carries the whole search state; bundling it into a
    // struct would just rename the arguments.
    #[allow(clippy::too_many_arguments)]
    fn extend<W: LinkWeights>(
        weights: &W,
        requestor: NodeId,
        candidates: &[NodeId],
        k: usize,
        path: &mut Vec<NodeId>,
        used: &mut [bool],
        current_max: f64,
        best: &mut Option<Vec<NodeId>>,
        best_weight: &mut f64,
    ) {
        if path.len() == k {
            *best = Some(path.clone());
            *best_weight = current_max;
            return;
        }
        // The node the next helper will transmit to: the beginning of the
        // current path, or the requestor if the path is empty.
        let next_hop = path.last().copied().unwrap_or(requestor);
        // Try the lightest links first: the first complete path is then the
        // greedy widest path, which gives a tight bound `w*` early and lets
        // the pruning cut most of the search space (this is what makes the
        // search finish in about a millisecond instead of the brute force's
        // tens of seconds).
        let mut extensions: Vec<(f64, usize)> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, &node)| (weights.weight(node, next_hop), i))
            .collect();
        extensions.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (w, i) in extensions {
            if w >= *best_weight {
                // Any path through this link is at least as bad as the best
                // candidate found so far; prune (and so are all heavier
                // links, but the loop guard keeps the code obvious).
                continue;
            }
            let node = candidates[i];
            used[i] = true;
            path.push(node);
            extend(
                weights,
                requestor,
                candidates,
                k,
                path,
                used,
                current_max.max(w),
                best,
                best_weight,
            );
            path.pop();
            used[i] = false;
        }
    }

    extend(
        weights,
        requestor,
        candidates,
        k,
        &mut path,
        &mut used,
        0.0,
        &mut best,
        &mut best_weight,
    );

    best.map(|mut path| {
        // The search builds the path from the requestor outwards; reverse it
        // so that path[0] is the farthest helper (the start of the chain).
        path.reverse();
        PathSelection {
            path,
            bottleneck_weight: best_weight,
        }
    })
}

/// Brute-force search over all ordered selections of `k` helpers. Exponential
/// — used as a correctness oracle and as the search-time baseline.
pub fn brute_force_path<W: LinkWeights>(
    weights: &W,
    requestor: NodeId,
    candidates: &[NodeId],
    k: usize,
) -> Option<PathSelection> {
    if candidates.len() < k || k == 0 {
        return None;
    }
    let mut best: Option<PathSelection> = None;
    let mut current: Vec<NodeId> = Vec::with_capacity(k);
    let mut used = vec![false; candidates.len()];

    fn recurse<W: LinkWeights>(
        weights: &W,
        requestor: NodeId,
        candidates: &[NodeId],
        k: usize,
        current: &mut Vec<NodeId>,
        used: &mut [bool],
        best: &mut Option<PathSelection>,
    ) {
        if current.len() == k {
            // current[0] -> current[1] -> ... -> requestor.
            let mut max_w = 0.0f64;
            for w in current.windows(2) {
                max_w = max_w.max(weights.weight(w[0], w[1]));
            }
            max_w = max_w.max(weights.weight(*current.last().unwrap(), requestor));
            if best
                .as_ref()
                .map(|b| max_w < b.bottleneck_weight)
                .unwrap_or(true)
            {
                *best = Some(PathSelection {
                    path: current.clone(),
                    bottleneck_weight: max_w,
                });
            }
            return;
        }
        for i in 0..candidates.len() {
            if used[i] {
                continue;
            }
            used[i] = true;
            current.push(candidates[i]);
            recurse(weights, requestor, candidates, k, current, used, best);
            current.pop();
            used[i] = false;
        }
    }

    recurse(
        weights,
        requestor,
        candidates,
        k,
        &mut current,
        &mut used,
        &mut best,
    );
    best
}

/// Evaluates the bottleneck weight of an explicit path (helpers in path order
/// followed by the requestor).
pub fn path_bottleneck<W: LinkWeights>(weights: &W, path: &[NodeId], requestor: NodeId) -> f64 {
    let mut max_w = 0.0f64;
    for w in path.windows(2) {
        max_w = max_w.max(weights.weight(w[0], w[1]));
    }
    if let Some(&last) = path.last() {
        max_w = max_w.max(weights.weight(last, requestor));
    }
    max_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_weights(n: usize, seed: u64) -> WeightMatrix {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.01..1.0)).collect();
        WeightMatrix::new(n, weights)
    }

    #[test]
    fn finds_obviously_best_path() {
        // Three candidates, k = 2. Links into node 0 (requestor): from 1
        // weight 0.1, from 2 weight 0.9, from 3 weight 0.5. Links among
        // helpers: 2->1 = 0.2, 3->1 = 0.8, others high.
        let inf = 10.0;
        #[rustfmt::skip]
        let weights = WeightMatrix::new(4, vec![
            // to:  0     1     2     3
            inf, inf, inf, inf, // from 0
            0.1, inf, inf, inf, // from 1
            0.9, 0.2, inf, inf, // from 2
            0.5, 0.8, inf, inf, // from 3
        ]);
        let result = optimal_path(&weights, 0, &[1, 2, 3], 2).unwrap();
        assert_eq!(result.path, vec![2, 1]);
        assert!((result.bottleneck_weight - 0.2).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_brute_force_on_small_instances() {
        for seed in 0..20 {
            let weights = random_weights(8, seed);
            let candidates: Vec<NodeId> = (1..8).collect();
            let fast = optimal_path(&weights, 0, &candidates, 4).unwrap();
            let slow = brute_force_path(&weights, 0, &candidates, 4).unwrap();
            assert!(
                (fast.bottleneck_weight - slow.bottleneck_weight).abs() < 1e-12,
                "seed {seed}: {} vs {}",
                fast.bottleneck_weight,
                slow.bottleneck_weight
            );
        }
    }

    #[test]
    fn bottleneck_matches_reported_path() {
        let weights = random_weights(10, 7);
        let candidates: Vec<NodeId> = (1..10).collect();
        let result = optimal_path(&weights, 0, &candidates, 5).unwrap();
        let evaluated = path_bottleneck(&weights, &result.path, 0);
        assert!((evaluated - result.bottleneck_weight).abs() < 1e-12);
    }

    #[test]
    fn straggler_is_excluded() {
        // Node 3 has huge weight on every link; with enough candidates it
        // must not appear in the optimal path.
        let n = 6;
        let mut weights = vec![0.1; n * n];
        for other in 0..n {
            weights[3 * n + other] = 100.0;
            weights[other * n + 3] = 100.0;
        }
        let weights = WeightMatrix::new(n, weights);
        let result = optimal_path(&weights, 0, &[1, 2, 3, 4, 5], 3).unwrap();
        assert!(!result.path.contains(&3));
    }

    #[test]
    fn returns_none_without_enough_candidates() {
        let weights = random_weights(4, 1);
        assert!(optimal_path(&weights, 0, &[1, 2], 3).is_none());
        assert!(brute_force_path(&weights, 0, &[1, 2], 3).is_none());
    }

    #[test]
    fn works_on_topology_link_weights() {
        let topo = simnet::geo::north_america(4);
        let candidates: Vec<NodeId> = (1..16).collect();
        let result = optimal_path(&topo, 0, &candidates, 12).unwrap();
        assert_eq!(result.path.len(), 12);
        // The optimal bottleneck can be no better than the best link into the
        // requestor.
        let best_in = (1..16)
            .map(|n| topo.link_weight(n, 0))
            .fold(f64::INFINITY, f64::min);
        assert!(result.bottleneck_weight >= best_in - 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn pruned_search_is_optimal(seed in any::<u64>()) {
            let weights = random_weights(7, seed);
            let candidates: Vec<NodeId> = (1..7).collect();
            let fast = optimal_path(&weights, 0, &candidates, 4).unwrap();
            let slow = brute_force_path(&weights, 0, &candidates, 4).unwrap();
            prop_assert!((fast.bottleneck_weight - slow.bottleneck_weight).abs() < 1e-12);
        }

        /// Unlike `pruned_search_is_optimal` (which only draws the RNG seed),
        /// this drives every entry of the matrix — and the instance size —
        /// from proptest strategies, so a failure reports the offending
        /// matrix rather than an opaque seed.
        #[test]
        fn pruned_search_matches_brute_force_on_arbitrary_matrices(
            n in 4usize..8,
            k in 1usize..4,
            entries in proptest::collection::vec(0.001..100.0f64, 49..50),
        ) {
            // `entries` is sampled at the largest size (7 * 7); smaller
            // instances use its prefix (the shim has no flat-map).
            let weights = WeightMatrix::new(n, entries[..n * n].to_vec());
            let candidates: Vec<NodeId> = (1..n).collect();
            let fast = optimal_path(&weights, 0, &candidates, k).unwrap();
            let slow = brute_force_path(&weights, 0, &candidates, k).unwrap();
            prop_assert!(
                (fast.bottleneck_weight - slow.bottleneck_weight).abs() < 1e-9,
                "pruned {} vs brute-force {}",
                fast.bottleneck_weight,
                slow.bottleneck_weight
            );
            // The reported bottleneck must be consistent with the reported path.
            let evaluated = path_bottleneck(&weights, &fast.path, 0);
            prop_assert!((evaluated - fast.bottleneck_weight).abs() < 1e-9);
        }
    }
}
