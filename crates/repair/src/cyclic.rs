//! Cyclic repair pipelining for requestors behind a limited edge link
//! (§4.1).
//!
//! The basic linear path delivers every repaired slice to the requestor from
//! the single last helper, so a slow edge link between the storage system and
//! the requestor throttles the whole repair. The cyclic version partitions
//! the `s` slices into groups of `k - 1`; slice `p` of a group traverses the
//! cyclic path starting at helper `p`
//! (`N_{p} -> N_{p+1} -> ... -> N_{p-1}`), and the last helper of each cyclic
//! path then delivers the repaired slice to the requestor. The requestor
//! therefore reads from `k - 1` helpers in parallel, and the delivery of one
//! group overlaps with the repair of the next.

use simnet::{Schedule, TaskId};

use crate::SingleRepairJob;

/// Builds the cyclic repair-pipelining schedule.
#[allow(clippy::needless_range_loop)] // wave loops index the pending-slice table
pub fn schedule(job: &SingleRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.slice_count();
    let k = job.k();
    if k == 1 {
        // Degenerate case: a single helper simply streams the block.
        for j in 0..slices {
            let len = job.layout.slice_len(j) as u64;
            let read = s.disk_read(job.helpers[0], len, &[]);
            let combine = s.compute(job.helpers[0], len, &[read]);
            s.transfer(job.helpers[0], job.requestor, len, &[combine]);
        }
        return s;
    }

    // Per-helper disk reads of each slice.
    let disk: Vec<Vec<TaskId>> = job
        .helpers
        .iter()
        .map(|&h| {
            (0..slices)
                .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
                .collect()
        })
        .collect();

    let group_size = k - 1;
    // Tasks are submitted wave by wave (hop 0 of every slice in the group,
    // then hop 1, ...), matching the order in which the work becomes ready:
    // within a wave, the group's slices occupy disjoint inter-helper links,
    // and the one helper that is idle in that wave delivers a repaired slice
    // of the *previous* group to the requestor — the phase overlap described
    // in §4.1.
    //
    // pending[pos] = (final combine task, slice index, final helper) of the
    // previous group's slice at position `pos`, not yet delivered.
    let mut pending: Vec<Option<(TaskId, usize, usize)>> = vec![None; group_size];
    let mut group_start = 0usize;
    while group_start < slices {
        let group: Vec<usize> = (group_start..(group_start + group_size).min(slices)).collect();
        let mut incoming: Vec<Option<TaskId>> = vec![None; group.len()];
        for step in 0..group_size {
            // Deliver the previous group's slice whose cyclic path ended at
            // the helper that is idle in this wave.
            if let Some((combine, j, sender)) = pending[step].take() {
                let slice_len = job.layout.slice_len(j) as u64;
                s.transfer(job.helpers[sender], job.requestor, slice_len, &[combine]);
            }
            // Forwarding wave: slice at position `pos` moves from helper
            // (pos + step) to helper (pos + step + 1).
            for (pos, &j) in group.iter().enumerate() {
                let slice_len = job.layout.slice_len(j) as u64;
                let sender = (pos + step) % k;
                let receiver = (pos + step + 1) % k;
                let mut deps = vec![disk[sender][j]];
                if let Some(inc) = incoming[pos] {
                    deps.push(inc);
                }
                let combine = s.compute(job.helpers[sender], slice_len, &deps);
                let t = s.transfer(
                    job.helpers[sender],
                    job.helpers[receiver],
                    slice_len,
                    &[combine],
                );
                incoming[pos] = Some(t);
            }
        }
        // The path of slice `pos` ends at helper (pos + k - 1), which adds
        // its own contribution; the delivery itself is interleaved into the
        // next group's waves.
        for (pos, &j) in group.iter().enumerate() {
            let slice_len = job.layout.slice_len(j) as u64;
            let final_helper = (pos + k - 1) % k;
            let incoming_task = incoming[pos].expect("path has at least one hop");
            let final_combine = s.compute(
                job.helpers[final_helper],
                slice_len,
                &[incoming_task, disk[final_helper][j]],
            );
            pending[pos] = Some((final_combine, j, final_helper));
        }
        group_start += group_size;
    }
    // Deliver the last group's slices.
    for entry in pending.into_iter().flatten() {
        let (combine, j, sender) = entry;
        let slice_len = job.layout.slice_len(j) as u64;
        s.transfer(job.helpers[sender], job.requestor, slice_len, &[combine]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, Topology, GBIT, MBIT};

    const MIB: usize = 1024 * 1024;

    #[test]
    fn matches_basic_rp_on_homogeneous_network() {
        let block = 32 * MIB;
        let layout = SliceLayout::new(block, 32 * 1024);
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let sim = Simulator::new(Topology::flat(12, GBIT), CostModel::network_only());
        let cyclic_time = sim.run(&schedule(&job)).makespan;
        let basic_time = sim.run(&crate::rp::schedule(&job)).makespan;
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        assert!((cyclic_time - basic_time).abs() / basic_time < 0.05);
        assert!(cyclic_time < 1.05 * timeslot);
    }

    #[test]
    fn beats_basic_rp_under_limited_edge_bandwidth() {
        // Figure 8(g): 1 Gb/s inside the storage system, 100 Mb/s from every
        // helper to the requestor.
        let block = 64 * MIB;
        let layout = SliceLayout::new(block, 32 * 1024);
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let mut topo = Topology::flat(12, GBIT);
        topo.limit_ingress(0, 100.0 * MBIT);
        let sim = Simulator::new(topo, CostModel::network_only());
        let cyclic_time = sim.run(&schedule(&job)).makespan;
        let basic_time = sim.run(&crate::rp::schedule(&job)).makespan;
        // The basic version is bottlenecked by the single delivery link; the
        // cyclic version spreads delivery over k-1 edge links.
        assert!(
            cyclic_time < 0.4 * basic_time,
            "cyclic {cyclic_time} vs basic {basic_time}"
        );
    }

    #[test]
    fn requestor_reads_from_k_minus_1_helpers() {
        let block = 4 * MIB;
        let layout = SliceLayout::new(block, 256 * 1024);
        let job = SingleRepairJob::new(vec![1, 2, 3, 4, 5], 0, layout);
        let sim = Simulator::new(Topology::flat(7, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        let delivery_links: Vec<_> = report
            .link_bytes
            .keys()
            .filter(|(_, dst)| *dst == 0)
            .collect();
        assert_eq!(delivery_links.len(), 4);
    }

    #[test]
    fn total_traffic_is_k_blocks_worth() {
        let block = 4 * MIB;
        let layout = SliceLayout::new(block, 256 * 1024);
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, layout);
        let sim = Simulator::new(Topology::flat(6, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        assert_eq!(report.network_bytes, 4 * block as u64);
    }

    #[test]
    fn single_helper_degenerate_case() {
        let layout = SliceLayout::new(MIB, 128 * 1024);
        let job = SingleRepairJob::new(vec![1], 0, layout);
        let sim = Simulator::new(Topology::flat(2, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        assert_eq!(report.network_bytes, MIB as u64);
    }
}
