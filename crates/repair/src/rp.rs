//! Repair pipelining over a linear path (§3.2), plus the baseline
//! implementations compared in §6.4 (`Pipe-B`, `Pipe-S`).
//!
//! The helpers are arranged as a linear path
//! `helpers[0] -> helpers[1] -> ... -> helpers[k-1] -> requestor`. The failed
//! block is repaired in `s` slices: helper `i` combines the partial slice it
//! receives with its own slice and forwards the new partial slice downstream.
//! Transfers of different slices over different links proceed in parallel, so
//! the repair time approaches a single timeslot (`1 + (k-1)/s`).

use simnet::{Schedule, TaskId};

use crate::SingleRepairJob;

/// Builds the repair-pipelining schedule (the paper's `RP` implementation,
/// with receive / read / compute / send fully parallelised inside each
/// helper).
pub fn schedule(job: &SingleRepairJob) -> Schedule {
    build(job, Variant::Parallel)
}

/// Builds the block-level pipelining baseline (`Pipe-B`): the same linear
/// path, but each helper forwards a whole partially-repaired block, so only
/// one link is active at a time and the repair takes `k` timeslots.
pub fn schedule_pipe_b(job: &SingleRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let block = job.layout.block_size as u64;
    let path = path_nodes(job);
    let mut prev: Option<TaskId> = None;
    for w in path.windows(2) {
        let (src, dst) = (w[0], w[1]);
        let read = s.disk_read(src, block, &[]);
        let deps: Vec<TaskId> = match prev {
            Some(p) => vec![p, read],
            None => vec![read],
        };
        let combine = s.compute(src, block, &deps);
        let t = s.transfer(src, dst, block, &[combine]);
        prev = Some(t);
    }
    s
}

/// Builds the serialised slice-level baseline (`Pipe-S`): slices are
/// pipelined along the path, but each helper performs the per-slice
/// sub-operations (receive, read, compute, send) strictly one after another,
/// so receiving slice `j+1` cannot overlap with sending slice `j`.
pub fn schedule_pipe_s(job: &SingleRepairJob) -> Schedule {
    build(job, Variant::Serialised)
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Parallel,
    Serialised,
}

fn path_nodes(job: &SingleRepairJob) -> Vec<simnet::NodeId> {
    let mut path = job.helpers.clone();
    path.push(job.requestor);
    path
}

fn build(job: &SingleRepairJob, variant: Variant) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.slice_count();
    let k = job.k();
    // Per-helper disk reads of each slice.
    let disk: Vec<Vec<TaskId>> = job
        .helpers
        .iter()
        .map(|&h| {
            (0..slices)
                .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
                .collect()
        })
        .collect();

    // outgoing[i][j]: the transfer of slice j from helper i to the next node.
    // Used to chain the pipeline and, in the serialised variant, to force the
    // per-helper handshake.
    let mut outgoing: Vec<Vec<Option<TaskId>>> = vec![vec![None; slices]; k];

    // Tasks are emitted in wavefront order (diagonal d = slice index + hop
    // index), which is the order a full pipeline actually executes them.
    // This keeps the submission-order simulator from idling shared links
    // when many of these schedules are interleaved (full-node recovery).
    for d in 0..(slices + k - 1) {
        // Within a wave, hops are emitted in descending order so that the
        // serialised variant's handshake partner (hop i+1 of the previous
        // slice, which shares this wave) already exists.
        for i in (0..k).rev() {
            let Some(j) = d.checked_sub(i) else { continue };
            if j >= slices {
                continue;
            }
            let slice_len = job.layout.slice_len(j) as u64;
            let node = job.helpers[i];
            let next = if i + 1 < k {
                job.helpers[i + 1]
            } else {
                job.requestor
            };
            // Combine the received partial slice (if any) with the local
            // slice.
            let mut deps = vec![disk[i][j]];
            if i > 0 {
                let incoming = outgoing[i - 1][j].expect("upstream hop emitted in earlier wave");
                deps.push(incoming);
            }
            let combine = s.compute(node, slice_len, &deps);
            let mut transfer_deps = vec![combine];
            if variant == Variant::Serialised && j > 0 && i + 1 < k {
                // The downstream helper runs its per-slice sub-operations
                // strictly in series, so it only accepts slice j after it has
                // finished forwarding slice j-1 (the Pipe-S baseline of
                // §6.4).
                if let Some(downstream_prev) = outgoing[i + 1][j - 1] {
                    transfer_deps.push(downstream_prev);
                }
            }
            let t = s.transfer(node, next, slice_len, &transfer_deps);
            outgoing[i][j] = Some(t);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, Topology, GBIT};

    const MIB: usize = 1024 * 1024;

    fn sim(nodes: usize) -> Simulator {
        Simulator::new(Topology::flat(nodes, GBIT), CostModel::network_only())
    }

    #[test]
    fn approaches_one_timeslot() {
        let block = 64 * MIB;
        let job = SingleRepairJob::new((1..=10).collect(), 0, SliceLayout::new(block, 32 * 1024));
        let report = sim(12).run(&schedule(&job));
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::rp_single(10, 2048) * timeslot;
        assert!(
            (report.makespan - expected).abs() / expected < 0.02,
            "makespan {} vs expected {}",
            report.makespan,
            expected
        );
        // Within 1% of the normal read time for a single block.
        assert!(report.makespan < 1.01 * timeslot);
    }

    #[test]
    fn repair_time_is_independent_of_k() {
        let block = 16 * MIB;
        let layout = SliceLayout::new(block, 32 * 1024);
        let times: Vec<f64> = [6usize, 10, 12]
            .iter()
            .map(|&k| {
                let job = SingleRepairJob::new((1..=k).collect(), 0, layout);
                sim(k + 2).run(&schedule(&job)).makespan
            })
            .collect();
        // The (k-1)/s term changes the repair time by well under 3% across
        // this range of k (s = 512 slices here).
        let spread = (times[2] - times[0]).abs() / times[0];
        assert!(
            spread < 0.03,
            "repair time should not grow with k: {times:?}"
        );
    }

    #[test]
    fn no_link_carries_more_than_one_block() {
        let block = 8 * MIB;
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, SliceLayout::new(block, 256 * 1024));
        let report = sim(6).run(&schedule(&job));
        assert_eq!(report.network_bytes, 4 * block as u64);
        assert_eq!(report.max_link_bytes, block as u64);
        assert_eq!(report.links_used(), 4);
        assert!((report.link_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_formula_for_few_slices() {
        // With s = 4 slices the (k-1)/s term is large and must be visible.
        let block = 4 * MIB;
        let job = SingleRepairJob::new(vec![1, 2, 3, 4, 5], 0, SliceLayout::new(block, MIB));
        let report = sim(8).run(&schedule(&job));
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::rp_single(5, 4) * timeslot;
        assert!((report.makespan - expected).abs() / expected < 0.01);
    }

    #[test]
    fn pipe_b_takes_k_timeslots() {
        let block = 16 * MIB;
        let job = SingleRepairJob::new((1..=6).collect(), 0, SliceLayout::new(block, 32 * 1024));
        let report = sim(8).run(&schedule_pipe_b(&job));
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::pipe_b_single(6) * timeslot;
        assert!((report.makespan - expected).abs() / expected < 0.01);
    }

    #[test]
    fn pipe_s_is_about_twice_rp() {
        let block = 16 * MIB;
        let layout = SliceLayout::new(block, 32 * 1024);
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let rp_time = sim(12).run(&schedule(&job)).makespan;
        let pipe_s_time = sim(12).run(&schedule_pipe_s(&job)).makespan;
        let ratio = pipe_s_time / rp_time;
        assert!(
            ratio > 1.6 && ratio < 2.4,
            "Pipe-S should be roughly 2x slower than RP, got {ratio}"
        );
    }

    #[test]
    fn ordering_of_schemes_matches_paper() {
        // RP < PPR < Pipe-B ~= conventional on a homogeneous network.
        let block = 32 * MIB;
        let layout = SliceLayout::new(block, 64 * 1024);
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let s = sim(12);
        let rp_time = s.run(&schedule(&job)).makespan;
        let ppr_time = s.run(&crate::ppr::schedule(&job)).makespan;
        let conv_time = s.run(&crate::conventional::schedule(&job)).makespan;
        let pipe_b_time = s.run(&schedule_pipe_b(&job)).makespan;
        assert!(rp_time < ppr_time);
        assert!(ppr_time < conv_time);
        assert!((pipe_b_time - conv_time).abs() / conv_time < 0.05);
    }
}
