//! Partial-parallel repair (PPR) \[Mitra et al., EuroSys'16\] (§2.2).
//!
//! PPR distributes the repair over a binary aggregation tree: in each round,
//! pairs of nodes combine their partial results over disjoint links, and the
//! final aggregate reaches the requestor after `ceil(log2(k + 1))` rounds.
//! Rounds are block-synchronous: a node only forwards its partial block after
//! it has received and combined the whole incoming block, which is why PPR
//! does not reach the single-timeslot repair time of repair pipelining.

use simnet::{NodeId, Schedule, TaskId};

use crate::SingleRepairJob;

/// The pairwise aggregation rounds of PPR for a given helper list and
/// requestor: each round is a list of `(sender, receiver)` pairs over
/// disjoint nodes; the requestor is the final aggregation root.
pub fn aggregation_rounds(helpers: &[NodeId], requestor: NodeId) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut active: Vec<NodeId> = helpers.to_vec();
    active.push(requestor);
    let mut rounds = Vec::new();
    while active.len() > 1 {
        let mut round = Vec::new();
        let mut next = Vec::new();
        let mut i = 0;
        while i < active.len() {
            if i + 1 < active.len() {
                round.push((active[i], active[i + 1]));
                next.push(active[i + 1]);
                i += 2;
            } else {
                next.push(active[i]);
                i += 1;
            }
        }
        rounds.push(round);
        active = next;
    }
    rounds
}

/// Builds the PPR schedule for a single-block repair.
pub fn schedule(job: &SingleRepairJob) -> Schedule {
    let mut s = Schedule::new();
    let slices = job.slice_count();
    let k = job.k();

    // Every helper reads its local block slice by slice.
    // ready[node] holds, per slice, the task after which the node's current
    // partial result for that slice is up to date.
    let mut ready: std::collections::HashMap<NodeId, Vec<TaskId>> =
        std::collections::HashMap::new();
    for &h in &job.helpers {
        let reads: Vec<TaskId> = (0..slices)
            .map(|j| s.disk_read(h, job.layout.slice_len(j) as u64, &[]))
            .collect();
        ready.insert(h, reads);
    }

    let rounds = aggregation_rounds(&job.helpers, job.requestor);
    for round in rounds {
        let mut new_ready: Vec<(NodeId, Vec<TaskId>)> = Vec::new();
        for (sender, receiver) in round {
            let sender_ready = ready
                .get(&sender)
                .expect("sender must hold a partial result")
                .clone();
            // Block-synchronous round: the sender starts transmitting only
            // after its whole partial block is ready.
            let barrier = s.compute(sender, 0, &sender_ready);
            let mut received: Vec<TaskId> = Vec::with_capacity(slices);
            for j in 0..slices {
                let slice_len = job.layout.slice_len(j) as u64;
                let t = s.transfer(sender, receiver, slice_len, &[barrier, sender_ready[j]]);
                // Combine with the receiver's current partial result (or its
                // own block read) if it has one.
                let mut deps = vec![t];
                if let Some(r) = ready.get(&receiver) {
                    deps.push(r[j]);
                }
                let c = s.compute(receiver, 2 * slice_len, &deps);
                received.push(c);
            }
            new_ready.push((receiver, received));
        }
        for (node, tasks) in new_ready {
            ready.insert(node, tasks);
        }
    }
    let _ = k;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ecc::slice::SliceLayout;
    use simnet::{CostModel, Simulator, Topology, GBIT};

    const MIB: usize = 1024 * 1024;

    #[test]
    fn round_structure_matches_paper_example() {
        // Figure 2(b): k = 4 takes three rounds.
        let rounds = aggregation_rounds(&[1, 2, 3, 4], 0);
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0], vec![(1, 2), (3, 4)]);
        assert_eq!(rounds[1], vec![(2, 4)]);
        assert_eq!(rounds[2], vec![(4, 0)]);
    }

    #[test]
    fn round_count_is_log2_k_plus_1() {
        for k in 2..=20 {
            let helpers: Vec<NodeId> = (1..=k).collect();
            let rounds = aggregation_rounds(&helpers, 0);
            assert_eq!(rounds.len(), analysis::ppr_single(k) as usize, "k = {k}");
        }
    }

    #[test]
    fn takes_log_timeslots_on_homogeneous_network() {
        let block = 64 * MIB;
        let job = SingleRepairJob::new((1..=10).collect(), 0, SliceLayout::new(block, 1024 * 1024));
        let sim = Simulator::new(Topology::flat(12, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        let expected = analysis::ppr_single(10) * timeslot;
        assert!(
            (report.makespan - expected).abs() / expected < 0.05,
            "makespan {} vs expected {}",
            report.makespan,
            expected
        );
    }

    #[test]
    fn faster_than_conventional_but_slower_than_one_timeslot() {
        let block = 16 * MIB;
        let job = SingleRepairJob::new((1..=10).collect(), 0, SliceLayout::new(block, 256 * 1024));
        let sim = Simulator::new(Topology::flat(12, GBIT), CostModel::network_only());
        let ppr_time = sim.run(&schedule(&job)).makespan;
        let conv_time = sim.run(&crate::conventional::schedule(&job)).makespan;
        let timeslot = analysis::timeslot_seconds(block, GBIT);
        assert!(ppr_time < conv_time);
        assert!(ppr_time > 1.5 * timeslot);
    }

    #[test]
    fn total_traffic_is_k_blocks() {
        let block = 4 * MIB;
        let job = SingleRepairJob::new(vec![1, 2, 3, 4], 0, SliceLayout::new(block, MIB));
        let sim = Simulator::new(Topology::flat(6, GBIT), CostModel::network_only());
        let report = sim.run(&schedule(&job));
        assert_eq!(report.network_bytes, 4 * block as u64);
        // Traffic is spread over more links than conventional repair.
        assert_eq!(report.links_used(), 4);
        assert!(report.max_link_bytes <= 2 * block as u64);
    }
}
