//! Zipfian object popularity with a precomputed CDF.
//!
//! Object `i` (0-based) is drawn with probability proportional to
//! `1 / (i + 1)^theta`. `theta = 0` degenerates to uniform; `theta ≈ 1`
//! matches the skew most object-store traces report. Sampling is a binary
//! search over the cumulative table — no per-draw powf.

use rand::{Rng, RngCore};

/// Precomputed zipfian sampler over `0..n`.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` objects with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// If `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty population");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "zipf skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one object index in `0..n`.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative probability covers `u`.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn uniform_when_theta_is_zero() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_head_dominates() {
        let zipf = ZipfSampler::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let mut head = 0usize;
        const DRAWS: usize = 100_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 over 1k objects the top 10 carry ~39% of mass.
        assert!(head > DRAWS / 3, "head draws: {head}");
    }

    #[test]
    fn samples_cover_the_range_and_stay_in_bounds() {
        let zipf = ZipfSampler::new(3, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            seen[zipf.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
