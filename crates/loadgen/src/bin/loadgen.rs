//! Command-line front end for the open-loop load harness.
//!
//! ```sh
//! loadgen --transport reactor --rate 2000 --duration 10 \
//!     --mix 10:85:5 --zipf 0.99
//! ```
//!
//! Prints the latency table to stdout; when `BENCH_RESULTS_LOG` is set (or
//! `--results-log` is given), appends the per-class percentile records in
//! the extended TSV format `bench_json` folds into `BENCH_results.json`.
//! Exits non-zero if the harness cannot run or produced no completed ops —
//! a load test that measured nothing must not look green.

use std::io::Write;
use std::time::Duration;

use ecpipe::{EcPipeBuilder, TransportChoice};
use ecpipe_loadgen::{HarnessConfig, WorkloadMix};

fn fail(msg: String) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--smoke] [--transport channel|tcp|reactor] [--rate OPS_PER_SEC]\n\
         \x20              [--duration SECONDS] [--workers N] [--objects N] [--object-size BYTES]\n\
         \x20              [--zipf THETA] [--mix PUT:GET:DEGRADED] [--seed N] [--results-log PATH]"
    );
    std::process::exit(2);
}

fn parse_mix(spec: &str) -> Option<WorkloadMix> {
    let parts: Vec<u32> = spec
        .split(':')
        .map(|p| p.parse::<u32>().ok())
        .collect::<Option<Vec<u32>>>()?;
    let [put, get, degraded] = parts.as_slice() else {
        return None;
    };
    Some(WorkloadMix {
        put: *put,
        get: *get,
        degraded: *degraded,
    })
}

fn main() {
    let mut config = HarnessConfig::default();
    let mut transport = TransportChoice::Channel;
    let mut results_log = std::env::var("BENCH_RESULTS_LOG").ok();

    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| fail(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                let keep = (config.workers, config.seed);
                config = HarnessConfig::smoke();
                (config.workers, config.seed) = keep;
            }
            "--transport" => {
                transport = match value(&mut it, "--transport").as_str() {
                    "channel" => TransportChoice::Channel,
                    "tcp" => TransportChoice::Tcp,
                    "reactor" => TransportChoice::Reactor,
                    other => fail(format!("unknown transport {other:?}")),
                };
            }
            "--rate" => {
                config.rate = value(&mut it, "--rate")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate wants a number".to_string()));
            }
            "--duration" => {
                let secs: f64 = value(&mut it, "--duration")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| fail("--duration wants positive seconds".to_string()));
                config.duration = Duration::from_secs_f64(secs);
            }
            "--workers" => {
                config.workers = value(&mut it, "--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers wants a count".to_string()));
            }
            "--objects" => {
                config.objects = value(&mut it, "--objects")
                    .parse()
                    .unwrap_or_else(|_| fail("--objects wants a count".to_string()));
            }
            "--object-size" => {
                config.object_size = value(&mut it, "--object-size")
                    .parse()
                    .unwrap_or_else(|_| fail("--object-size wants bytes".to_string()));
            }
            "--zipf" => {
                config.zipf_theta = value(&mut it, "--zipf")
                    .parse()
                    .unwrap_or_else(|_| fail("--zipf wants a number".to_string()));
            }
            "--mix" => {
                let spec = value(&mut it, "--mix");
                config.mix = parse_mix(&spec)
                    .unwrap_or_else(|| fail(format!("bad --mix {spec:?}, want PUT:GET:DEGRADED")));
            }
            "--seed" => {
                config.seed = value(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed wants a number".to_string()));
            }
            "--results-log" => results_log = Some(value(&mut it, "--results-log")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown argument {other:?}");
                usage();
            }
        }
    }

    let pipe = EcPipeBuilder::new()
        .transport(transport)
        .build()
        .unwrap_or_else(|e| fail(format!("cannot build runtime: {e}")));
    let report = ecpipe_loadgen::run(&pipe, &config)
        .unwrap_or_else(|e| fail(format!("harness failed: {e}")));
    print!("{}", report.render());
    pipe.shutdown();

    if report.overall.ops == 0 {
        fail("no operations completed — nothing was measured".to_string());
    }
    if let Some(path) = results_log {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| fail(format!("cannot open results log {path}: {e}")));
        file.write_all(report.bench_lines().as_bytes())
            .unwrap_or_else(|e| fail(format!("cannot append to results log {path}: {e}")));
        println!("loadgen: appended percentile records to {path}");
    }
}
