//! HDR-style latency histogram: logarithmic buckets of 64 linear
//! subbuckets each, so relative error stays under ~1.6% across the whole
//! nanosecond range without storing every sample. Recording is O(1) and
//! allocation-free; quantile queries walk the (fixed, small) bucket array.

/// Subbuckets per power-of-two bucket. 64 keeps relative quantile error
/// below 1/64 while the whole table stays a few KiB.
const SUBBUCKETS: u64 = 64;
const SUBBUCKET_BITS: u32 = 6;

/// Bucket count covering the full `u64` range: one exact bucket for values
/// below [`SUBBUCKETS`], then one 64-slot bucket per remaining bit.
const SLOTS: usize = (SUBBUCKETS as usize) * (64 - SUBBUCKET_BITS as usize + 1);

/// Fixed-size log-linear histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; SLOTS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn slot_of(value: u64) -> usize {
    if value < SUBBUCKETS {
        return value as usize;
    }
    // `value` has its top bit at position `msb >= 6`; the bucket for that
    // bit keeps the 6 bits below it, giving 64 linear subbuckets spanning
    // [2^msb, 2^(msb+1)).
    let msb = 63 - value.leading_zeros();
    let bucket = (msb - SUBBUCKET_BITS + 1) as usize;
    let sub = ((value >> (msb - SUBBUCKET_BITS)) - SUBBUCKETS) as usize;
    bucket * SUBBUCKETS as usize + sub
}

/// Midpoint of the slot's value range — the value reported for quantiles
/// that land in the slot.
fn value_of(slot: usize) -> u64 {
    let bucket = slot as u64 >> SUBBUCKET_BITS;
    let sub = slot as u64 & (SUBBUCKETS - 1);
    if bucket == 0 {
        return sub;
    }
    let width = 1u64 << (bucket - 1);
    (SUBBUCKETS + sub) * width + width / 2
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; SLOTS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[slot_of(ns)] += 1;
        self.total += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples (not bucket-quantized).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The latency at quantile `q` in `[0, 1]`, to within the slot width
    /// (~1.6% relative). Clamped to the exact observed min/max so p0/p100
    /// never report outside the recorded range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (slot, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return value_of(slot).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUBBUCKETS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUBBUCKETS - 1);
        assert_eq!(h.count(), SUBBUCKETS);
    }

    #[test]
    fn slots_are_monotone_and_in_range() {
        let mut last = None;
        for bits in 0..64u32 {
            for v in [1u64 << bits, (1u64 << bits) | ((1u64 << bits) >> 1)] {
                let slot = slot_of(v);
                assert!(slot < SLOTS, "slot {slot} for {v}");
                if let Some(prev) = last {
                    assert!(slot >= prev, "slot went backwards at {v}");
                }
                last = Some(slot);
            }
        }
        assert_eq!(slot_of(u64::MAX), SLOTS - 1);
    }

    #[test]
    fn quantiles_stay_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 10k samples spread over three decades.
        for i in 0..10_000u64 {
            h.record(1_000 + i * 997);
        }
        for (q, exact) in [(0.5, 1_000 + 4_999 * 997), (0.99, 1_000 + 9_899 * 997)] {
            let approx = h.quantile(q) as f64;
            let err = (approx - exact as f64).abs() / exact as f64;
            assert!(err < 0.02, "q={q}: {approx} vs {exact} (err {err})");
        }
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let v = i * i + 17;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
