//! Open-loop load harness for the [`EcPipe`] façade.
//!
//! A single pacer thread emits operations at a configured arrival rate into
//! an unbounded queue, independent of how fast the system drains them —
//! the *open-loop* model, where a slow server cannot slow the offered load
//! down and queueing delay therefore shows up in the measured latency
//! (closed-loop harnesses famously hide it; see "coordinated omission").
//! Each op is stamped with its *scheduled* arrival time, and latency is
//! measured from that stamp, not from when a worker happened to pick the op
//! up.
//!
//! Traffic is a weighted mix of puts (fresh objects), gets over a
//! preloaded population with zipfian popularity, and degraded reads (a
//! block of the chosen object is erased first, so the read has to heal it
//! through the repair pipeline). Per-op latencies land in an HDR-style
//! [`LatencyHistogram`] per class; the final [`HarnessReport`] carries
//! p50/p99/p999 per class and overall, plus the peak number of in-flight
//! ops — the headline numbers the paper's evaluation reports for repair
//! under load.

pub mod hist;
pub mod zipf;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ecpipe::{EcPipe, EcPipeError, Result};
use rand::{Rng, SeedableRng, StdRng};

use crate::hist::LatencyHistogram;
use crate::zipf::ZipfSampler;

/// One operation class in the generated mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Write a fresh object (object names never collide, so puts measure
    /// the full encode-and-place path, not overwrite handling).
    Put,
    /// Read a preloaded object chosen by zipfian popularity.
    Get,
    /// Erase one block of the chosen object, then read it — forcing a
    /// degraded read through the repair manager.
    DegradedGet,
}

impl OpClass {
    /// Stable lowercase label used in reports and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::DegradedGet => "degraded_get",
        }
    }
}

const CLASSES: [OpClass; 3] = [OpClass::Put, OpClass::Get, OpClass::DegradedGet];

/// Relative weights of the three op classes.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Weight of [`OpClass::Put`].
    pub put: u32,
    /// Weight of [`OpClass::Get`].
    pub get: u32,
    /// Weight of [`OpClass::DegradedGet`].
    pub degraded: u32,
}

impl Default for WorkloadMix {
    /// A read-heavy mix with a steady trickle of degraded reads.
    fn default() -> Self {
        WorkloadMix {
            put: 10,
            get: 85,
            degraded: 5,
        }
    }
}

impl WorkloadMix {
    fn total(&self) -> u32 {
        self.put + self.get + self.degraded
    }

    fn pick(&self, rng: &mut StdRng) -> OpClass {
        let r = rng.gen_range(0..self.total());
        if r < self.put {
            OpClass::Put
        } else if r < self.put + self.get {
            OpClass::Get
        } else {
            OpClass::DegradedGet
        }
    }
}

/// Harness knobs. Every field has a working default sized for a quick
/// local run; CI's smoke scenario shrinks duration further.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Target arrival rate, operations per second.
    pub rate: f64,
    /// How long the pacer keeps emitting ops.
    pub duration: Duration,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Preloaded object population size.
    pub objects: usize,
    /// Size of each object, bytes.
    pub object_size: usize,
    /// Zipfian skew over the preloaded population (0 = uniform).
    pub zipf_theta: f64,
    /// Class weights.
    pub mix: WorkloadMix,
    /// Seed for every random choice the harness makes.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            rate: 2_000.0,
            duration: Duration::from_secs(10),
            workers: 8,
            objects: 64,
            object_size: 64 * 1024,
            zipf_theta: 0.99,
            mix: WorkloadMix::default(),
            seed: 0x5eed,
        }
    }
}

impl HarnessConfig {
    /// A seconds-long scenario small enough for CI: a high enough arrival
    /// rate to build a deep queue, short enough to stay well inside a job
    /// timeout.
    pub fn smoke() -> Self {
        HarnessConfig {
            rate: 3_000.0,
            duration: Duration::from_secs(2),
            objects: 16,
            object_size: 16 * 1024,
            ..HarnessConfig::default()
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |reason: String| Err(EcPipeError::InvalidRequest { reason });
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return bad(format!("arrival rate must be positive, got {}", self.rate));
        }
        if self.workers == 0 {
            return bad("need at least one worker".to_string());
        }
        if self.objects == 0 || self.object_size == 0 {
            return bad("need a non-empty preloaded population".to_string());
        }
        if self.mix.total() == 0 {
            return bad("workload mix has zero total weight".to_string());
        }
        if !(self.zipf_theta.is_finite() && self.zipf_theta >= 0.0) {
            return bad(format!("zipf skew must be >= 0, got {}", self.zipf_theta));
        }
        Ok(())
    }
}

/// Latency and outcome summary for one op class (or the whole run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// Ops completed (successes and failures both count — an error still
    /// occupied the pipeline).
    pub ops: u64,
    /// Ops that returned an error.
    pub errors: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
    /// Largest observed latency, nanoseconds.
    pub max_ns: u64,
}

impl ClassStats {
    fn from_histogram(h: &LatencyHistogram, errors: u64) -> Self {
        ClassStats {
            ops: h.count(),
            errors,
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.50),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
            max_ns: h.max(),
        }
    }
}

/// The harness's output: whole-run and per-class tail-latency stats.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Wall-clock time from first scheduled op to last completion.
    pub wall: Duration,
    /// The configured arrival rate.
    pub offered_rate: f64,
    /// Completions per second over the whole run.
    pub achieved_rate: f64,
    /// Peak number of ops in flight (scheduled but not yet completed) —
    /// under open-loop load this is the queue depth the system let build.
    pub peak_in_flight: usize,
    /// All classes folded together.
    pub overall: ClassStats,
    /// Stats per op class, in [`OpClass`] declaration order; classes with
    /// zero weight report zero ops.
    pub per_class: Vec<(OpClass, ClassStats)>,
}

impl HarnessReport {
    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "open-loop harness: offered {:.0}/s, achieved {:.0}/s over {:.2}s, \
             peak {} in flight\n",
            self.offered_rate,
            self.achieved_rate,
            self.wall.as_secs_f64(),
            self.peak_in_flight
        );
        out.push_str(&format!(
            "{:<14} {:>8} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "class", "ops", "errors", "p50_us", "p99_us", "p999_us", "max_us"
        ));
        let mut row = |label: &str, s: &ClassStats| {
            out.push_str(&format!(
                "{label:<14} {:>8} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                s.ops,
                s.errors,
                s.p50_ns as f64 / 1_000.0,
                s.p99_ns as f64 / 1_000.0,
                s.p999_ns as f64 / 1_000.0,
                s.max_ns as f64 / 1_000.0,
            ));
        };
        for (class, stats) in &self.per_class {
            row(class.label(), stats);
        }
        row("overall", &self.overall);
        out
    }

    /// The report as `BENCH_RESULTS_LOG` records (the criterion shim's TSV
    /// format extended with p50/p99/p999 columns): one line per class that
    /// saw traffic, plus `load_harness/overall`. `ns_per_iter` is the mean
    /// latency; `elements_per_sec` the achieved completion rate.
    pub fn bench_lines(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, stats: &ClassStats, rate: f64| {
            if stats.ops == 0 {
                return;
            }
            out.push_str(&format!(
                "load_harness/{name}\t{:.3}\t-\t{:.3}\t{}\t{}\t{}\n",
                stats.mean_ns, rate, stats.p50_ns, stats.p99_ns, stats.p999_ns
            ));
        };
        let wall = self.wall.as_secs_f64().max(f64::EPSILON);
        for (class, stats) in &self.per_class {
            line(class.label(), stats, stats.ops as f64 / wall);
        }
        line("overall", &self.overall, self.achieved_rate);
        out
    }
}

/// Pacer/worker shared in-flight gauge.
struct InFlight {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl InFlight {
    fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    fn exit(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One scheduled operation.
struct Op {
    class: OpClass,
    object: usize,
    scheduled: Instant,
}

/// Per-worker tallies, merged after the run.
struct WorkerStats {
    hists: [LatencyHistogram; 3],
    errors: [u64; 3],
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            hists: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            errors: [0; 3],
        }
    }
}

fn class_index(class: OpClass) -> usize {
    CLASSES.iter().position(|c| *c == class).unwrap()
}

fn object_name(i: usize) -> String {
    format!("lg-{i}")
}

/// Executes one op. Errors are returned, not panicked: under a hot zipfian
/// population, concurrent degraded reads race with each other's repairs and
/// the occasional loser is part of the workload, not a harness bug.
fn execute(pipe: &EcPipe, op: &Op, payload: &[u8], rng: &mut StdRng) -> Result<()> {
    match op.class {
        OpClass::Put => {
            // Fresh name per put: `put` refuses overwrites by design.
            let unique: u64 = rng.gen();
            pipe.put(&format!("lg-put-{unique:016x}"), payload)?;
        }
        OpClass::Get => {
            pipe.get(&object_name(op.object))?;
        }
        OpClass::DegradedGet => {
            let name = object_name(op.object);
            let meta = pipe.object_meta(&name)?;
            let stripe = meta.stripes[rng.gen_range(0..meta.stripes.len())];
            // Erase block 0 — always a data block, so the read that follows
            // must heal it. Erasing a random index would hit parity blocks,
            // which reads never touch: the erasures would silently pile up
            // until the stripe drops below k live blocks.
            pipe.erase_block(stripe, 0);
            pipe.get(&name)?;
        }
    }
    Ok(())
}

/// Runs the harness against `pipe` and reports tail latencies.
///
/// Preloads the object population, then paces `config.rate` arrivals per
/// second for `config.duration`, measuring each op from its scheduled
/// arrival to completion. Returns after every scheduled op has drained.
pub fn run(pipe: &EcPipe, config: &HarnessConfig) -> Result<HarnessReport> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let payload: Vec<u8> = (0..config.object_size)
        .map(|i| (i as u64).wrapping_mul(0x9e37_79b9).to_le_bytes()[0])
        .collect();
    for i in 0..config.objects {
        pipe.put(&object_name(i), &payload)?;
    }

    let zipf = ZipfSampler::new(config.objects, config.zipf_theta);
    let (tx, rx) = crossbeam::channel::unbounded::<Op>();
    let in_flight = InFlight {
        current: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
    };
    let completed = AtomicU64::new(0);
    let interval = Duration::from_secs_f64(1.0 / config.rate);

    let start = Instant::now();
    let mut merged: Option<Vec<WorkerStats>> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let rx = rx.clone();
            let (payload, in_flight, completed) = (&payload, &in_flight, &completed);
            handles.push(scope.spawn(move || {
                let mut stats = WorkerStats::new();
                let mut rng = StdRng::seed_from_u64(config.seed ^ ((w as u64) << 32));
                while let Ok(op) = rx.recv() {
                    let outcome = execute(pipe, &op, payload, &mut rng);
                    let latency = op.scheduled.elapsed().as_nanos().min(u64::MAX as u128);
                    let idx = class_index(op.class);
                    stats.hists[idx].record(latency as u64);
                    if outcome.is_err() {
                        stats.errors[idx] += 1;
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    in_flight.exit();
                }
                stats
            }));
        }
        drop(rx);

        // The pacer runs on this thread: ops arrive on schedule whether or
        // not the workers keep up (open loop). If the clock slips past
        // several scheduled arrivals, they are emitted back-to-back rather
        // than silently rescheduled.
        let mut next = Instant::now();
        let pacer_deadline = Instant::now() + config.duration;
        while Instant::now() < pacer_deadline {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            let op = Op {
                class: config.mix.pick(&mut rng),
                object: zipf.sample(&mut rng),
                scheduled: next,
            };
            in_flight.enter();
            if tx.send(op).is_err() {
                break;
            }
            next += interval;
        }
        drop(tx);

        merged = Some(handles.into_iter().map(|h| h.join().unwrap()).collect());
    });
    let wall = start.elapsed();

    let mut hists = [
        LatencyHistogram::new(),
        LatencyHistogram::new(),
        LatencyHistogram::new(),
    ];
    let mut errors = [0u64; 3];
    for stats in merged.expect("scope completed") {
        for i in 0..3 {
            hists[i].merge(&stats.hists[i]);
            errors[i] += stats.errors[i];
        }
    }
    let mut overall = LatencyHistogram::new();
    for h in &hists {
        overall.merge(h);
    }
    let done = completed.load(Ordering::Relaxed);
    Ok(HarnessReport {
        wall,
        offered_rate: config.rate,
        achieved_rate: done as f64 / wall.as_secs_f64().max(f64::EPSILON),
        peak_in_flight: in_flight.peak.load(Ordering::SeqCst),
        overall: ClassStats::from_histogram(&overall, errors.iter().sum()),
        per_class: CLASSES
            .iter()
            .enumerate()
            .map(|(i, &class)| (class, ClassStats::from_histogram(&hists[i], errors[i])))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecpipe::EcPipeBuilder;

    fn quick_pipe() -> EcPipe {
        EcPipeBuilder::new()
            .code(4, 2)
            .block_size(4 * 1024)
            .slice_size(1024)
            .build()
            .expect("build pipe")
    }

    fn quick_config() -> HarnessConfig {
        HarnessConfig {
            rate: 500.0,
            duration: Duration::from_millis(300),
            workers: 4,
            objects: 8,
            object_size: 8 * 1024,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn harness_reports_consistent_counts() {
        let pipe = quick_pipe();
        let report = run(&pipe, &quick_config()).expect("harness run");
        assert!(report.overall.ops > 0, "{}", report.render());
        let class_total: u64 = report.per_class.iter().map(|(_, s)| s.ops).sum();
        assert_eq!(report.overall.ops, class_total);
        assert!(report.peak_in_flight >= 1);
        assert!(report.overall.p50_ns > 0);
        assert!(report.overall.p99_ns >= report.overall.p50_ns);
        assert!(report.overall.p999_ns >= report.overall.p99_ns);
        assert_eq!(report.overall.errors, 0, "{}", report.render());
        pipe.shutdown();
    }

    #[test]
    fn single_class_mixes_run_clean() {
        let pipe = quick_pipe();
        let config = HarnessConfig {
            mix: WorkloadMix {
                put: 0,
                get: 0,
                degraded: 1,
            },
            rate: 200.0,
            ..quick_config()
        };
        let report = run(&pipe, &config).expect("harness run");
        assert_eq!(report.per_class[0].1.ops, 0);
        assert_eq!(report.per_class[1].1.ops, 0);
        assert!(report.per_class[2].1.ops > 0);
        assert_eq!(report.overall.errors, 0, "{}", report.render());
        pipe.shutdown();
    }

    #[test]
    fn bench_lines_follow_the_extended_tsv_format() {
        let pipe = quick_pipe();
        let report = run(&pipe, &quick_config()).expect("harness run");
        let lines = report.bench_lines();
        assert!(lines.contains("load_harness/overall\t"), "{lines}");
        for line in lines.lines() {
            let fields: Vec<&str> = line.split('\t').collect();
            assert_eq!(fields.len(), 7, "{line}");
            assert!(fields[1].parse::<f64>().unwrap() > 0.0);
            assert_eq!(fields[2], "-");
            assert!(fields[3].parse::<f64>().unwrap() > 0.0);
            for p in &fields[4..7] {
                assert!(p.parse::<u64>().unwrap() > 0, "{line}");
            }
        }
        pipe.shutdown();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let pipe = quick_pipe();
        for broken in [
            HarnessConfig {
                rate: 0.0,
                ..quick_config()
            },
            HarnessConfig {
                workers: 0,
                ..quick_config()
            },
            HarnessConfig {
                objects: 0,
                ..quick_config()
            },
            HarnessConfig {
                mix: WorkloadMix {
                    put: 0,
                    get: 0,
                    degraded: 0,
                },
                ..quick_config()
            },
        ] {
            assert!(run(&pipe, &broken).is_err());
        }
        pipe.shutdown();
    }
}
