//! Systematic Reed-Solomon codes.

use gf256::Matrix;

use crate::plan::{MultiRepairPlan, RepairPlan, RepairSource};
use crate::traits::ErasureCode;
use crate::{CodeError, Result};

/// A systematic `(n, k)` Reed-Solomon code over GF(2^8).
///
/// The generator matrix is an `n x k` Vandermonde matrix transformed into
/// systematic form, so the first `k` coded blocks equal the data blocks and
/// any `k x k` sub-matrix of the generator is invertible (MDS property).
///
/// # Examples
///
/// ```
/// use ecc::{ErasureCode, ReedSolomon};
/// let rs = ReedSolomon::new(6, 4).unwrap();
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
/// let coded = rs.encode(&data).unwrap();
/// // Lose two blocks, decode from the remaining four.
/// let available: Vec<(usize, Vec<u8>)> = vec![
///     (1, coded[1].clone()), (2, coded[2].clone()),
///     (4, coded[4].clone()), (5, coded[5].clone()),
/// ];
/// assert_eq!(rs.decode(&available).unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Systematic `n x k` generator matrix.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a new `(n, k)` Reed-Solomon code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `k == 0`, `k >= n` or
    /// `n > 256`.
    pub fn new(n: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "k must be positive".to_string(),
            });
        }
        if k >= n {
            return Err(CodeError::InvalidParameters {
                reason: format!("k ({k}) must be smaller than n ({n})"),
            });
        }
        if n > 256 {
            return Err(CodeError::InvalidParameters {
                reason: format!("n ({n}) must not exceed the field size 256"),
            });
        }
        let generator = Matrix::vandermonde(n, k)
            .into_systematic()
            .ok_or(CodeError::SingularMatrix)?;
        Ok(ReedSolomon { n, k, generator })
    }

    /// Returns the systematic generator matrix (`n x k`).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Derives the decoding coefficients of the failed blocks in terms of the
    /// chosen helper blocks: returns an `f x k` coefficient matrix `A` such
    /// that `failed_j = sum_i A[j][i] * helper_i`.
    fn repair_coefficients(&self, failed: &[usize], helpers: &[usize]) -> Result<Vec<Vec<u8>>> {
        // helpers rows of the generator, inverted, give data = D * helpers.
        let helper_rows = self.generator.select_rows(helpers);
        let decode = helper_rows.invert().ok_or(CodeError::SingularMatrix)?;
        // failed_j = g_{failed_j} * data = (g_{failed_j} * D) * helpers.
        let failed_rows = self.generator.select_rows(failed);
        let coeff = failed_rows.mul(&decode);
        Ok((0..failed.len())
            .map(|j| coeff.row(j).iter().map(|c| c.value()).collect())
            .collect())
    }

    fn validate_index(&self, index: usize) -> Result<()> {
        if index >= self.n {
            return Err(CodeError::InvalidBlockIndex { index, n: self.n });
        }
        Ok(())
    }

    fn choose_helpers(&self, failed: &[usize], available: &[usize]) -> Result<Vec<usize>> {
        let mut helpers: Vec<usize> = available
            .iter()
            .copied()
            .filter(|b| !failed.contains(b))
            .collect();
        helpers.dedup();
        if helpers.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: helpers.len(),
            });
        }
        helpers.truncate(self.k);
        Ok(helpers)
    }
}

impl ErasureCode for ReedSolomon {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("RS({},{})", self.n, self.k)
    }

    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        if data.len() != self.k {
            return Err(CodeError::InvalidBlockSize {
                reason: format!("expected {} data blocks, got {}", self.k, data.len()),
            });
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodeError::InvalidBlockSize {
                reason: "data blocks must all have the same length".to_string(),
            });
        }
        let mut coded: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        coded.extend(data.iter().cloned());
        for row in self.k..self.n {
            let mut parity = vec![0u8; len];
            for (j, block) in data.iter().enumerate() {
                gf256::mul_add_slice(self.generator.get(row, j), block, &mut parity);
            }
            coded.push(parity);
        }
        Ok(coded)
    }

    fn decode(&self, available: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>> {
        if available.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: available.len(),
            });
        }
        let chosen = &available[..self.k];
        for (idx, _) in chosen {
            self.validate_index(*idx)?;
        }
        let len = chosen[0].1.len();
        if chosen.iter().any(|(_, b)| b.len() != len) {
            return Err(CodeError::InvalidBlockSize {
                reason: "available blocks must all have the same length".to_string(),
            });
        }
        let indices: Vec<usize> = chosen.iter().map(|(i, _)| *i).collect();
        let sub = self.generator.select_rows(&indices);
        let decode = sub.invert().ok_or(CodeError::SingularMatrix)?;
        // data_j = sum_i decode[j][i] * chosen_i, evaluated with bulk kernels.
        let mut data = Vec::with_capacity(self.k);
        for j in 0..self.k {
            let mut out = vec![0u8; len];
            for (i, (_, block)) in chosen.iter().enumerate() {
                gf256::mul_add_slice(decode.get(j, i), block, &mut out);
            }
            data.push(out);
        }
        Ok(data)
    }

    fn repair_plan(&self, failed: usize, available: &[usize]) -> Result<RepairPlan> {
        self.validate_index(failed)?;
        let helpers = self.choose_helpers(&[failed], available)?;
        let coeffs = self.repair_coefficients(&[failed], &helpers)?;
        Ok(RepairPlan {
            failed,
            sources: helpers
                .iter()
                .zip(coeffs[0].iter())
                .map(|(&block_index, &coefficient)| RepairSource {
                    block_index,
                    coefficient,
                })
                .collect(),
        })
    }

    fn multi_repair_plan(&self, failed: &[usize], available: &[usize]) -> Result<MultiRepairPlan> {
        if failed.is_empty() {
            return Err(CodeError::Unrepairable {
                reason: "no failed blocks given".to_string(),
            });
        }
        if failed.len() > self.n - self.k {
            return Err(CodeError::Unrepairable {
                reason: format!(
                    "{} failures exceed fault tolerance {}",
                    failed.len(),
                    self.n - self.k
                ),
            });
        }
        for &f in failed {
            self.validate_index(f)?;
        }
        let mut failed_sorted = failed.to_vec();
        failed_sorted.sort_unstable();
        failed_sorted.dedup();
        let helpers = self.choose_helpers(&failed_sorted, available)?;
        let coefficients = self.repair_coefficients(&failed_sorted, &helpers)?;
        Ok(MultiRepairPlan {
            failed: failed_sorted,
            helpers,
            coefficients,
        })
    }

    fn fault_tolerance(&self) -> usize {
        self.n - self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen::<u8>()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(300, 10).is_err());
        assert!(ReedSolomon::new(14, 10).is_ok());
    }

    #[test]
    fn systematic_encode_keeps_data() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = random_data(6, 64, 1);
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 9);
        assert_eq!(&coded[..6], &data[..]);
    }

    #[test]
    fn decode_from_parities_only() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = random_data(4, 32, 2);
        let coded = rs.encode(&data).unwrap();
        let available: Vec<(usize, Vec<u8>)> = (6..10).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(rs.decode(&available).unwrap(), data);
    }

    #[test]
    fn decode_requires_k_blocks() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data = random_data(4, 16, 3);
        let coded = rs.encode(&data).unwrap();
        let available: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, coded[i].clone())).collect();
        assert!(matches!(
            rs.decode(&available),
            Err(CodeError::NotEnoughBlocks {
                needed: 4,
                available: 3
            })
        ));
    }

    #[test]
    fn repair_plan_reconstructs_data_block() {
        let rs = ReedSolomon::new(14, 10).unwrap();
        let data = random_data(10, 128, 4);
        let coded = rs.encode(&data).unwrap();
        let available: Vec<usize> = (0..14).filter(|&i| i != 3).collect();
        let plan = rs.repair_plan(3, &available).unwrap();
        assert_eq!(plan.helper_count(), 10);
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[3]);
    }

    #[test]
    fn repair_plan_reconstructs_parity_block() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = random_data(6, 128, 5);
        let coded = rs.encode(&data).unwrap();
        let available: Vec<usize> = (0..9).filter(|&i| i != 8).collect();
        let plan = rs.repair_plan(8, &available).unwrap();
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[8]);
    }

    #[test]
    fn repair_plan_excludes_failed_from_helpers() {
        let rs = ReedSolomon::new(14, 10).unwrap();
        // Give the failed block in the available list by mistake; it must be
        // filtered out.
        let available: Vec<usize> = (0..14).collect();
        let plan = rs.repair_plan(5, &available).unwrap();
        assert!(!plan.helper_indices().contains(&5));
    }

    #[test]
    fn multi_repair_reconstructs_all_failures() {
        let rs = ReedSolomon::new(14, 10).unwrap();
        let data = random_data(10, 64, 6);
        let coded = rs.encode(&data).unwrap();
        let failed = vec![2, 7, 11, 13];
        let available: Vec<usize> = (0..14).filter(|i| !failed.contains(i)).collect();
        let plan = rs.multi_repair_plan(&failed, &available).unwrap();
        assert_eq!(plan.helper_count(), 10);
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        let repaired = plan.evaluate(&blocks);
        for (j, &f) in failed.iter().enumerate() {
            assert_eq!(repaired[j], coded[f], "failed block {f}");
        }
    }

    #[test]
    fn multi_repair_rejects_too_many_failures() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let failed = vec![0, 1, 2, 3];
        let available: Vec<usize> = (4..9).collect();
        assert!(matches!(
            rs.multi_repair_plan(&failed, &available),
            Err(CodeError::Unrepairable { .. })
        ));
    }

    #[test]
    fn facebook_parameters_roundtrip() {
        // (14,10) with every possible single-block failure.
        let rs = ReedSolomon::new(14, 10).unwrap();
        let data = random_data(10, 40, 7);
        let coded = rs.encode(&data).unwrap();
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        for (failed, expected) in coded.iter().enumerate() {
            let available: Vec<usize> = (0..14).filter(|&i| i != failed).collect();
            let plan = rs.repair_plan(failed, &available).unwrap();
            assert_eq!(&plan.evaluate(&blocks), expected);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn any_k_blocks_decode(seed in any::<u64>(), n in 4usize..16, extra in 0usize..4) {
            let k = (n / 2).max(2);
            let rs = ReedSolomon::new(n, k).unwrap();
            let data = random_data(k, 32, seed);
            let coded = rs.encode(&data).unwrap();
            // Pick a pseudo-random subset of exactly k blocks.
            let mut rng = StdRng::seed_from_u64(seed ^ extra as u64);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            indices.truncate(k);
            let available: Vec<(usize, Vec<u8>)> =
                indices.iter().map(|&i| (i, coded[i].clone())).collect();
            prop_assert_eq!(rs.decode(&available).unwrap(), data);
        }

        #[test]
        fn repair_matches_erased_block(seed in any::<u64>(), failed in 0usize..14) {
            let rs = ReedSolomon::new(14, 10).unwrap();
            let data = random_data(10, 64, seed);
            let coded = rs.encode(&data).unwrap();
            let available: Vec<usize> = (0..14).filter(|&i| i != failed).collect();
            let plan = rs.repair_plan(failed, &available).unwrap();
            let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
            prop_assert_eq!(plan.evaluate(&blocks), coded[failed].clone());
        }

        #[test]
        fn linearity_of_stripes(seed in any::<u64>()) {
            // Encoding is linear: encode(x) + encode(y) == encode(x + y).
            let rs = ReedSolomon::new(9, 6).unwrap();
            let x = random_data(6, 16, seed);
            let y = random_data(6, 16, seed.wrapping_add(1));
            let sum: Vec<Vec<u8>> = x.iter().zip(y.iter())
                .map(|(a, b)| a.iter().zip(b.iter()).map(|(p, q)| p ^ q).collect())
                .collect();
            let cx = rs.encode(&x).unwrap();
            let cy = rs.encode(&y).unwrap();
            let csum = rs.encode(&sum).unwrap();
            for i in 0..9 {
                let xor: Vec<u8> = cx[i].iter().zip(cy[i].iter()).map(|(p, q)| p ^ q).collect();
                prop_assert_eq!(&xor, &csum[i]);
            }
        }
    }
}
