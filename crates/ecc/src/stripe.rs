//! Stripe-level metadata: block identities and stripe configuration.
//!
//! A large-scale storage system stores many independently encoded stripes of
//! `n` blocks each (§2.1). These types give stripes and blocks stable
//! identities shared by the repair planners, the simulator, the runtime and
//! the storage-system models.

use serde::{Deserialize, Serialize};

use crate::slice::SliceLayout;

/// Identifier of a stripe within a storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StripeId(pub u64);

/// Identifier of a block: which stripe it belongs to and its index within
/// that stripe (`0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId {
    /// The stripe this block belongs to.
    pub stripe: StripeId,
    /// The block index within the stripe (`0..n`).
    pub index: usize,
}

impl BlockId {
    /// Convenience constructor.
    pub fn new(stripe: u64, index: usize) -> Self {
        BlockId {
            stripe: StripeId(stripe),
            index,
        }
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}b{}", self.stripe.0, self.index)
    }
}

/// Static configuration of the erasure-coded layout of a storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeConfig {
    /// Total blocks per stripe.
    pub n: usize,
    /// Data blocks per stripe.
    pub k: usize,
    /// Block / slice partitioning.
    pub layout: SliceLayout,
}

impl StripeConfig {
    /// Creates a stripe configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k >= n`.
    pub fn new(n: usize, k: usize, layout: SliceLayout) -> Self {
        assert!(k > 0 && k < n, "require 0 < k < n");
        StripeConfig { n, k, layout }
    }

    /// The paper's default configuration: (14, 10) RS with 64 MiB blocks and
    /// 32 KiB slices.
    pub fn paper_default() -> Self {
        StripeConfig::new(14, 10, SliceLayout::paper_default())
    }

    /// Number of parity blocks per stripe.
    pub fn parity_count(&self) -> usize {
        self.n - self.k
    }

    /// Storage overhead factor (`n / k`).
    pub fn storage_overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// The amount of repair traffic (bytes) a conventional single-block
    /// repair reads for this configuration.
    pub fn conventional_repair_traffic(&self) -> usize {
        self.k * self.layout.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::MIB;

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId::new(3, 7).to_string(), "s3b7");
    }

    #[test]
    fn paper_default_config() {
        let cfg = StripeConfig::paper_default();
        assert_eq!(cfg.n, 14);
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.parity_count(), 4);
        assert!((cfg.storage_overhead() - 1.4).abs() < 1e-9);
        assert_eq!(cfg.conventional_repair_traffic(), 10 * 64 * MIB);
    }

    #[test]
    #[should_panic(expected = "require 0 < k < n")]
    fn invalid_config_panics() {
        StripeConfig::new(4, 4, SliceLayout::new(1024, 128));
    }

    #[test]
    fn block_ids_are_ordered_by_stripe_then_index() {
        let a = BlockId::new(1, 5);
        let b = BlockId::new(2, 0);
        let c = BlockId::new(2, 3);
        assert!(a < b && b < c);
    }
}
