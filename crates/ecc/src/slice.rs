//! Block/slice partitioning (§3.2, Figure 1 of the paper).
//!
//! Repair pipelining decomposes the repair of a block into the repair of `s`
//! small fixed-size units called slices. A [`SliceLayout`] describes how a
//! block of a given size is cut into slices and provides the byte ranges the
//! runtime and the simulator both use.

use serde::{Deserialize, Serialize};

/// One kibibyte in bytes.
pub const KIB: usize = 1024;
/// One mebibyte in bytes.
pub const MIB: usize = 1024 * 1024;

/// The default block size used throughout the paper's evaluation (64 MiB).
pub const DEFAULT_BLOCK_SIZE: usize = 64 * MIB;
/// The default slice size that performs best in the paper (32 KiB).
pub const DEFAULT_SLICE_SIZE: usize = 32 * KIB;

/// How a block is partitioned into slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceLayout {
    /// Block size in bytes.
    pub block_size: usize,
    /// Slice size in bytes. The final slice may be shorter if the block size
    /// is not a multiple of the slice size.
    pub slice_size: usize,
}

impl SliceLayout {
    /// Creates a layout, clamping the slice size to the block size.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(block_size: usize, slice_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(slice_size > 0, "slice size must be positive");
        SliceLayout {
            block_size,
            slice_size: slice_size.min(block_size),
        }
    }

    /// The paper's default layout: 64 MiB blocks with 32 KiB slices
    /// (`s = 2048`).
    pub fn paper_default() -> Self {
        SliceLayout::new(DEFAULT_BLOCK_SIZE, DEFAULT_SLICE_SIZE)
    }

    /// The number of slices `s` per block.
    pub fn slice_count(&self) -> usize {
        self.block_size.div_ceil(self.slice_size)
    }

    /// The byte range of slice `index` within the block.
    ///
    /// # Panics
    ///
    /// Panics if `index >= slice_count()`.
    pub fn slice_range(&self, index: usize) -> std::ops::Range<usize> {
        assert!(index < self.slice_count(), "slice index out of range");
        let start = index * self.slice_size;
        let end = (start + self.slice_size).min(self.block_size);
        start..end
    }

    /// The length in bytes of slice `index`.
    pub fn slice_len(&self, index: usize) -> usize {
        self.slice_range(index).len()
    }

    /// Splits a block into owned slices.
    ///
    /// # Panics
    ///
    /// Panics if the block length does not match `block_size`.
    pub fn split(&self, block: &[u8]) -> Vec<Vec<u8>> {
        assert_eq!(block.len(), self.block_size, "block length mismatch");
        (0..self.slice_count())
            .map(|i| block[self.slice_range(i)].to_vec())
            .collect()
    }

    /// Reassembles slices into a block.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not exactly tile the block.
    pub fn join(&self, slices: &[Vec<u8>]) -> Vec<u8> {
        assert_eq!(slices.len(), self.slice_count(), "slice count mismatch");
        let mut block = Vec::with_capacity(self.block_size);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.len(), self.slice_len(i), "slice {i} length mismatch");
            block.extend_from_slice(s);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_has_2048_slices() {
        let layout = SliceLayout::paper_default();
        assert_eq!(layout.slice_count(), 2048);
        assert_eq!(layout.slice_len(0), 32 * KIB);
    }

    #[test]
    fn slice_size_clamped_to_block() {
        let layout = SliceLayout::new(16, 1024);
        assert_eq!(layout.slice_count(), 1);
        assert_eq!(layout.slice_len(0), 16);
    }

    #[test]
    fn uneven_final_slice() {
        let layout = SliceLayout::new(100, 30);
        assert_eq!(layout.slice_count(), 4);
        assert_eq!(layout.slice_len(0), 30);
        assert_eq!(layout.slice_len(3), 10);
        assert_eq!(layout.slice_range(3), 90..100);
    }

    #[test]
    #[should_panic(expected = "slice index out of range")]
    fn out_of_range_slice_panics() {
        SliceLayout::new(100, 30).slice_range(4);
    }

    #[test]
    fn split_join_roundtrip() {
        let layout = SliceLayout::new(1000, 64);
        let block: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let slices = layout.split(&block);
        assert_eq!(slices.len(), layout.slice_count());
        assert_eq!(layout.join(&slices), block);
    }

    proptest! {
        #[test]
        fn ranges_tile_the_block(block_size in 1usize..10_000, slice_size in 1usize..4096) {
            let layout = SliceLayout::new(block_size, slice_size);
            let mut covered = 0usize;
            for i in 0..layout.slice_count() {
                let r = layout.slice_range(i);
                prop_assert_eq!(r.start, covered);
                covered = r.end;
            }
            prop_assert_eq!(covered, block_size);
        }

        #[test]
        fn split_join_identity(block in proptest::collection::vec(any::<u8>(), 1..2048),
                               slice_size in 1usize..512) {
            let layout = SliceLayout::new(block.len(), slice_size);
            prop_assert_eq!(layout.join(&layout.split(&block)), block);
        }
    }
}
