//! Azure-style Local Reconstruction Codes (LRC).
//!
//! An LRC(k, l, g) code stores `k` data blocks, partitioned into `l` local
//! groups, plus one XOR local parity per group and `g` global parities, for
//! `n = k + l + g` blocks per stripe. A single data-block failure is repaired
//! from its local group only (`k/l` reads instead of `k`), which is the
//! trade-off evaluated in Figure 8(d) of the paper.

use gf256::{Gf256, Matrix};

use crate::plan::{MultiRepairPlan, RepairPlan, RepairSource};
use crate::traits::ErasureCode;
use crate::{CodeError, Result};

/// A Local Reconstruction Code LRC(k, l, g).
///
/// Block layout within a stripe:
///
/// * indices `0..k` — data blocks (group `i` holds indices
///   `i*k/l .. (i+1)*k/l`),
/// * indices `k..k+l` — local parities (XOR of each group),
/// * indices `k+l..k+l+g` — global parities (Reed-Solomon style rows over all
///   data blocks).
///
/// # Examples
///
/// ```
/// use ecc::{ErasureCode, Lrc};
/// // Azure's LRC(12, 2, 2): 12 data blocks in 2 local groups of 6.
/// let lrc = Lrc::new(12, 2, 2).unwrap();
/// assert_eq!(lrc.n(), 16);
/// // Repairing a data block reads only its local group: 6 blocks, not 12.
/// let available: Vec<usize> = (1..16).collect();
/// let plan = lrc.repair_plan(0, &available).unwrap();
/// assert_eq!(plan.helper_count(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Lrc {
    k: usize,
    local_groups: usize,
    global_parities: usize,
    /// Full `n x k` generator matrix (data rows are the identity).
    generator: Matrix,
}

impl Lrc {
    /// Creates an LRC(k, l, g) code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `k` is not divisible by
    /// `l`, any parameter is zero, or the stripe exceeds 256 blocks.
    pub fn new(k: usize, local_groups: usize, global_parities: usize) -> Result<Self> {
        if k == 0 || local_groups == 0 || global_parities == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "k, l and g must all be positive".to_string(),
            });
        }
        if !k.is_multiple_of(local_groups) {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "k ({k}) must be divisible by the number of local groups ({local_groups})"
                ),
            });
        }
        let n = k + local_groups + global_parities;
        if n > 256 {
            return Err(CodeError::InvalidParameters {
                reason: format!("stripe width {n} exceeds the field size 256"),
            });
        }
        let group_size = k / local_groups;
        let mut generator = Matrix::zero(n, k);
        // Data rows: identity.
        for i in 0..k {
            generator.set(i, i, Gf256::ONE);
        }
        // Local parity rows: XOR of the group members.
        for g in 0..local_groups {
            for j in g * group_size..(g + 1) * group_size {
                generator.set(k + g, j, Gf256::ONE);
            }
        }
        // Global parity rows: Vandermonde-style rows with distinct non-zero,
        // non-one evaluation points so they are independent of the local
        // parities.
        for p in 0..global_parities {
            let point = Gf256::new((p + 2) as u8);
            for j in 0..k {
                generator.set(k + local_groups + p, j, point.pow(j + 1));
            }
        }
        Ok(Lrc {
            k,
            local_groups,
            global_parities,
            generator,
        })
    }

    /// The number of data blocks per local group.
    pub fn group_size(&self) -> usize {
        self.k / self.local_groups
    }

    /// The number of local groups.
    pub fn local_groups(&self) -> usize {
        self.local_groups
    }

    /// The local group of a data or local-parity block, or `None` for global
    /// parities.
    pub fn group_of(&self, block: usize) -> Option<usize> {
        if block < self.k {
            Some(block / self.group_size())
        } else if block < self.k + self.local_groups {
            Some(block - self.k)
        } else {
            None
        }
    }

    /// The members of a local group: its data blocks plus the local parity.
    pub fn group_members(&self, group: usize) -> Vec<usize> {
        let gs = self.group_size();
        let mut members: Vec<usize> = (group * gs..(group + 1) * gs).collect();
        members.push(self.k + group);
        members
    }

    /// Selects `k` linearly independent rows of the generator from the
    /// available block indices, returning the chosen indices.
    fn independent_rows(&self, available: &[usize]) -> Result<Vec<usize>> {
        let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
        // Work matrix for incremental Gaussian elimination.
        let mut basis: Vec<Vec<Gf256>> = Vec::new();
        for &idx in available {
            if chosen.len() == self.k {
                break;
            }
            if idx >= self.n() {
                return Err(CodeError::InvalidBlockIndex {
                    index: idx,
                    n: self.n(),
                });
            }
            let mut row: Vec<Gf256> = self.generator.row(idx).to_vec();
            // Reduce against the existing basis.
            for b in &basis {
                let lead = b.iter().position(|v| !v.is_zero()).unwrap();
                if !row[lead].is_zero() {
                    let factor = row[lead] / b[lead];
                    for (r, bv) in row.iter_mut().zip(b.iter()) {
                        *r += factor * *bv;
                    }
                }
            }
            if row.iter().any(|v| !v.is_zero()) {
                basis.push(row);
                chosen.push(idx);
            }
        }
        if chosen.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: chosen.len(),
            });
        }
        Ok(chosen)
    }

    fn coefficients_for(&self, failed: &[usize], helpers: &[usize]) -> Result<Vec<Vec<u8>>> {
        let helper_rows = self.generator.select_rows(helpers);
        let decode = helper_rows.invert().ok_or(CodeError::SingularMatrix)?;
        let failed_rows = self.generator.select_rows(failed);
        let coeff = failed_rows.mul(&decode);
        Ok((0..failed.len())
            .map(|j| coeff.row(j).iter().map(|c| c.value()).collect())
            .collect())
    }
}

impl ErasureCode for Lrc {
    fn n(&self) -> usize {
        self.k + self.local_groups + self.global_parities
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!(
            "LRC({},{},{})",
            self.k, self.local_groups, self.global_parities
        )
    }

    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        if data.len() != self.k {
            return Err(CodeError::InvalidBlockSize {
                reason: format!("expected {} data blocks, got {}", self.k, data.len()),
            });
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodeError::InvalidBlockSize {
                reason: "data blocks must all have the same length".to_string(),
            });
        }
        let mut coded: Vec<Vec<u8>> = Vec::with_capacity(self.n());
        coded.extend(data.iter().cloned());
        for row in self.k..self.n() {
            let mut parity = vec![0u8; len];
            for (j, block) in data.iter().enumerate() {
                gf256::mul_add_slice(self.generator.get(row, j), block, &mut parity);
            }
            coded.push(parity);
        }
        Ok(coded)
    }

    fn decode(&self, available: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>> {
        if available.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                needed: self.k,
                available: available.len(),
            });
        }
        let len = available[0].1.len();
        let indices: Vec<usize> = available.iter().map(|(i, _)| *i).collect();
        let chosen = self.independent_rows(&indices)?;
        let sub = self.generator.select_rows(&chosen);
        let decode = sub.invert().ok_or(CodeError::SingularMatrix)?;
        let lookup = |idx: usize| -> &Vec<u8> {
            &available
                .iter()
                .find(|(i, _)| *i == idx)
                .expect("chosen index must be available")
                .1
        };
        let mut data = Vec::with_capacity(self.k);
        for j in 0..self.k {
            let mut out = vec![0u8; len];
            for (i, &idx) in chosen.iter().enumerate() {
                gf256::mul_add_slice(decode.get(j, i), lookup(idx), &mut out);
            }
            data.push(out);
        }
        Ok(data)
    }

    fn repair_plan(&self, failed: usize, available: &[usize]) -> Result<RepairPlan> {
        if failed >= self.n() {
            return Err(CodeError::InvalidBlockIndex {
                index: failed,
                n: self.n(),
            });
        }
        let usable: Vec<usize> = available.iter().copied().filter(|&b| b != failed).collect();
        // Fast path: a data block or local parity whose whole group survives
        // is repaired from the local group only (the XOR relation).
        if let Some(group) = self.group_of(failed) {
            let members = self.group_members(group);
            let others: Vec<usize> = members.iter().copied().filter(|&b| b != failed).collect();
            if others.iter().all(|b| usable.contains(b)) {
                return Ok(RepairPlan {
                    failed,
                    sources: others
                        .into_iter()
                        .map(|block_index| RepairSource {
                            block_index,
                            coefficient: 1,
                        })
                        .collect(),
                });
            }
        }
        // Fallback: global repair via any k independent available rows.
        let helpers = self.independent_rows(&usable)?;
        let coeffs = self.coefficients_for(&[failed], &helpers)?;
        Ok(RepairPlan {
            failed,
            sources: helpers
                .iter()
                .zip(coeffs[0].iter())
                .filter(|(_, &c)| c != 0)
                .map(|(&block_index, &coefficient)| RepairSource {
                    block_index,
                    coefficient,
                })
                .collect(),
        })
    }

    fn multi_repair_plan(&self, failed: &[usize], available: &[usize]) -> Result<MultiRepairPlan> {
        if failed.is_empty() {
            return Err(CodeError::Unrepairable {
                reason: "no failed blocks given".to_string(),
            });
        }
        let mut failed_sorted = failed.to_vec();
        failed_sorted.sort_unstable();
        failed_sorted.dedup();
        for &f in &failed_sorted {
            if f >= self.n() {
                return Err(CodeError::InvalidBlockIndex {
                    index: f,
                    n: self.n(),
                });
            }
        }
        let usable: Vec<usize> = available
            .iter()
            .copied()
            .filter(|b| !failed_sorted.contains(b))
            .collect();
        let helpers = self.independent_rows(&usable)?;
        let coefficients = self.coefficients_for(&failed_sorted, &helpers)?;
        Ok(MultiRepairPlan {
            failed: failed_sorted,
            helpers,
            coefficients,
        })
    }

    fn fault_tolerance(&self) -> usize {
        // Any g+1 arbitrary failures are always decodable (information-
        // theoretic lower bound for LRC with one parity per group).
        self.global_parities + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Lrc::new(12, 5, 2).is_err());
        assert!(Lrc::new(0, 1, 1).is_err());
        assert!(Lrc::new(12, 2, 0).is_err());
        assert!(Lrc::new(12, 2, 2).is_ok());
    }

    #[test]
    fn azure_layout() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        assert_eq!(lrc.n(), 16);
        assert_eq!(lrc.k(), 12);
        assert_eq!(lrc.group_size(), 6);
        assert_eq!(lrc.group_of(0), Some(0));
        assert_eq!(lrc.group_of(7), Some(1));
        assert_eq!(lrc.group_of(12), Some(0));
        assert_eq!(lrc.group_of(13), Some(1));
        assert_eq!(lrc.group_of(14), None);
        assert_eq!(lrc.group_members(0), vec![0, 1, 2, 3, 4, 5, 12]);
    }

    #[test]
    fn local_parity_is_group_xor() {
        let lrc = Lrc::new(6, 2, 1).unwrap();
        let data = random_data(6, 32, 1);
        let coded = lrc.encode(&data).unwrap();
        let mut xor = vec![0u8; 32];
        for b in &data[0..3] {
            gf256::add_slice(b, &mut xor);
        }
        assert_eq!(coded[6], xor);
    }

    #[test]
    fn data_block_repair_uses_local_group_only() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 64, 2);
        let coded = lrc.encode(&data).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 8).collect();
        let plan = lrc.repair_plan(8, &available).unwrap();
        assert_eq!(plan.helper_count(), 6);
        // All helpers in group 1 (blocks 6..12 and local parity 13).
        for idx in plan.helper_indices() {
            assert_eq!(lrc.group_of(idx), Some(1));
        }
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[8]);
    }

    #[test]
    fn local_parity_repair_reads_its_group() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 64, 3);
        let coded = lrc.encode(&data).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 12).collect();
        let plan = lrc.repair_plan(12, &available).unwrap();
        assert_eq!(plan.helper_count(), 6);
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[12]);
    }

    #[test]
    fn global_parity_repair_falls_back_to_wide_plan() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 64, 4);
        let coded = lrc.encode(&data).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 14).collect();
        let plan = lrc.repair_plan(14, &available).unwrap();
        assert!(plan.helper_count() >= 12);
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[14]);
    }

    #[test]
    fn repair_with_broken_group_uses_global_path() {
        // Two failures in the same group: the local XOR is not enough for the
        // first one, so the plan must go through global parities.
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 32, 5);
        let coded = lrc.encode(&data).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 0 && i != 1).collect();
        let plan = lrc.repair_plan(0, &available).unwrap();
        assert!(!plan.helper_indices().contains(&1));
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        assert_eq!(plan.evaluate(&blocks), coded[0]);
    }

    #[test]
    fn decode_after_three_failures() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 48, 6);
        let coded = lrc.encode(&data).unwrap();
        // g + 1 = 3 arbitrary failures.
        let failed = [2, 9, 15];
        let available: Vec<(usize, Vec<u8>)> = (0..16)
            .filter(|i| !failed.contains(i))
            .map(|i| (i, coded[i].clone()))
            .collect();
        assert_eq!(lrc.decode(&available).unwrap(), data);
    }

    #[test]
    fn multi_repair_two_failures() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 48, 7);
        let coded = lrc.encode(&data).unwrap();
        let failed = vec![3, 13];
        let available: Vec<usize> = (0..16).filter(|i| !failed.contains(i)).collect();
        let plan = lrc.multi_repair_plan(&failed, &available).unwrap();
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        let repaired = plan.evaluate(&blocks);
        assert_eq!(repaired[0], coded[3]);
        assert_eq!(repaired[1], coded[13]);
    }

    #[test]
    fn every_single_block_is_repairable() {
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let data = random_data(12, 24, 8);
        let coded = lrc.encode(&data).unwrap();
        let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        for (failed, expected) in coded.iter().enumerate() {
            let available: Vec<usize> = (0..16).filter(|&i| i != failed).collect();
            let plan = lrc.repair_plan(failed, &available).unwrap();
            assert_eq!(&plan.evaluate(&blocks), expected, "block {failed}");
            if lrc.group_of(failed).is_some() {
                assert_eq!(
                    plan.helper_count(),
                    6,
                    "block {failed} should repair locally"
                );
            }
        }
    }
}
