//! Erasure codes and the stripe/slice data model.
//!
//! This crate implements every code the paper evaluates:
//!
//! * [`ReedSolomon`] — systematic MDS Reed-Solomon codes for any `(n, k)`
//!   with `k < n <= 256`, built from a Vandermonde generator matrix
//!   transformed into systematic form (§2.1 of the paper).
//! * [`Lrc`] — Azure-style Local Reconstruction Codes (§6.1): `k` data
//!   blocks in `l` local groups, one local parity per group plus `g` global
//!   parities; a single data-block repair only reads its local group.
//! * [`RotatedRs`] — Rotated Reed-Solomon codes (§6.1): a sub-stripe layout
//!   that rotates parity coverage across rows so that degraded reads touch
//!   fewer bytes than plain RS.
//!
//! All codes expose the same [`ErasureCode`] interface plus a linear
//! [`RepairPlan`]: the list of source blocks and the decoding coefficients
//! `a_i` such that the failed block equals `sum(a_i * B_i)`. The linearity
//! and associativity of that sum is exactly what conventional repair, PPR and
//! repair pipelining all rely on.
//!
//! The crate also provides the block/slice partitioning model of Figure 1 and
//! §3.2 ([`mod@slice`] module): blocks are split into `s` fixed-size slices and a
//! repair is pipelined slice by slice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lrc;
mod plan;
mod rotated;
mod rs;
pub mod slice;
pub mod stripe;
mod traits;

pub use error::CodeError;
pub use lrc::Lrc;
pub use plan::{MultiRepairPlan, RepairPlan, RepairSource};
pub use rotated::RotatedRs;
pub use rs::ReedSolomon;
pub use traits::ErasureCode;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CodeError>;
