//! Linear repair plans.
//!
//! Every repair scheme in the paper (conventional, PPR, repair pipelining)
//! reconstructs a failed block as a linear combination of available blocks:
//! `B* = sum_i a_i * B_i` (§2.1). A [`RepairPlan`] captures exactly that: the
//! source block indices and their decoding coefficients. The scheduling of
//! *how* the sum is computed across helpers is the job of the `repair` crate;
//! the plan only states the algebra.

use gf256::Gf256;
use serde::{Deserialize, Serialize};

/// One source block of a repair plan: the block index within the stripe and
/// the decoding coefficient it is multiplied by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairSource {
    /// Index of the source block within the stripe (`0..n`).
    pub block_index: usize,
    /// Decoding coefficient `a_i` (raw byte of the GF(2^8) element).
    pub coefficient: u8,
}

impl RepairSource {
    /// Returns the coefficient as a field element.
    pub fn coeff(&self) -> Gf256 {
        Gf256::new(self.coefficient)
    }
}

/// A single-block repair plan: `B*[failed] = sum(a_i * B_i)` over `sources`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairPlan {
    /// Index of the failed block being reconstructed.
    pub failed: usize,
    /// Source blocks and coefficients, in ascending block-index order.
    pub sources: Vec<RepairSource>,
}

impl RepairPlan {
    /// The number of helper blocks this plan reads.
    pub fn helper_count(&self) -> usize {
        self.sources.len()
    }

    /// The block indices read by this plan, in plan order.
    pub fn helper_indices(&self) -> Vec<usize> {
        self.sources.iter().map(|s| s.block_index).collect()
    }

    /// Evaluates the plan against full block contents, returning the
    /// reconstructed block. Intended for tests and small examples; the real
    /// pipelined evaluation happens slice-by-slice in the runtime.
    ///
    /// `blocks[i]` must hold the content of stripe block `i` for every index
    /// referenced by the plan.
    ///
    /// # Panics
    ///
    /// Panics if a referenced block is missing or block lengths differ.
    pub fn evaluate(&self, blocks: &[Option<Vec<u8>>]) -> Vec<u8> {
        let first = self.sources.first().expect("plan must have sources");
        let len = blocks[first.block_index]
            .as_ref()
            .expect("source block missing")
            .len();
        let mut acc = vec![0u8; len];
        for src in &self.sources {
            let block = blocks[src.block_index]
                .as_ref()
                .expect("source block missing");
            assert_eq!(block.len(), len, "source blocks must have equal length");
            gf256::mul_add_slice(src.coeff(), block, &mut acc);
        }
        acc
    }
}

/// A multi-block repair plan (§4.4): `f` failed blocks reconstructed from the
/// same set of `k` helpers, each failed block with its own coefficient row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiRepairPlan {
    /// The failed block indices, in ascending order.
    pub failed: Vec<usize>,
    /// The helper block indices shared by all failed blocks.
    pub helpers: Vec<usize>,
    /// `coefficients[j][i]` is the coefficient applied to helper `i` when
    /// reconstructing failed block `j` (raw bytes).
    pub coefficients: Vec<Vec<u8>>,
}

impl MultiRepairPlan {
    /// The number of failed blocks being reconstructed.
    pub fn failure_count(&self) -> usize {
        self.failed.len()
    }

    /// The number of helpers read.
    pub fn helper_count(&self) -> usize {
        self.helpers.len()
    }

    /// Returns the single-block plan for the `j`-th failed block.
    pub fn single_plan(&self, j: usize) -> RepairPlan {
        RepairPlan {
            failed: self.failed[j],
            sources: self
                .helpers
                .iter()
                .zip(self.coefficients[j].iter())
                .map(|(&block_index, &coefficient)| RepairSource {
                    block_index,
                    coefficient,
                })
                .collect(),
        }
    }

    /// Evaluates every failed block against full block contents (test helper).
    pub fn evaluate(&self, blocks: &[Option<Vec<u8>>]) -> Vec<Vec<u8>> {
        (0..self.failed.len())
            .map(|j| self.single_plan(j).evaluate(blocks))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_simple_xor_plan() {
        // B* = B0 + B2 (coefficients 1).
        let plan = RepairPlan {
            failed: 1,
            sources: vec![
                RepairSource {
                    block_index: 0,
                    coefficient: 1,
                },
                RepairSource {
                    block_index: 2,
                    coefficient: 1,
                },
            ],
        };
        let blocks = vec![Some(vec![0xaa, 0x01]), None, Some(vec![0x55, 0x01])];
        assert_eq!(plan.evaluate(&blocks), vec![0xff, 0x00]);
        assert_eq!(plan.helper_count(), 2);
        assert_eq!(plan.helper_indices(), vec![0, 2]);
    }

    #[test]
    fn multi_plan_single_projection() {
        let multi = MultiRepairPlan {
            failed: vec![3, 5],
            helpers: vec![0, 1],
            coefficients: vec![vec![1, 2], vec![3, 4]],
        };
        assert_eq!(multi.failure_count(), 2);
        assert_eq!(multi.helper_count(), 2);
        let p1 = multi.single_plan(1);
        assert_eq!(p1.failed, 5);
        assert_eq!(p1.sources[0].coefficient, 3);
        assert_eq!(p1.sources[1].coefficient, 4);
    }
}
