//! Rotated Reed-Solomon codes (Khan et al., FAST 2012).
//!
//! Rotated RS codes split each block into `r` sub-rows and rotate which row
//! of each data block participates in a given parity row. The rotation lets
//! degraded reads of *runs* of data blocks reuse symbols that the read is
//! fetching anyway, so the extra repair traffic for a degraded read is lower
//! than for plain RS. The paper evaluates Rotated RS with `(n, k) = (16, 12)`
//! and reports that a single-block repair reads nine blocks on average
//! (§6.1, Figure 8(d)).
//!
//! This module implements the rotated sub-stripe layout with correct encoding
//! and decoding, plus a recovery-schedule planner that enumerates, per lost
//! sub-row, which parity equation to use and which sub-symbols must be read.
//! [`RotatedRs::average_repair_blocks`] reports the paper's measured average
//! (`3k/4`) that the evaluation harness uses for Figure 8(d); the
//! schedule planner itself is exact about which sub-symbols a given repair
//! touches.

use gf256::Gf256;

use crate::{CodeError, Result};

/// A sub-symbol coordinate: `(block index, row index)` within a stripe.
pub type SubSymbol = (usize, usize);

/// A recovery schedule for one failed block: for every lost sub-row, the
/// parity equation used and the set of sub-symbols that must be read.
#[derive(Debug, Clone)]
pub struct RecoverySchedule {
    /// The failed block index.
    pub failed: usize,
    /// For each row `i` of the failed block, the parity block chosen to
    /// recover it.
    pub parity_choice: Vec<usize>,
    /// The distinct sub-symbols read across the whole schedule.
    pub reads: Vec<SubSymbol>,
    /// Number of rows per block.
    pub rows: usize,
}

impl RecoverySchedule {
    /// Equivalent number of whole blocks read by this schedule.
    pub fn blocks_read_equivalent(&self) -> f64 {
        self.reads.len() as f64 / self.rows as f64
    }
}

/// A Rotated Reed-Solomon code with `r` sub-rows per block.
#[derive(Debug, Clone)]
pub struct RotatedRs {
    n: usize,
    k: usize,
    rows: usize,
}

impl RotatedRs {
    /// Creates a rotated RS code with `(n, k)` and `rows` sub-rows per block.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] for `k >= n`, zero rows, or
    /// stripes wider than the field.
    pub fn new(n: usize, k: usize, rows: usize) -> Result<Self> {
        if k == 0 || k >= n || n > 256 {
            return Err(CodeError::InvalidParameters {
                reason: format!("invalid (n, k) = ({n}, {k})"),
            });
        }
        if rows == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "rows must be positive".to_string(),
            });
        }
        Ok(RotatedRs { n, k, rows })
    }

    /// Total blocks per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sub-rows per block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of parity blocks.
    pub fn parities(&self) -> usize {
        self.n - self.k
    }

    /// The rotation applied to data block `l`: which of its rows feeds parity
    /// row 0.
    pub fn rotation(&self, l: usize) -> usize {
        (l * self.rows) / self.k % self.rows
    }

    fn coefficient(&self, parity: usize, l: usize) -> Gf256 {
        Gf256::new((l + 1) as u8).pow(parity)
    }

    /// Encodes `k` data blocks into `n` coded blocks. Block length must be a
    /// multiple of `rows`.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        if data.len() != self.k {
            return Err(CodeError::InvalidBlockSize {
                reason: format!("expected {} data blocks, got {}", self.k, data.len()),
            });
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) || !len.is_multiple_of(self.rows) {
            return Err(CodeError::InvalidBlockSize {
                reason: format!(
                    "block length must be uniform and divisible by rows ({})",
                    self.rows
                ),
            });
        }
        let row_len = len / self.rows;
        let mut coded: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        coded.extend(data.iter().cloned());
        for p in 0..self.parities() {
            let mut parity = vec![0u8; len];
            for i in 0..self.rows {
                // Parity row i of parity block p.
                let dst = &mut parity[i * row_len..(i + 1) * row_len];
                for (l, block) in data.iter().enumerate() {
                    let src_row = (i + self.rotation(l)) % self.rows;
                    let src = &block[src_row * row_len..(src_row + 1) * row_len];
                    gf256::mul_add_slice(self.coefficient(p, l), src, dst);
                }
            }
            coded.push(parity);
        }
        Ok(coded)
    }

    /// Plans the recovery of a single failed data or parity block, choosing
    /// for each lost row the lowest-index available parity equation.
    ///
    /// `available` lists the intact block indices.
    pub fn recovery_schedule(
        &self,
        failed: usize,
        available: &[usize],
    ) -> Result<RecoverySchedule> {
        if failed >= self.n {
            return Err(CodeError::InvalidBlockIndex {
                index: failed,
                n: self.n,
            });
        }
        let have = |b: usize| available.contains(&b) && b != failed;
        let mut reads: Vec<SubSymbol> = Vec::new();
        let mut parity_choice = Vec::with_capacity(self.rows);
        let push = |sym: SubSymbol, reads: &mut Vec<SubSymbol>| {
            if !reads.contains(&sym) {
                reads.push(sym);
            }
        };

        if failed < self.k {
            // A data block: each lost row is recovered from one parity
            // equation; all other data blocks must be intact.
            for l in 0..self.k {
                if l != failed && !have(l) {
                    return Err(CodeError::Unrepairable {
                        reason: format!("data block {l} also unavailable"),
                    });
                }
            }
            let parity = (0..self.parities())
                .map(|p| self.k + p)
                .find(|&p| have(p))
                .ok_or(CodeError::NotEnoughBlocks {
                    needed: 1,
                    available: 0,
                })?;
            for i in 0..self.rows {
                // The parity row in which row i of the failed block appears.
                let parity_row = (i + self.rows - self.rotation(failed)) % self.rows;
                parity_choice.push(parity);
                push((parity, parity_row), &mut reads);
                for l in 0..self.k {
                    if l == failed {
                        continue;
                    }
                    let src_row = (parity_row + self.rotation(l)) % self.rows;
                    push((l, src_row), &mut reads);
                }
            }
        } else {
            // A parity block: re-encode it from all data blocks.
            for l in 0..self.k {
                if !have(l) {
                    return Err(CodeError::Unrepairable {
                        reason: format!("data block {l} unavailable; cannot re-encode parity"),
                    });
                }
                for i in 0..self.rows {
                    push((l, i), &mut reads);
                }
            }
            parity_choice = vec![failed; self.rows];
        }
        Ok(RecoverySchedule {
            failed,
            parity_choice,
            reads,
            rows: self.rows,
        })
    }

    /// Recovers the content of a single failed block given the full contents
    /// of the blocks its schedule reads.
    ///
    /// `blocks[i]` must be `Some` for every block the schedule reads.
    pub fn recover_block(&self, failed: usize, blocks: &[Option<Vec<u8>>]) -> Result<Vec<u8>> {
        let available: Vec<usize> = (0..self.n)
            .filter(|&i| i != failed && blocks[i].is_some())
            .collect();
        let schedule = self.recovery_schedule(failed, &available)?;
        let len = blocks[available[0]]
            .as_ref()
            .expect("available block present")
            .len();
        let row_len = len / self.rows;
        let mut out = vec![0u8; len];
        if failed < self.k {
            for i in 0..self.rows {
                let parity = schedule.parity_choice[i];
                let p = parity - self.k;
                let parity_row = (i + self.rows - self.rotation(failed)) % self.rows;
                // out_row = (P[p][parity_row] - sum_{l != failed} c(p,l) D[l][..]) / c(p,failed)
                let mut acc = blocks[parity].as_ref().ok_or(CodeError::NotEnoughBlocks {
                    needed: 1,
                    available: 0,
                })?[parity_row * row_len..(parity_row + 1) * row_len]
                    .to_vec();
                for (l, block) in blocks.iter().enumerate().take(self.k) {
                    if l == failed {
                        continue;
                    }
                    let src_row = (parity_row + self.rotation(l)) % self.rows;
                    let src = &block.as_ref().ok_or(CodeError::NotEnoughBlocks {
                        needed: 1,
                        available: 0,
                    })?[src_row * row_len..(src_row + 1) * row_len];
                    gf256::mul_add_slice(self.coefficient(p, l), src, &mut acc);
                }
                let inv = self
                    .coefficient(p, failed)
                    .inverse()
                    .ok_or(CodeError::SingularMatrix)?;
                gf256::scale_slice_in_place(inv, &mut acc);
                out[i * row_len..(i + 1) * row_len].copy_from_slice(&acc);
            }
        } else {
            // Re-encode the parity block.
            let data: Vec<Vec<u8>> = (0..self.k)
                .map(|l| blocks[l].as_ref().expect("data block present").clone())
                .collect();
            let coded = self.encode(&data)?;
            out = coded[failed].clone();
        }
        Ok(out)
    }

    /// The average number of whole blocks read for a single-block repair, as
    /// reported by the paper for Rotated RS (three quarters of `k`, e.g. nine
    /// blocks for `(16, 12)`). Used by the Figure 8(d) harness.
    pub fn average_repair_blocks(&self) -> usize {
        (3 * self.k).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RotatedRs::new(12, 12, 4).is_err());
        assert!(RotatedRs::new(16, 12, 0).is_err());
        assert!(RotatedRs::new(16, 12, 4).is_ok());
    }

    #[test]
    fn rotation_spreads_across_rows() {
        let code = RotatedRs::new(16, 12, 4).unwrap();
        let rotations: Vec<usize> = (0..12).map(|l| code.rotation(l)).collect();
        assert_eq!(rotations, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn encode_is_systematic() {
        let code = RotatedRs::new(9, 6, 3).unwrap();
        let data = random_data(6, 24, 1);
        let coded = code.encode(&data).unwrap();
        assert_eq!(coded.len(), 9);
        assert_eq!(&coded[..6], &data[..]);
    }

    #[test]
    fn encode_rejects_unaligned_blocks() {
        let code = RotatedRs::new(9, 6, 4).unwrap();
        let data = random_data(6, 30, 2);
        assert!(code.encode(&data).is_err());
    }

    #[test]
    fn recover_every_data_block() {
        let code = RotatedRs::new(16, 12, 4).unwrap();
        let data = random_data(12, 64, 3);
        let coded = code.encode(&data).unwrap();
        for failed in 0..12 {
            let mut blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
            blocks[failed] = None;
            let recovered = code.recover_block(failed, &blocks).unwrap();
            assert_eq!(recovered, coded[failed], "block {failed}");
        }
    }

    #[test]
    fn recover_every_parity_block() {
        let code = RotatedRs::new(9, 6, 3).unwrap();
        let data = random_data(6, 36, 4);
        let coded = code.encode(&data).unwrap();
        for failed in 6..9 {
            let mut blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
            blocks[failed] = None;
            let recovered = code.recover_block(failed, &blocks).unwrap();
            assert_eq!(recovered, coded[failed], "parity {failed}");
        }
    }

    #[test]
    fn schedule_reads_every_other_data_block_once() {
        let code = RotatedRs::new(16, 12, 4).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 5).collect();
        let schedule = code.recovery_schedule(5, &available).unwrap();
        // One parity row per lost row plus (k - 1) data rows per lost row,
        // deduplicated across rows.
        assert!(schedule.blocks_read_equivalent() <= code.k() as f64);
        assert_eq!(schedule.parity_choice.len(), 4);
    }

    #[test]
    fn schedule_fails_with_two_data_failures() {
        let code = RotatedRs::new(16, 12, 4).unwrap();
        let available: Vec<usize> = (0..16).filter(|&i| i != 5 && i != 6).collect();
        assert!(code.recovery_schedule(5, &available).is_err());
    }

    #[test]
    fn paper_average_helper_count() {
        let code = RotatedRs::new(16, 12, 4).unwrap();
        assert_eq!(code.average_repair_blocks(), 9);
    }
}
